//! The A2C training loop (Algorithm 1, lines 3–10).
//!
//! Per episode: every macro group is placed by sampling π_θ; at the end the
//! placement is legalized, cells are placed and the wirelength is scored by
//! 𝔇 (Eq. 9); the terminal reward is copied to every step. Every
//! `update_every` (paper: 30) episodes the buffered transitions are replayed
//! through the network and one optimizer step minimises
//! L = L_policy + L_value (Eq. 8).

use crate::agent::Agent;
use crate::env::PlacementEnv;
use crate::eval::{CoarseEvaluator, FullEvaluator, WirelengthEvaluator};
use crate::net::{AgentConfig, StateRef};
use crate::reward::{CalibrationError, RewardKind, RewardScale};
use mmp_analytic::{GlobalPlacer, GlobalPlacerConfig};
use mmp_ckpt::CkptError;
use mmp_cluster::{ClusterError, ClusterParams, CoarsenedNetlist, Coarsener};
use mmp_geom::Grid;
use mmp_netlist::{Design, Placement};
use mmp_nn::{Adam, InferenceCtx, Optimizer};
use mmp_obs::{field, Obs};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Error preparing or running pre-training.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// `config.net.zeta` differs from `config.zeta`.
    ZetaMismatch {
        /// Grid resolution of the network.
        net: usize,
        /// Grid resolution of the environment.
        env: usize,
    },
    /// Clustering/coarsening rejected the design.
    Cluster(ClusterError),
    /// Reward calibration had no usable samples.
    Calibration(CalibrationError),
    /// A checkpoint could not be written, or a resume checkpoint is not
    /// usable for this trainer (wrong network size, impossible progress).
    Checkpoint(CkptError),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::ZetaMismatch { net, env } => write!(
                f,
                "network grid and environment grid must agree (net ζ = {net}, env ζ = {env})"
            ),
            TrainError::Cluster(e) => write!(f, "clustering failed: {e}"),
            TrainError::Calibration(e) => write!(f, "reward calibration failed: {e}"),
            TrainError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<ClusterError> for TrainError {
    fn from(e: ClusterError) -> Self {
        TrainError::Cluster(e)
    }
}

impl From<CalibrationError> for TrainError {
    fn from(e: CalibrationError) -> Self {
        TrainError::Calibration(e)
    }
}

impl From<CkptError> for TrainError {
    fn from(e: CkptError) -> Self {
        TrainError::Checkpoint(e)
    }
}

/// One recorded step of an episode: `(s_p, s_a, t, total, action)`.
type StepRecord = (Vec<f32>, Vec<f32>, usize, usize, usize);

/// A buffered transition: a [`StepRecord`] plus its terminal reward.
type Transition = (Vec<f32>, Vec<f32>, usize, usize, usize, f32);

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Training episodes.
    pub episodes: usize,
    /// Agent update interval in episodes (paper: 30).
    pub update_every: usize,
    /// Random warm-up episodes for reward calibration (paper: 50).
    pub calibration_episodes: usize,
    /// Reward formula.
    pub reward: RewardKind,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed (the whole run is deterministic in it).
    pub seed: u64,
    /// Network size; `net.zeta` must equal `zeta`.
    pub net: AgentConfig,
    /// Grid resolution ζ (paper: 16).
    pub zeta: usize,
    /// Score episodes with the coarse proxy instead of the full
    /// legalize-and-place pipeline (fast experimentation; the paper always
    /// uses the full pipeline).
    pub coarse_eval: bool,
    /// Run the mixed-size prototyping placement before clustering (the
    /// paper's flow; disable for the fastest tests).
    pub prototype_placement: bool,
    /// Snapshot the agent every N episodes (the Fig. 5 experiment uses 35).
    pub checkpoint_every: Option<usize>,
    /// Cluster macros into groups before allocation (the paper's approach).
    /// Disabled, every macro is its own group — the per-macro formulation of
    /// CT/MaskPlace, used by the baselines and the grouping ablation.
    pub group_macros: bool,
    /// Entropy-bonus coefficient β (0 = the paper's plain A2C).
    pub entropy_beta: f32,
    /// Fault injection (test support): poison the gradients of the Nth
    /// optimizer chunk with NaN so the update-rejection guard can be
    /// exercised deterministically. `None` in production.
    #[serde(default)]
    pub fault_poison_update: Option<usize>,
}

impl TrainerConfig {
    /// The paper's settings (ζ = 16, update every 30 episodes, 50
    /// calibration episodes, full evaluation).
    pub fn paper() -> Self {
        TrainerConfig {
            episodes: 600,
            update_every: 30,
            calibration_episodes: 50,
            reward: RewardKind::default(),
            lr: 1e-3,
            seed: 0,
            net: AgentConfig::paper(),
            zeta: 16,
            coarse_eval: false,
            prototype_placement: true,
            checkpoint_every: None,
            group_macros: true,
            entropy_beta: 0.0,
            fault_poison_update: None,
        }
    }

    /// Laptop-scale settings over a ζ×ζ grid: tiny network, coarse
    /// evaluation, short schedule.
    pub fn tiny(zeta: usize) -> Self {
        TrainerConfig {
            episodes: 30,
            update_every: 5,
            calibration_episodes: 5,
            reward: RewardKind::default(),
            lr: 3e-3,
            seed: 0,
            net: AgentConfig::tiny(zeta),
            zeta,
            coarse_eval: true,
            prototype_placement: false,
            checkpoint_every: None,
            group_macros: true,
            entropy_beta: 0.0,
            fault_poison_update: None,
        }
    }
}

/// Per-episode training curves (the data behind Fig. 4).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// Reward of each training episode.
    pub episode_rewards: Vec<f64>,
    /// Raw wirelength of each training episode.
    pub episode_wirelengths: Vec<f64>,
    /// Optimizer chunks rejected by the gradient-health guard (a rejected
    /// chunk contributes nothing to the step; the last-good weights are
    /// kept).
    #[serde(default)]
    pub rejected_updates: usize,
    /// `true` when the training deadline expired before every scheduled
    /// episode ran; the agent holds the last-good weights at that point.
    #[serde(default)]
    pub early_stopped: bool,
}

/// The complete mid-training state captured at an optimizer-step boundary
/// (the transition buffer is empty there, so nothing in flight is lost).
///
/// Restarting [`Trainer::train_resumable`] from a `TrainCheckpoint`
/// continues the *exact* uninterrupted run: weights, optimizer moments,
/// per-episode curves, reward calibration, agent snapshots and the RNG
/// stream position are all restored, so the continuation is
/// bitwise-identical to never having stopped.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// Fully-completed episodes; training resumes at this episode index.
    pub episodes_done: usize,
    /// Optimizer steps applied so far (the sink cadence counter).
    pub updates_done: usize,
    /// Gradient chunks processed so far (drives fault injection replay).
    pub chunk_no: usize,
    /// The training RNG's exact stream position.
    pub rng: [u64; 4],
    /// Weights as of the last optimizer step.
    pub agent: Agent,
    /// Adam moments and step count.
    pub optimizer: Adam,
    /// Per-episode curves so far.
    pub history: TrainingHistory,
    /// The reward calibration (computed once, before episode 0).
    pub scale: RewardScale,
    /// `(episode, agent)` snapshots taken so far via `checkpoint_every`.
    pub snapshots: Vec<(usize, Agent)>,
}

/// Receiver for the partial [`TrainCheckpoint`]s
/// [`Trainer::train_resumable`] emits after each optimizer step; a sink
/// error aborts training as [`TrainError::Checkpoint`].
pub type TrainCheckpointSink<'a> = &'a mut dyn FnMut(&TrainCheckpoint) -> Result<(), CkptError>;

/// Everything `train` produces.
#[derive(Debug, Clone)]
pub struct TrainingOutcome {
    /// The trained agent.
    pub agent: Agent,
    /// Per-episode curves.
    pub history: TrainingHistory,
    /// The calibrated reward scale (shared with MCTS evaluation).
    pub scale: RewardScale,
    /// `(episode, agent-snapshot)` pairs when checkpointing was enabled.
    pub checkpoints: Vec<(usize, Agent)>,
}

enum Eval {
    Coarse(CoarseEvaluator),
    Full(Box<FullEvaluator>),
}

impl Eval {
    fn wirelength(&self, env: &PlacementEnv<'_>) -> f64 {
        match self {
            Eval::Coarse(e) => e.wirelength(env),
            Eval::Full(e) => e.wirelength(env),
        }
    }
}

/// The pre-training driver. Owns the coarsened problem; borrowes the design.
pub struct Trainer<'d> {
    design: &'d Design,
    coarse: CoarsenedNetlist,
    grid: Grid,
    config: TrainerConfig,
    evaluator: Eval,
    obs: Obs,
}

impl<'d> Trainer<'d> {
    /// Prepares the problem: prototyping placement (optional), clustering,
    /// coarsening.
    ///
    /// # Panics
    ///
    /// Panics when `config.net.zeta != config.zeta`; see
    /// [`Trainer::try_new`] for the fallible variant used by the hardened
    /// flow.
    pub fn new(design: &'d Design, config: TrainerConfig) -> Self {
        match Self::try_new(design, config) {
            Ok(t) => t,
            Err(e) => panic!("network grid and environment grid must agree: {e}"),
        }
    }

    /// Fallible preparation: returns a typed [`TrainError`] instead of
    /// panicking on a ζ mismatch or a clustering failure.
    ///
    /// # Errors
    ///
    /// See [`TrainError`].
    pub fn try_new(design: &'d Design, config: TrainerConfig) -> Result<Self, TrainError> {
        if config.net.zeta != config.zeta {
            return Err(TrainError::ZetaMismatch {
                net: config.net.zeta,
                env: config.zeta,
            });
        }
        let grid = Grid::new(*design.region(), config.zeta);
        let initial = if config.prototype_placement {
            GlobalPlacer::new(GlobalPlacerConfig::fast()).place_mixed(design)
        } else {
            Placement::initial(design)
        };
        let mut params = ClusterParams::paper(grid.cell_area());
        if !config.group_macros {
            // Per-macro mode: an infinite threshold stops all merging.
            params.nu = f64::INFINITY;
        }
        let coarse = Coarsener::new(&params).try_coarsen(design, &initial)?;
        let evaluator = if config.coarse_eval {
            Eval::Coarse(CoarseEvaluator::new())
        } else {
            Eval::Full(Box::new(FullEvaluator::fast()))
        };
        Ok(Trainer {
            design,
            coarse,
            grid,
            config,
            evaluator,
            obs: Obs::off(),
        })
    }

    /// Attaches an observability handle.
    ///
    /// With tracing enabled, training emits one `rl.train`/`episode` event
    /// per episode and an `early_stop` event when the deadline expires;
    /// counters `rl.episodes` and `rl.rejected_updates` accumulate in the
    /// handle's metrics registry either way.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The design being placed.
    pub fn design(&self) -> &'d Design {
        self.design
    }

    /// The coarsened netlist the trainer operates on.
    pub fn coarse(&self) -> &CoarsenedNetlist {
        &self.coarse
    }

    /// The allocation grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Scores a terminal episode with this trainer's evaluator.
    pub fn wirelength_of(&self, env: &PlacementEnv<'_>) -> f64 {
        self.evaluator.wirelength(env)
    }

    /// Plays one episode with uniformly-random (availability-weighted)
    /// actions; returns its wirelength.
    fn random_episode(&self, env: &mut PlacementEnv<'_>, rng: &mut SmallRng) -> f64 {
        env.reset();
        while !env.is_terminal() {
            let s = env.state();
            let action = crate::agent::sample_from(&s.s_a, rng)
                .unwrap_or_else(|| (s.t * 31 + 7) % s.s_a.len());
            env.step(action);
        }
        self.evaluator.wirelength(env)
    }

    /// Runs calibration + training and returns the outcome.
    ///
    /// # Panics
    ///
    /// Panics when reward calibration fails (every sample non-finite); see
    /// [`Trainer::train_with_deadline`] for the fallible variant.
    pub fn train(&self) -> TrainingOutcome {
        match self.train_with_deadline(None) {
            Ok(out) => out,
            Err(e) => panic!("training failed: {e}"),
        }
    }

    /// Runs calibration + training, stopping early when `deadline` passes.
    ///
    /// The deadline is checked between episodes: when it expires the loop
    /// stops, the agent keeps the weights of the last completed optimizer
    /// step (buffered but not-yet-applied transitions are dropped) and
    /// [`TrainingHistory::early_stopped`] is set. Optimizer chunks whose
    /// gradients come back non-finite are rejected wholesale and counted in
    /// [`TrainingHistory::rejected_updates`].
    ///
    /// # Errors
    ///
    /// See [`TrainError`].
    pub fn train_with_deadline(
        &self,
        deadline: Option<Instant>,
    ) -> Result<TrainingOutcome, TrainError> {
        self.train_resumable(deadline, None, None)
    }

    /// [`Trainer::train_with_deadline`] with crash-safe checkpointing.
    ///
    /// With `resume = Some(ck)` calibration is skipped (the checkpoint
    /// carries the calibrated scale and an RNG stream already past it) and
    /// training continues from `ck.episodes_done`; the continuation is
    /// bitwise-identical to an uninterrupted run. `sink` is invoked with a
    /// fresh [`TrainCheckpoint`] after every `checkpoint_every`-th
    /// optimizer step (every step when unset); a sink failure aborts
    /// training with [`TrainError::Checkpoint`] — losing checkpoint
    /// durability silently would defeat the point.
    ///
    /// # Errors
    ///
    /// See [`TrainError`]; a resume checkpoint whose network size differs
    /// from this trainer's, or whose progress exceeds the configured
    /// episode count, is rejected as [`TrainError::Checkpoint`].
    pub fn train_resumable(
        &self,
        deadline: Option<Instant>,
        resume: Option<TrainCheckpoint>,
        mut sink: Option<TrainCheckpointSink<'_>>,
    ) -> Result<TrainingOutcome, TrainError> {
        let mut env = PlacementEnv::new(self.design, &self.coarse, self.grid.clone());
        let mut ctx = InferenceCtx::new();
        let (mut rng, scale, mut agent, mut opt, mut history, mut checkpoints);
        let (mut chunk_no, mut updates_done, start_episode);
        match resume {
            Some(ck) => {
                if *ck.agent.config() != self.config.net {
                    return Err(TrainError::Checkpoint(CkptError::Invalid {
                        detail: format!(
                            "resume checkpoint was trained with a different network \
                             ({:?} vs {:?})",
                            ck.agent.config(),
                            self.config.net
                        ),
                    }));
                }
                if ck.episodes_done > self.config.episodes {
                    return Err(TrainError::Checkpoint(CkptError::Invalid {
                        detail: format!(
                            "resume checkpoint has {} episodes done but only {} are configured",
                            ck.episodes_done, self.config.episodes
                        ),
                    }));
                }
                // The snapshot was taken *after* calibration, so the restored
                // stream position already accounts for the warm-up draws.
                rng = SmallRng::from_state(ck.rng);
                scale = ck.scale;
                agent = ck.agent;
                opt = ck.optimizer;
                history = ck.history;
                checkpoints = ck.snapshots;
                chunk_no = ck.chunk_no;
                updates_done = ck.updates_done;
                start_episode = ck.episodes_done;
            }
            None => {
                rng = SmallRng::seed_from_u64(self.config.seed ^ 0x7e41);
                // 1) Random warm-up → reward calibration (Sec. III-E).
                let samples: Vec<f64> = (0..self.config.calibration_episodes.max(1))
                    .map(|_| self.random_episode(&mut env, &mut rng))
                    .collect();
                scale = RewardScale::try_calibrate(self.config.reward, &samples)?;
                agent = Agent::new(self.config.net);
                opt = Adam::new(self.config.lr);
                history = TrainingHistory::default();
                checkpoints = Vec::new();
                chunk_no = 0;
                updates_done = 0;
                start_episode = 0;
            }
        }

        // 2) A2C training.
        let mut buffer: Vec<Transition> = Vec::new();

        for episode in start_episode..self.config.episodes {
            // mmp-lint: allow(wallclock) why: budget-deadline probe; expiry only early-stops onto last-good weights
            if deadline.is_some_and(|d| Instant::now() >= d) {
                history.early_stopped = true;
                if self.obs.tracing() {
                    self.obs
                        .event("rl.train", "early_stop", &[field("episode", episode)]);
                }
                break;
            }
            env.reset();
            let mut steps: Vec<StepRecord> = Vec::new();
            while !env.is_terminal() {
                let s = env.state();
                let action = agent.sample_action(&s, &mut rng, &mut ctx);
                steps.push((s.s_p, s.s_a, s.t, s.total, action));
                env.step(action);
            }
            let w = self.evaluator.wirelength(&env);
            let r = scale.reward(w);
            history.episode_wirelengths.push(w);
            history.episode_rewards.push(r);
            // One branch when observability is off: no formatting, no lock.
            if self.obs.enabled() {
                self.obs.count("rl.episodes", 1);
                if self.obs.tracing() {
                    self.obs.event(
                        "rl.train",
                        "episode",
                        &[
                            field("episode", episode),
                            field("wirelength", w),
                            field("reward", r),
                        ],
                    );
                }
            }
            // The terminal reward is the reward of every step (Sec. III-E).
            for (s_p, s_a, t, total, action) in steps {
                buffer.push((s_p, s_a, t, total, action, r as f32));
            }

            let mut did_update = false;
            if (episode + 1) % self.config.update_every == 0 || episode + 1 == self.config.episodes
            {
                did_update = true;
                let net = agent.net_mut();
                let beta = self.config.entropy_beta;
                // One batched forward/backward per chunk instead of a
                // per-transition loop; gradients accumulate across chunks
                // into the single optimizer step below. Chunking bounds the
                // activation memory of a whole 30-episode buffer.
                const MAX_UPDATE_BATCH: usize = 64;
                for chunk in buffer.chunks(MAX_UPDATE_BATCH) {
                    let states: Vec<StateRef<'_>> = chunk
                        .iter()
                        .map(|(s_p, s_a, t, total, _, _)| StateRef {
                            s_p,
                            s_a,
                            t: *t,
                            total: *total,
                        })
                        .collect();
                    let targets: Vec<(usize, f32)> = chunk
                        .iter()
                        .map(|&(_, _, _, _, action, reward)| (action, reward))
                        .collect();
                    // Gradient-health guard: snapshot the accumulated
                    // gradients, run the chunk, and roll back wholesale if
                    // any gradient came back NaN/Inf so one poisoned chunk
                    // cannot corrupt the whole optimizer step.
                    let mut grad_snapshot: Vec<Vec<f32>> = Vec::new();
                    net.visit_params(&mut |p| grad_snapshot.push(p.grad.as_slice().to_vec()));
                    let _ = net.forward_train_batch(&states);
                    net.backward_batch(&targets, beta);
                    if self.config.fault_poison_update == Some(chunk_no) {
                        let mut done = false;
                        net.visit_params(&mut |p| {
                            if !done {
                                if let Some(g) = p.grad.as_mut_slice().first_mut() {
                                    *g = f32::NAN;
                                    done = true;
                                }
                            }
                        });
                    }
                    let mut healthy = true;
                    net.visit_params(&mut |p| healthy &= p.grad.is_finite());
                    if !healthy {
                        let mut i = 0usize;
                        net.visit_params(&mut |p| {
                            if let Some(saved) = grad_snapshot.get(i) {
                                p.grad.as_mut_slice().copy_from_slice(saved);
                            }
                            i += 1;
                        });
                        history.rejected_updates += 1;
                        if self.obs.enabled() {
                            self.obs.count("rl.rejected_updates", 1);
                            if self.obs.tracing() {
                                self.obs.event(
                                    "rl.train",
                                    "rejected_update",
                                    &[field("episode", episode), field("chunk", chunk_no)],
                                );
                            }
                        }
                    }
                    chunk_no += 1;
                }
                buffer.clear();
                opt.begin_step();
                net.visit_params(&mut |p| opt.update(p));
                net.zero_grad();
            }
            if let Some(k) = self.config.checkpoint_every {
                if (episode + 1) % k == 0 {
                    checkpoints.push((episode + 1, agent.clone()));
                }
            }
            if did_update {
                updates_done += 1;
                if let Some(sink) = sink.as_deref_mut() {
                    // Only optimizer-step boundaries are safe snapshot
                    // points: the transition buffer is empty, so the
                    // checkpoint is the whole training state.
                    let k = self.config.checkpoint_every.unwrap_or(1).max(1);
                    if updates_done % k == 0 {
                        let ck = TrainCheckpoint {
                            episodes_done: episode + 1,
                            updates_done,
                            chunk_no,
                            rng: rng.state(),
                            agent: agent.clone(),
                            optimizer: opt.clone(),
                            history: history.clone(),
                            scale: scale.clone(),
                            snapshots: checkpoints.clone(),
                        };
                        sink(&ck)?;
                        if self.obs.enabled() {
                            self.obs.count("ckpt.train_writes", 1);
                        }
                    }
                }
            }
        }

        Ok(TrainingOutcome {
            agent,
            history,
            scale,
            checkpoints,
        })
    }

    /// Plays one greedy episode with `agent`; returns the grid assignment
    /// and its wirelength (the "RL result" curve of Fig. 5).
    pub fn greedy_episode(&self, agent: &Agent) -> (Vec<mmp_geom::GridIndex>, f64) {
        let mut env = PlacementEnv::new(self.design, &self.coarse, self.grid.clone());
        let mut ctx = InferenceCtx::new();
        while !env.is_terminal() {
            let s = env.state();
            let action = agent.greedy_action(&s, &mut ctx);
            env.step(action);
        }
        let w = self.evaluator.wirelength(&env);
        (env.assignment().to_vec(), w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_netlist::SyntheticSpec;

    fn design(seed: u64) -> Design {
        SyntheticSpec::small("tr", 6, 0, 8, 40, 70, false, seed).generate()
    }

    #[test]
    fn training_runs_and_records_history() {
        let d = design(1);
        let mut cfg = TrainerConfig::tiny(4);
        cfg.episodes = 6;
        cfg.update_every = 3;
        let out = Trainer::new(&d, cfg).train();
        assert_eq!(out.history.episode_rewards.len(), 6);
        assert_eq!(out.history.episode_wirelengths.len(), 6);
        assert!(out.history.episode_wirelengths.iter().all(|w| *w > 0.0));
    }

    #[test]
    fn training_is_deterministic_in_seed() {
        let d = design(2);
        let mut cfg = TrainerConfig::tiny(4);
        cfg.episodes = 4;
        let a = Trainer::new(&d, cfg.clone()).train();
        let b = Trainer::new(&d, cfg).train();
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn checkpoints_are_taken() {
        let d = design(3);
        let mut cfg = TrainerConfig::tiny(4);
        cfg.episodes = 6;
        cfg.checkpoint_every = Some(2);
        let out = Trainer::new(&d, cfg).train();
        let eps: Vec<usize> = out.checkpoints.iter().map(|(e, _)| *e).collect();
        assert_eq!(eps, vec![2, 4, 6]);
    }

    #[test]
    fn greedy_episode_scores() {
        let d = design(4);
        let mut cfg = TrainerConfig::tiny(4);
        cfg.episodes = 3;
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let (assignment, w) = trainer.greedy_episode(&out.agent);
        assert_eq!(assignment.len(), trainer.coarse().macro_groups().len());
        assert!(w > 0.0);
    }

    #[test]
    fn paper_reward_episodes_are_positive_on_average() {
        // The design intent of Eq. 9: average reward sits slightly above 0.
        let d = design(5);
        let mut cfg = TrainerConfig::tiny(4);
        cfg.episodes = 10;
        cfg.calibration_episodes = 8;
        let out = Trainer::new(&d, cfg).train();
        let avg: f64 = out.history.episode_rewards.iter().sum::<f64>()
            / out.history.episode_rewards.len() as f64;
        assert!(avg > -0.5, "average reward {avg} far below zero");
    }

    #[test]
    #[should_panic(expected = "must agree")]
    fn zeta_mismatch_panics() {
        let d = design(6);
        let mut cfg = TrainerConfig::tiny(4);
        cfg.zeta = 8; // net still 4
        let _ = Trainer::new(&d, cfg);
    }

    #[test]
    fn try_new_reports_zeta_mismatch() {
        let d = design(6);
        let mut cfg = TrainerConfig::tiny(4);
        cfg.zeta = 8; // net still 4
        let err = Trainer::try_new(&d, cfg).err().unwrap();
        assert_eq!(err, TrainError::ZetaMismatch { net: 4, env: 8 });
    }

    #[test]
    fn expired_deadline_stops_training_before_any_episode() {
        let d = design(8);
        let mut cfg = TrainerConfig::tiny(4);
        cfg.episodes = 50;
        let trainer = Trainer::new(&d, cfg);
        // mmp-lint: allow(wallclock) why: test constructs an already-expired deadline on purpose
        let out = trainer.train_with_deadline(Some(Instant::now())).unwrap();
        assert!(out.history.early_stopped);
        assert!(out.history.episode_rewards.is_empty());
        // The untrained agent is still usable for greedy allocation.
        let (assignment, w) = trainer.greedy_episode(&out.agent);
        assert_eq!(assignment.len(), trainer.coarse().macro_groups().len());
        assert!(w > 0.0);
    }

    #[test]
    fn poisoned_gradient_chunk_is_rejected_and_training_survives() {
        let d = design(9);
        let mut cfg = TrainerConfig::tiny(4);
        cfg.episodes = 6;
        cfg.update_every = 3;
        cfg.fault_poison_update = Some(0);
        let out = Trainer::new(&d, cfg).train();
        assert!(out.history.rejected_updates >= 1);
        assert_eq!(out.history.episode_rewards.len(), 6);
        // Weights stayed finite: a greedy episode still scores.
        let mut net = out.agent.clone();
        let mut finite = true;
        net.net_mut()
            .visit_params(&mut |p| finite &= p.value.is_finite());
        assert!(finite, "weights were corrupted by a rejected chunk");
    }

    #[test]
    fn rejected_chunks_do_not_change_weights_relative_to_clean_skip() {
        // A fully-poisoned first update must leave the run deterministic:
        // two identical poisoned runs agree bit-for-bit.
        let d = design(10);
        let mut cfg = TrainerConfig::tiny(4);
        cfg.episodes = 4;
        cfg.update_every = 2;
        cfg.fault_poison_update = Some(0);
        let a = Trainer::new(&d, cfg.clone()).train();
        let b = Trainer::new(&d, cfg).train();
        assert_eq!(a.history, b.history);
        assert!(a.history.rejected_updates >= 1);
    }

    /// Runs training with a sink that records every checkpoint.
    fn train_recording(trainer: &Trainer<'_>) -> (TrainingOutcome, Vec<TrainCheckpoint>) {
        let mut taken: Vec<TrainCheckpoint> = Vec::new();
        let mut sink = |ck: &TrainCheckpoint| {
            taken.push(ck.clone());
            Ok(())
        };
        let out = trainer
            .train_resumable(None, None, Some(&mut sink))
            .unwrap();
        (out, taken)
    }

    #[test]
    fn resumed_training_is_bitwise_identical() {
        let d = design(11);
        let mut cfg = TrainerConfig::tiny(4);
        cfg.episodes = 6;
        cfg.update_every = 2;
        let trainer = Trainer::new(&d, cfg);
        let (full, taken) = train_recording(&trainer);
        assert_eq!(taken.len(), 3, "one checkpoint per optimizer step");
        // Resume from every intermediate checkpoint: each continuation must
        // land on the identical history and identical weights.
        for ck in taken.into_iter().take(2) {
            let resumed = trainer.train_resumable(None, Some(ck), None).unwrap();
            assert_eq!(resumed.history, full.history);
            assert_eq!(
                serde_json::to_string(&resumed.agent).unwrap(),
                serde_json::to_string(&full.agent).unwrap(),
                "weights diverged after resume"
            );
        }
    }

    #[test]
    fn checkpoint_survives_serde_and_still_resumes_identically() {
        let d = design(12);
        let mut cfg = TrainerConfig::tiny(4);
        cfg.episodes = 4;
        cfg.update_every = 2;
        cfg.checkpoint_every = Some(2);
        let trainer = Trainer::new(&d, cfg);
        let (full, taken) = train_recording(&trainer);
        let json = serde_json::to_string(&taken[0]).unwrap();
        let reloaded: TrainCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(reloaded.episodes_done, taken[0].episodes_done);
        assert_eq!(reloaded.rng, taken[0].rng);
        let resumed = trainer.train_resumable(None, Some(reloaded), None).unwrap();
        assert_eq!(resumed.history, full.history);
        assert_eq!(
            serde_json::to_string(&resumed.agent).unwrap(),
            serde_json::to_string(&full.agent).unwrap()
        );
        // Agent snapshots survive the round trip too.
        let eps: Vec<usize> = resumed.checkpoints.iter().map(|(e, _)| *e).collect();
        assert_eq!(eps, vec![2, 4]);
    }

    #[test]
    fn mismatched_resume_checkpoint_is_rejected() {
        let d = design(13);
        let mut cfg = TrainerConfig::tiny(4);
        cfg.episodes = 4;
        cfg.update_every = 2;
        let trainer = Trainer::new(&d, cfg.clone());
        let (_, taken) = train_recording(&trainer);

        // Wrong network size.
        let mut wrong_net = taken[0].clone();
        wrong_net.agent = Agent::new(AgentConfig::tiny(8));
        let err = trainer
            .train_resumable(None, Some(wrong_net), None)
            .unwrap_err();
        assert!(matches!(
            err,
            TrainError::Checkpoint(mmp_ckpt::CkptError::Invalid { .. })
        ));

        // Impossible progress.
        let mut too_far = taken[0].clone();
        too_far.episodes_done = 99;
        let err = trainer
            .train_resumable(None, Some(too_far), None)
            .unwrap_err();
        assert!(matches!(
            err,
            TrainError::Checkpoint(mmp_ckpt::CkptError::Invalid { .. })
        ));
    }

    #[test]
    fn sink_failure_aborts_training_with_typed_error() {
        let d = design(14);
        let mut cfg = TrainerConfig::tiny(4);
        cfg.episodes = 4;
        cfg.update_every = 2;
        let trainer = Trainer::new(&d, cfg);
        let mut sink = |_: &TrainCheckpoint| {
            Err(CkptError::Io {
                path: "/nonexistent/ck".into(),
                detail: "disk gone".into(),
            })
        };
        let err = trainer
            .train_resumable(None, None, Some(&mut sink))
            .unwrap_err();
        assert!(matches!(err, TrainError::Checkpoint(CkptError::Io { .. })));
    }

    #[test]
    fn full_eval_training_runs() {
        let d = design(7);
        let mut cfg = TrainerConfig::tiny(4);
        cfg.episodes = 2;
        cfg.calibration_episodes = 2;
        cfg.coarse_eval = false;
        let out = Trainer::new(&d, cfg).train();
        assert_eq!(out.history.episode_rewards.len(), 2);
    }
}
