//! 2-D points in placement coordinates (micrometres).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A position in the placement plane, in micrometres.
///
/// Coordinates are `f64` throughout the workspace: placement maths (quadratic
/// solves, HPWL gradients) needs the head-room and the designs involved never
/// exceed what `f64` resolves exactly.
///
/// # Example
///
/// ```
/// use mmp_geom::Point;
///
/// let a = Point::new(1.0, 2.0);
/// let b = Point::new(4.0, 6.0);
/// assert_eq!(a.manhattan_distance(b), 7.0);
/// assert_eq!((a + b), Point::new(5.0, 8.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (µm).
    pub x: f64,
    /// Vertical coordinate (µm).
    pub y: f64,
}

impl Point {
    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point at `(x, y)`.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Manhattan (L1) distance to `other`, the metric underlying HPWL.
    #[inline]
    pub fn manhattan_distance(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean (L2) distance to `other`, used by the clustering score
    /// functions (Δ𝐷 in Eqs. 1 and 2 of the paper).
    #[inline]
    pub fn euclidean_distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn manhattan_distance_basics() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.manhattan_distance(b), 7.0);
        assert_eq!(b.manhattan_distance(a), 7.0);
        assert_eq!(a.manhattan_distance(a), 0.0);
    }

    #[test]
    fn euclidean_distance_345() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.euclidean_distance(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a + b, Point::new(11.0, 22.0));
        assert_eq!(b - a, Point::new(9.0, 18.0));
        assert_eq!(a * 3.0, Point::new(3.0, 6.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new(1.0, 20.0);
        let b = Point::new(10.0, 2.0);
        assert_eq!(a.min(b), Point::new(1.0, 2.0));
        assert_eq!(a.max(b), Point::new(10.0, 20.0));
    }

    #[test]
    fn from_tuple_and_display() {
        let p: Point = (1.5, -2.5).into();
        assert_eq!(p, Point::new(1.5, -2.5));
        assert_eq!(p.to_string(), "(1.5, -2.5)");
    }

    #[test]
    fn origin_is_finite() {
        assert!(Point::ORIGIN.is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    proptest! {
        #[test]
        fn manhattan_is_symmetric(ax in -1e6f64..1e6, ay in -1e6f64..1e6,
                                  bx in -1e6f64..1e6, by in -1e6f64..1e6) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert!((a.manhattan_distance(b) - b.manhattan_distance(a)).abs() < 1e-9);
        }

        #[test]
        fn manhattan_triangle_inequality(ax in -1e3f64..1e3, ay in -1e3f64..1e3,
                                         bx in -1e3f64..1e3, by in -1e3f64..1e3,
                                         cx in -1e3f64..1e3, cy in -1e3f64..1e3) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.manhattan_distance(c)
                <= a.manhattan_distance(b) + b.manhattan_distance(c) + 1e-9);
        }

        #[test]
        fn euclidean_never_exceeds_manhattan(ax in -1e3f64..1e3, ay in -1e3f64..1e3,
                                             bx in -1e3f64..1e3, by in -1e3f64..1e3) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert!(a.euclidean_distance(b) <= a.manhattan_distance(b) + 1e-9);
        }
    }
}
