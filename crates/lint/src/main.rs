//! `mmp-lint` CLI.
//!
//! ```text
//! mmp-lint check [--root PATH] [--format text|json]
//!                [--deny-new] [--update-baseline] [--baseline PATH]
//! mmp-lint rules
//! ```
//!
//! Three check modes:
//!
//! * plain `check` — strict: any unsuppressed finding fails. Useful
//!   locally once a crate is fully swept.
//! * `check --deny-new` — the ratchet CI runs: findings covered by the
//!   committed `lint.baseline.json` are grandfathered; only *new*
//!   findings fail.
//! * `check --update-baseline` — regenerates the baseline from the
//!   current tree (see `baseline.rs` for when that is acceptable).
//!
//! Exit codes: `0` clean, `1` (new) unsuppressed findings, `2` usage
//! error, `3` I/O or baseline-file error.

use mmp_lint::{baseline, lint_workspace, render_json, render_text, LintConfig, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "rules" => {
            for (id, summary) in RULES {
                println!("{id:16} {summary}");
            }
            ExitCode::SUCCESS
        }
        "check" => check(&args[1..]),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mmp-lint check [--root PATH] [--format text|json]\n\
         \x20                     [--deny-new] [--update-baseline] [--baseline PATH]\n\
         \x20      mmp-lint rules"
    );
    ExitCode::from(2)
}

fn check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut deny_new = false;
    let mut update_baseline = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => return usage(),
            },
            "--deny-new" => deny_new = true,
            "--update-baseline" => update_baseline = true,
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if deny_new && update_baseline {
        eprintln!("mmp-lint: --deny-new and --update-baseline are mutually exclusive");
        return usage();
    }
    // `cargo run -p mmp-lint` executes from the workspace root; running
    // the binary from a subdirectory needs --root pointed at a checkout
    // with a `crates/` tree.
    if !root.join("crates").is_dir() {
        eprintln!(
            "mmp-lint: {} has no crates/ directory (pass --root <workspace>)",
            root.display()
        );
        return ExitCode::from(2);
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint.baseline.json"));
    let mut findings = match lint_workspace(&root, &LintConfig::default()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("mmp-lint: {e}");
            return ExitCode::from(3);
        }
    };

    if update_baseline {
        let base = baseline::compute(&findings);
        // why: one-shot CLI output artifact at the tool edge, not state the
        // flow resumes from — the atomic ckpt envelope is not warranted.
        #[allow(clippy::disallowed_methods)]
        if let Err(e) = std::fs::write(&baseline_path, baseline::to_json(&base)) {
            eprintln!("mmp-lint: writing {}: {e}", baseline_path.display());
            return ExitCode::from(3);
        }
        println!(
            "mmp-lint: wrote {} ({} entr{}, {} finding(s) grandfathered)",
            baseline_path.display(),
            base.entries.len(),
            if base.entries.len() == 1 { "y" } else { "ies" },
            base.entries.values().sum::<usize>()
        );
        return ExitCode::SUCCESS;
    }

    if deny_new {
        let src = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!(
                    "mmp-lint: reading baseline {}: {e} (run `mmp-lint check \
                     --update-baseline` to create it)",
                    baseline_path.display()
                );
                return ExitCode::from(3);
            }
        };
        let base = match baseline::parse(&src) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("mmp-lint: {}: {e}", baseline_path.display());
                return ExitCode::from(3);
            }
        };
        baseline::mark(&mut findings, &base);
    }

    if json {
        println!("{}", render_json(&findings));
    } else {
        // Plain `check` shows every unsuppressed finding; `--deny-new`
        // hides the grandfathered ones so regressions stand out.
        print!("{}", render_text(&findings, !deny_new));
    }
    let failing = findings.iter().any(|f| !f.suppressed && !f.baselined);
    if failing {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
