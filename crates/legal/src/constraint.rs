//! Constraint graphs derived from a sequence pair, and longest-path packing.

use crate::sequence_pair::{Relation, SequencePair};
use serde::{Deserialize, Serialize};

/// The horizontal *or* vertical constraint graph of a sequence pair: a DAG
/// whose edge `i → j` means "block `i`'s far edge must not pass block `j`'s
/// near edge" (`coord_i + size_i ≤ coord_j`).
///
/// Built per axis from every pairwise relation (O(n²) edges — macro counts
/// per design are at most ~800, so this is fine and keeps the structure
/// simple for the median-descent optimizer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstraintGraph {
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    topo: Vec<usize>,
}

impl ConstraintGraph {
    /// Builds the horizontal (`horizontal = true`) or vertical constraint
    /// graph of `sp`.
    ///
    /// Horizontal edges come from `LeftOf`; vertical edges from `Below`
    /// (the block below constrains the one above: `y_below + h ≤ y_above`).
    pub fn from_sequence_pair(sp: &SequencePair, horizontal: bool) -> Self {
        let n = sp.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        // Each edge writes both adjacency lists (succs[a] and preds[b]), so
        // plain index loops beat any iterator shape here.
        #[allow(clippy::needless_range_loop)]
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let edge = match sp.relation(a, b) {
                    Relation::LeftOf => horizontal,
                    Relation::Below => !horizontal,
                    _ => false,
                };
                if edge {
                    succs[a].push(b);
                    preds[b].push(a);
                }
            }
        }
        // Topological order: since edges follow a sequence order, sorting by
        // in-degree peeling (Kahn) is straightforward.
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            topo.push(i);
            for &j in &succs[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push(j);
                }
            }
        }
        debug_assert_eq!(topo.len(), n, "constraint graph must be acyclic");
        ConstraintGraph { preds, succs, topo }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// `true` for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Predecessors of block `i` (blocks that must end before it).
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Successors of block `i`.
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// A topological order of the blocks.
    pub fn topo_order(&self) -> &[usize] {
        &self.topo
    }
}

/// Longest-path (ASAP) packing: the minimal coordinate of each block along
/// one axis, starting at `lo`, honouring the constraint graph.
///
/// Returns the packed near-edge coordinates (lower-left corner component).
///
/// # Panics
///
/// Panics when `sizes.len() != graph.len()`.
pub fn pack(graph: &ConstraintGraph, sizes: &[f64], lo: f64) -> Vec<f64> {
    assert_eq!(sizes.len(), graph.len(), "size count mismatch");
    let mut coord = vec![lo; graph.len()];
    for &i in graph.topo_order() {
        let mut best = lo;
        for &p in graph.preds(i) {
            best = best.max(coord[p] + sizes[p]);
        }
        coord[i] = best;
    }
    coord
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_geom::{Point, Rect};
    use proptest::prelude::*;

    fn packed_rects(centers: &[Point], sizes: &[(f64, f64)]) -> Vec<Rect> {
        let sp = SequencePair::from_points(centers);
        let hg = ConstraintGraph::from_sequence_pair(&sp, true);
        let vg = ConstraintGraph::from_sequence_pair(&sp, false);
        let ws: Vec<f64> = sizes.iter().map(|s| s.0).collect();
        let hs: Vec<f64> = sizes.iter().map(|s| s.1).collect();
        let xs = pack(&hg, &ws, 0.0);
        let ys = pack(&vg, &hs, 0.0);
        (0..centers.len())
            .map(|i| Rect::new(xs[i], ys[i], ws[i], hs[i]))
            .collect()
    }

    #[test]
    fn two_blocks_pack_side_by_side() {
        let rects = packed_rects(
            &[Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
            &[(4.0, 4.0), (6.0, 2.0)],
        );
        assert_eq!(rects[0].x, 0.0);
        assert_eq!(rects[1].x, 4.0);
        assert!(!rects[0].overlaps(&rects[1]));
    }

    #[test]
    fn vertical_stack_packs_bottom_up() {
        let rects = packed_rects(
            &[Point::new(0.0, 0.0), Point::new(0.0, 10.0)],
            &[(4.0, 3.0), (4.0, 5.0)],
        );
        // Block 0 below block 1.
        assert_eq!(rects[0].y, 0.0);
        assert_eq!(rects[1].y, 3.0);
        assert!(!rects[0].overlaps(&rects[1]));
    }

    #[test]
    fn overlapped_input_becomes_disjoint() {
        // Three overlapping blocks near each other: packing must separate
        // them.
        let rects = packed_rects(
            &[
                Point::new(5.0, 5.0),
                Point::new(6.0, 5.5),
                Point::new(5.5, 6.0),
            ],
            &[(4.0, 4.0), (4.0, 4.0), (4.0, 4.0)],
        );
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                assert!(!rects[i].overlaps(&rects[j]), "{i} vs {j}");
            }
        }
    }

    #[test]
    fn topo_order_respects_edges() {
        let sp = SequencePair::from_sequences(&[0, 1, 2], &[0, 1, 2]); // chain left→right
        let g = ConstraintGraph::from_sequence_pair(&sp, true);
        let order = g.topo_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; 3];
            for (k, &b) in order.iter().enumerate() {
                p[b] = k;
            }
            p
        };
        assert!(pos[0] < pos[1] && pos[1] < pos[2]);
        assert_eq!(g.succs(0), &[1, 2]);
        assert_eq!(g.preds(2), &[0, 1]);
    }

    #[test]
    fn empty_graph_packs_empty() {
        let sp = SequencePair::from_points(&[]);
        let g = ConstraintGraph::from_sequence_pair(&sp, true);
        assert!(g.is_empty());
        assert!(pack(&g, &[], 5.0).is_empty());
    }

    #[test]
    fn pack_starts_at_lo() {
        let sp = SequencePair::from_points(&[Point::ORIGIN]);
        let g = ConstraintGraph::from_sequence_pair(&sp, true);
        assert_eq!(pack(&g, &[3.0], 7.5), vec![7.5]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn packing_never_overlaps(
            blocks in proptest::collection::vec(
                (-50.0f64..50.0, -50.0f64..50.0, 1.0f64..10.0, 1.0f64..10.0), 1..12),
        ) {
            let centers: Vec<Point> = blocks.iter().map(|b| Point::new(b.0, b.1)).collect();
            let sizes: Vec<(f64, f64)> = blocks.iter().map(|b| (b.2, b.3)).collect();
            let rects = packed_rects(&centers, &sizes);
            for i in 0..rects.len() {
                for j in (i + 1)..rects.len() {
                    prop_assert!(!rects[i].overlaps(&rects[j]),
                        "blocks {} and {} overlap: {} vs {}", i, j, rects[i], rects[j]);
                }
            }
        }
    }
}
