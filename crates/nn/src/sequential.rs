//! A sequential container over boxed layers — convenience composition for
//! straight-line networks (the policy/value net composes its branched
//! architecture by hand; tools and tests use this for quick models).

use crate::infer::InferenceCtx;
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// Runs layers in order on `forward` and in reverse on `backward`.
///
/// # Example
///
/// ```
/// use mmp_nn::{Layer, Linear, Relu, Sequential, Tensor};
///
/// let mut net = Sequential::new();
/// net.push(Linear::new(4, 8, 0));
/// net.push(Relu::new());
/// net.push(Linear::new(8, 2, 1));
/// let out = net.forward(&Tensor::zeros(&[1, 4]), false);
/// assert_eq!(out.shape(), &[1, 2]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty container.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when no layer has been pushed.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn infer(&self, input: &Tensor, ctx: &mut InferenceCtx) -> Tensor {
        let mut owned: Option<Tensor> = None;
        for layer in &self.layers {
            let next = layer.infer(owned.as_ref().unwrap_or(input), ctx);
            if let Some(prev) = owned.replace(next) {
                ctx.recycle_tensor(prev);
            }
        }
        owned.unwrap_or_else(|| input.clone())
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Optimizer, Relu, Sgd};

    #[test]
    fn empty_sequential_is_identity() {
        let mut net = Sequential::new();
        assert!(net.is_empty());
        let x = Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]);
        assert_eq!(net.forward(&x, true), x);
        assert_eq!(net.backward(&x), x);
    }

    #[test]
    fn mlp_learns_a_linear_map() {
        // Fit y = x0 - x1 with a tiny MLP via SGD.
        let mut net = Sequential::new();
        net.push(Linear::new(2, 8, 0));
        net.push(Relu::new());
        net.push(Linear::new(8, 1, 1));
        let mut opt = Sgd::new(0.05, 0.9);
        let samples: Vec<([f32; 2], f32)> = vec![
            ([1.0, 0.0], 1.0),
            ([0.0, 1.0], -1.0),
            ([1.0, 1.0], 0.0),
            ([0.5, 0.25], 0.25),
        ];
        for _ in 0..300 {
            for (x, y) in &samples {
                let input = Tensor::from_vec(&[1, 2], x.to_vec());
                let out = net.forward(&input, true);
                let err = out.as_slice()[0] - y;
                net.backward(&Tensor::from_vec(&[1, 1], vec![2.0 * err]));
                opt.begin_step();
                net.visit_params(&mut |p| opt.update(p));
                net.zero_grad();
            }
        }
        for (x, y) in &samples {
            let input = Tensor::from_vec(&[1, 2], x.to_vec());
            let got = net.forward(&input, false).as_slice()[0];
            assert!((got - y).abs() < 0.1, "f({x:?}) = {got}, want {y}");
        }
    }

    #[test]
    fn backward_runs_in_reverse_order() {
        // A 3→5→2 stack: the gradient of the input must have the input's
        // shape, proving the chain ran end to end.
        let mut net = Sequential::new();
        net.push(Linear::new(3, 5, 0));
        net.push(Relu::new());
        net.push(Linear::new(5, 2, 1));
        assert_eq!(net.len(), 3);
        let x = Tensor::from_vec(&[2, 3], vec![0.5; 6]);
        let out = net.forward(&x, true);
        let g = net.backward(&Tensor::from_vec(out.shape(), vec![1.0; out.len()]));
        assert_eq!(g.shape(), &[2, 3]);
    }
}
