//! Quickstart: place a small synthetic mixed-size design end-to-end.
//!
//! ```sh
//! cargo run --release -p mmp-examples --bin quickstart
//! ```

use mmp_analytic::{legalize_cells_into_rows, rudy};
use mmp_core::{DesignStats, MacroPlacer, PlacerConfig, SyntheticSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small circuit: 12 movable macros, 2 preplaced, 400 cells — with
    // design hierarchy, like the paper's industrial benchmarks.
    let design = SyntheticSpec::small("quickstart", 12, 2, 24, 400, 650, true, 42).generate();
    println!("design: {}", DesignStats::of(&design));

    // Laptop-scale flow config: ζ = 8 grid, tiny network, short training.
    let mut config = PlacerConfig::fast(8);
    config.trainer.episodes = 20;
    config.trainer.calibration_episodes = 8;
    config.mcts.explorations = 24;

    let placer = MacroPlacer::new(config);
    let result = placer.place(&design)?;

    println!("\n=== placement result ===");
    println!("HPWL:                {:.1} um", result.hpwl);
    println!(
        "macro overlap:       {:.3} um^2 (0 = legal)",
        result.placement.macro_overlap_area(&design)
    );
    println!(
        "macro groups placed: {} (grid cells: {:?} ...)",
        result.assignment.len(),
        &result.assignment[..result.assignment.len().min(5)]
    );
    println!(
        "MCTS effort:         {} explorations, {} value evals, {} terminal evals, {} nodes",
        result.mcts_stats.explorations,
        result.mcts_stats.value_evaluations,
        result.mcts_stats.terminal_evaluations,
        result.mcts_stats.nodes
    );
    println!(
        "timings:             preprocess {:?}, training {:?}, mcts {:?}, finalize {:?}",
        result.timings.preprocess,
        result.timings.training,
        result.timings.mcts,
        result.timings.finalize
    );
    // Post-flow quality extras: row-legalize the cells and estimate
    // routing congestion (RUDY).
    let rows = legalize_cells_into_rows(&design, &result.placement, 1.0);
    let congestion = rudy(&design, &rows.placement, 16);
    println!(
        "row legalization:    {} unplaced, mean displacement {:.2} um, HPWL {:.1}",
        rows.unplaced,
        rows.mean_displacement,
        rows.placement.hpwl(&design)
    );
    println!(
        "congestion (RUDY):   peak {:.3}, mean {:.3}",
        congestion.peak(),
        congestion.mean()
    );
    let first = result
        .training
        .episode_rewards
        .first()
        .copied()
        .unwrap_or(0.0);
    let last = result
        .training
        .episode_rewards
        .last()
        .copied()
        .unwrap_or(0.0);
    println!("reward first -> last episode: {first:.3} -> {last:.3}");
    Ok(())
}
