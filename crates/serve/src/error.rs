//! Typed rejections and failures of the serving layer.
//!
//! Every way `mmpd` can refuse or fail a request is a [`ServeError`]
//! variant with a stable machine-readable `kind`, so clients never have
//! to parse prose — and the fault matrix can assert exact outcomes.

use mmp_core::PlaceError;
use serde::Value;
use std::error::Error;
use std::fmt;

/// One serving-layer failure, mapped onto the wire as
/// `{"ok":false,"error":{"kind":...,...}}`.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request line is not a valid job request (bad JSON, unknown op,
    /// missing design, oversized line, invalid id, unusable design spec).
    BadRequest {
        /// What was wrong.
        detail: String,
    },
    /// The bounded job queue is at capacity; resubmit later.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The requested budget exceeds the daemon's per-job ceiling.
    OverBudget {
        /// Milliseconds the request asked for.
        requested_ms: u64,
        /// The daemon's ceiling in milliseconds.
        max_ms: u64,
    },
    /// The daemon is draining for shutdown and admits no new work.
    ShuttingDown,
    /// A `result` query named a job this daemon has never accepted.
    UnknownJob {
        /// The id queried.
        id: String,
    },
    /// The job kept failing with transient-classed errors past the
    /// attempt cap and was quarantined instead of retried forever.
    Quarantined {
        /// The job id.
        id: String,
        /// Attempts consumed before quarantine.
        attempts: usize,
        /// The last transient error's message.
        last_error: String,
    },
    /// The placer refused the job with a permanent typed error.
    Place {
        /// The failing stage's name.
        stage: String,
        /// The stage's CLI exit code (10–16).
        exit_code: u8,
        /// Human-readable message.
        message: String,
        /// Attempts consumed (1 for a permanent first-attempt failure).
        attempts: usize,
    },
    /// Daemon-side I/O trouble (journal write, state-dir access).
    Internal {
        /// What failed.
        detail: String,
    },
}

impl ServeError {
    /// Stable machine-readable discriminator for the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::BadRequest { .. } => "bad-request",
            ServeError::QueueFull { .. } => "queue-full",
            ServeError::OverBudget { .. } => "over-budget",
            ServeError::ShuttingDown => "shutting-down",
            ServeError::UnknownJob { .. } => "unknown-job",
            ServeError::Quarantined { .. } => "quarantined",
            ServeError::Place { .. } => "place",
            ServeError::Internal { .. } => "internal",
        }
    }

    /// `true` when the *client* may reasonably resubmit the same request
    /// later: the rejection reflects daemon state, not the request.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            ServeError::QueueFull { .. } | ServeError::ShuttingDown | ServeError::Internal { .. }
        )
    }

    /// Converts a flow failure plus the attempts consumed into the
    /// serving-layer classification.
    pub fn from_place(e: &PlaceError, attempts: usize) -> Self {
        ServeError::Place {
            stage: e.stage().name().to_owned(),
            exit_code: e.exit_code(),
            message: e.to_string(),
            attempts,
        }
    }

    /// The error as a JSON [`Value`] for the wire.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("kind".to_owned(), Value::Str(self.kind().to_owned())),
            ("message".to_owned(), Value::Str(self.to_string())),
            ("retryable".to_owned(), Value::Bool(self.retryable())),
        ];
        match self {
            ServeError::QueueFull { capacity } => {
                fields.push(("capacity".to_owned(), Value::U64(*capacity as u64)));
            }
            ServeError::OverBudget {
                requested_ms,
                max_ms,
            } => {
                fields.push(("requested_ms".to_owned(), Value::U64(*requested_ms)));
                fields.push(("max_ms".to_owned(), Value::U64(*max_ms)));
            }
            ServeError::Quarantined { attempts, .. } => {
                fields.push(("attempts".to_owned(), Value::U64(*attempts as u64)));
            }
            ServeError::Place {
                stage,
                exit_code,
                attempts,
                ..
            } => {
                fields.push(("stage".to_owned(), Value::Str(stage.clone())));
                fields.push(("exit_code".to_owned(), Value::U64(u64::from(*exit_code))));
                fields.push(("attempts".to_owned(), Value::U64(*attempts as u64)));
            }
            _ => {}
        }
        Value::Map(fields)
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            ServeError::QueueFull { capacity } => {
                write!(f, "job queue is full ({capacity} slots); resubmit later")
            }
            ServeError::OverBudget {
                requested_ms,
                max_ms,
            } => write!(
                f,
                "requested budget {requested_ms} ms exceeds the daemon ceiling {max_ms} ms"
            ),
            ServeError::ShuttingDown => {
                write!(f, "daemon is shutting down and admits no new work")
            }
            ServeError::UnknownJob { id } => write!(f, "unknown job id '{id}'"),
            ServeError::Quarantined {
                id,
                attempts,
                last_error,
            } => write!(
                f,
                "job '{id}' quarantined after {attempts} transient failure(s); last: {last_error}"
            ),
            ServeError::Place { stage, message, .. } => {
                write!(f, "placement failed in {stage}: {message}")
            }
            ServeError::Internal { detail } => write!(f, "internal: {detail}"),
        }
    }
}

impl Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::map_get;

    #[test]
    fn kinds_are_stable_and_unique() {
        let errs = [
            ServeError::BadRequest { detail: "x".into() },
            ServeError::QueueFull { capacity: 4 },
            ServeError::OverBudget {
                requested_ms: 100,
                max_ms: 10,
            },
            ServeError::ShuttingDown,
            ServeError::UnknownJob { id: "j".into() },
            ServeError::Quarantined {
                id: "j".into(),
                attempts: 3,
                last_error: "io".into(),
            },
            ServeError::Place {
                stage: "search".into(),
                exit_code: 12,
                message: "m".into(),
                attempts: 1,
            },
            ServeError::Internal { detail: "d".into() },
        ];
        let mut kinds: Vec<&str> = errs.iter().map(ServeError::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), errs.len());
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn wire_value_carries_kind_and_extras() {
        let v = ServeError::OverBudget {
            requested_ms: 100,
            max_ms: 10,
        }
        .to_value();
        assert_eq!(map_get(&v, "kind"), Some(&Value::Str("over-budget".into())));
        assert_eq!(map_get(&v, "requested_ms"), Some(&Value::U64(100)));
        assert_eq!(map_get(&v, "retryable"), Some(&Value::Bool(false)));

        let v = ServeError::QueueFull { capacity: 2 }.to_value();
        assert_eq!(map_get(&v, "retryable"), Some(&Value::Bool(true)));
        assert_eq!(map_get(&v, "capacity"), Some(&Value::U64(2)));
    }

    #[test]
    fn place_errors_keep_stage_and_exit_code() {
        let pe = PlaceError::Search(mmp_core::SearchError::NoRuns);
        let e = ServeError::from_place(&pe, 1);
        let v = e.to_value();
        assert_eq!(map_get(&v, "stage"), Some(&Value::Str("search".into())));
        assert_eq!(map_get(&v, "exit_code"), Some(&Value::U64(12)));
        assert_eq!(map_get(&v, "attempts"), Some(&Value::U64(1)));
    }
}
