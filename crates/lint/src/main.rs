//! `mmp-lint` CLI.
//!
//! ```text
//! mmp-lint check [--root PATH] [--format text|json]
//! mmp-lint rules
//! ```
//!
//! Exit codes: `0` clean (every finding fixed or suppressed with a
//! `why:`), `1` unsuppressed findings, `2` usage error, `3` I/O error.

use mmp_lint::{lint_workspace, render_json, render_text, LintConfig, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "rules" => {
            for (id, summary) in RULES {
                println!("{id:12} {summary}");
            }
            ExitCode::SUCCESS
        }
        "check" => check(&args[1..]),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: mmp-lint check [--root PATH] [--format text|json]\n       mmp-lint rules");
    ExitCode::from(2)
}

fn check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    // `cargo run -p mmp-lint` executes from the workspace root; running
    // the binary from a subdirectory needs --root pointed at a checkout
    // with a `crates/` tree.
    if !root.join("crates").is_dir() {
        eprintln!(
            "mmp-lint: {} has no crates/ directory (pass --root <workspace>)",
            root.display()
        );
        return ExitCode::from(2);
    }
    let findings = match lint_workspace(&root, &LintConfig::default()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("mmp-lint: {e}");
            return ExitCode::from(3);
        }
    };
    if json {
        println!("{}", render_json(&findings));
    } else {
        print!("{}", render_text(&findings));
    }
    if findings.iter().any(|f| !f.suppressed) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
