//! SE-like baseline: the simulated-evolution macro placer of Lin et al.
//! \[24\]\[26\] (the Table II contender).
//!
//! Simulated evolution alternates three phases over a current solution:
//!
//! 1. **Evaluation** — each macro group gets a goodness score; here the
//!    ratio of its best achievable coarse wirelength to its current one,
//!    boosted by hierarchy affinity with its grid neighbours (the
//!    "dataflow/hierarchy aware" ingredient of \[26\]).
//! 2. **Selection** — low-goodness groups are ripped up probabilistically.
//! 3. **Allocation** — ripped groups are re-placed greedily at their best
//!    grid cell given everything else (a wiremask-style scan).
//!
//! The loop keeps the best solution seen and stops after a fixed number of
//! generations.

use crate::placer::MacroPlacer;
use mmp_cluster::{ClusterParams, CoarseHpwlCache, CoarsenedNetlist, Coarsener};
use mmp_geom::{Grid, GridIndex, Point};
use mmp_legal::MacroLegalizer;
use mmp_netlist::{hierarchy_affinity, Design, Placement};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Simulated-evolution schedule.
#[derive(Debug, Clone)]
pub struct SePlacer {
    /// Generations of evaluate/select/allocate.
    pub generations: usize,
    /// Grid resolution ζ.
    pub zeta: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SePlacer {
    /// An SE placer with the given generation budget.
    pub fn new(generations: usize, zeta: usize, seed: u64) -> Self {
        SePlacer {
            generations,
            zeta,
            seed,
        }
    }

    /// Coarse wirelength of group `g` at cell `idx`, all others fixed —
    /// a speculative probe on the delta evaluator: stage the move, read the
    /// group's local (incident-net) sum, roll back. O(nets touching `g`)
    /// instead of a scan over every coarse net, with values bitwise-equal
    /// to the old filter-and-sum pass.
    fn group_cost(
        cache: &mut CoarseHpwlCache,
        coarse: &CoarsenedNetlist,
        grid: &Grid,
        g: usize,
        idx: GridIndex,
    ) -> f64 {
        cache.set_group(coarse, g, grid.cell_at(idx).center());
        let cost = cache.group_local(g);
        cache.revert();
        cost
    }

    /// Hierarchy affinity of group `g` with groups assigned to nearby cells.
    fn hierarchy_bonus(coarse: &CoarsenedNetlist, assignment: &[GridIndex], g: usize) -> f64 {
        let me = &coarse.macro_groups()[g];
        let mine = assignment[g];
        let mut bonus = 0.0;
        for (other, grp) in coarse.macro_groups().iter().enumerate() {
            if other == g {
                continue;
            }
            let at = assignment[other];
            let dist =
                (at.col as f64 - mine.col as f64).abs() + (at.row as f64 - mine.row as f64).abs();
            if dist <= 2.0 {
                bonus += hierarchy_affinity(&me.hierarchy, &grp.hierarchy) as f64;
            }
        }
        bonus
    }
}

impl MacroPlacer for SePlacer {
    fn name(&self) -> &str {
        "SE"
    }

    fn place_macros(&self, design: &Design) -> Placement {
        let grid = Grid::new(*design.region(), self.zeta);
        let coarse = Coarsener::new(&ClusterParams::paper(grid.cell_area()))
            .coarsen(design, &Placement::initial(design));
        let groups = coarse.macro_groups().len();
        if groups == 0 {
            return Placement::initial(design);
        }
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x5e);
        let mut assignment: Vec<GridIndex> = (0..groups)
            .map(|_| grid.unflatten(rng.gen_range(0..grid.cell_count())))
            .collect();
        let centers: Vec<Point> = assignment
            .iter()
            .map(|&i| grid.cell_at(i).center())
            .collect();
        let mut cache = CoarseHpwlCache::new(&coarse, centers, coarse.cell_group_centers());
        let mut best = (assignment.clone(), cache.total());

        for _ in 0..self.generations {
            // Evaluation: goodness = best achievable / current (≤ 1).
            let mut goodness = vec![1.0f64; groups];
            for g in 0..groups {
                let current = Self::group_cost(&mut cache, &coarse, &grid, g, assignment[g]);
                let mut best_cost = current;
                for flat in 0..grid.cell_count() {
                    let c = Self::group_cost(&mut cache, &coarse, &grid, g, grid.unflatten(flat));
                    if c < best_cost {
                        best_cost = c;
                    }
                }
                let base = if current > 0.0 {
                    best_cost / current
                } else {
                    1.0
                };
                // Hierarchy-adjacent groups are harder to rip up.
                let bonus = Self::hierarchy_bonus(&coarse, &assignment, g);
                goodness[g] = (base + 0.05 * bonus).min(1.0);
            }
            // Selection + allocation.
            for g in 0..groups {
                if rng.gen::<f64>() < goodness[g] {
                    continue; // survives
                }
                let mut best_cell = assignment[g];
                let mut best_cost = f64::INFINITY;
                for flat in 0..grid.cell_count() {
                    let idx = grid.unflatten(flat);
                    let c = Self::group_cost(&mut cache, &coarse, &grid, g, idx);
                    if c < best_cost {
                        best_cost = c;
                        best_cell = idx;
                    }
                }
                assignment[g] = best_cell;
                cache.set_group(&coarse, g, grid.cell_at(best_cell).center());
                cache.commit();
            }
            let cost = cache.total();
            if cost < best.1 {
                best = (assignment.clone(), cost);
            }
        }

        MacroLegalizer::new()
            .legalize(design, &coarse, &best.0, &grid)
            .expect("assignment matches group count")
            .placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placer::{score_hpwl, RandomPlacer};
    use mmp_netlist::SyntheticSpec;

    #[test]
    fn se_beats_random_on_average() {
        let mut wins = 0;
        for seed in 0..3 {
            let d = SyntheticSpec::small("se", 8, 0, 10, 80, 140, true, seed).generate();
            let se = score_hpwl(&d, &SePlacer::new(10, 8, seed).place_macros(&d));
            let random = score_hpwl(&d, &RandomPlacer::new(seed, 8).place_macros(&d));
            if se < random {
                wins += 1;
            }
        }
        assert!(wins >= 2, "SE won only {wins}/3 against random");
    }

    #[test]
    fn se_output_is_legal_and_deterministic() {
        let d = SyntheticSpec::small("sed", 7, 2, 8, 60, 110, true, 10).generate();
        let p = SePlacer::new(4, 8, 3);
        let a = p.place_macros(&d);
        assert_eq!(a, p.place_macros(&d));
        assert!(a.macro_overlap_area(&d) < 1e-6);
    }

    #[test]
    fn zero_macro_design_is_a_noop() {
        let d = SyntheticSpec::small("sez", 0, 0, 8, 40, 60, false, 1).generate();
        let pl = SePlacer::new(3, 8, 0).place_macros(&d);
        assert_eq!(pl, Placement::initial(&d));
    }
}
