//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde::Value` model as JSON.
//!
//! Numbers render via `{:?}` (shortest round-trip for floats); non-finite
//! floats render as `null` and read back as NaN via `serde`'s float impls.
//! Only files written by this workspace are ever read back, so fidelity to
//! upstream serde_json beyond that is not required.

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization failure.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(e.to_string())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                render(val, out);
            }
            out.push('}');
        }
    }
}

/// Serializes `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out);
    Ok(out)
}

/// Serializes `value` to a JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes `value` as JSON into `writer`.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn fail(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            // Accepted for robustness: `{:?}` renders of non-finite floats
            // from older writers.
            Some(b'N') if self.eat_literal("NaN") => Ok(Value::F64(f64::NAN)),
            Some(b'i') if self.eat_literal("inf") => Ok(Value::F64(f64::INFINITY)),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            if self.eat_literal("inf") {
                return Ok(Value::F64(f64::NEG_INFINITY));
            }
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid utf-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.fail("invalid float"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| self.fail("invalid integer"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| self.fail("invalid integer"))
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.fail("truncated \\u escape"))?;
        let code = u16::from_str_radix(hex, 16).map_err(|_| self.fail("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_literal("\\u") {
                                    return Err(self.fail("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.fail("invalid surrogate pair"))?
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.fail("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.fail("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.fail("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a JSON string into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing characters"));
    }
    Ok(v)
}

/// Deserializes `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    Ok(T::deserialize(&parse_value(s)?)?)
}

/// Deserializes `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(s)
}

/// Deserializes `T` from a JSON reader.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::U64(0),
            Value::U64(u64::MAX),
            Value::I64(-42),
            Value::F64(0.1),
            Value::F64(-1.5e-8),
            Value::Str("a \"quoted\" line\nwith\ttabs \\ and unicode ü 🦀".to_string()),
        ] {
            let text = {
                let mut s = String::new();
                render(&v, &mut s);
                s
            };
            assert_eq!(parse_value(&text).unwrap(), v, "text: {text}");
        }
    }

    #[test]
    fn nested_roundtrip() {
        let v = Value::Map(vec![
            (
                "xs".to_string(),
                Value::Seq(vec![Value::U64(1), Value::F64(2.5)]),
            ),
            (
                "inner".to_string(),
                Value::Map(vec![("k".to_string(), Value::Null)]),
            ),
        ]);
        let text = to_string(&Wrapper(v.clone())).unwrap();
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    struct Wrapper(Value);

    impl Serialize for Wrapper {
        fn serialize(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn float_precision_survives() {
        let x = std::f64::consts::PI;
        let text = to_string(&x).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, x);
        let f: f32 = 1.0e-7;
        let text = to_string(&f).unwrap();
        let back: f32 = from_str(&text).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("{").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<Vec<f64>>("[1,]").is_err());
    }
}
