//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. **macro grouping** (the paper's complexity-reduction transform) vs
//!    per-macro allocation (the CT/MaskPlace formulation),
//! 2. **exploration budget γ** (how much search the pre-trained agent
//!    needs),
//! 3. **PUCT constant c** around the paper's 1.05,
//! 4. **value-network leaf evaluation** vs committing with the raw policy
//!    (γ = 1 degenerates MCTS to near-greedy-RL).
//!
//! ```sh
//! cargo run --release -p mmp-bench --bin ablations
//! ```

use mmp_bench::{header, iccad_scale, scaled_count};
use mmp_core::{iccad04_suite, Trainer, TrainerConfig};
use mmp_mcts::{MctsConfig, MctsPlacer};

fn trainer_config(_group_macros: bool, episodes: usize) -> TrainerConfig {
    let mut cfg = TrainerConfig::tiny(8);
    cfg.prototype_placement = true;
    cfg.coarse_eval = false;
    cfg.update_every = 10;
    cfg.calibration_episodes = (episodes / 6).max(5);
    cfg.episodes = episodes;
    cfg
}

fn main() {
    header(
        "Ablations — grouping, exploration budget, PUCT constant",
        "circuit: ibm01-like; metric: final HPWL after legalize + cell placement",
    );
    let spec = iccad04_suite()[0].scaled(iccad_scale());
    let design = spec.generate();
    println!(
        "circuit: {} ({} macros, {} cells)\n",
        design.name(),
        design.movable_macros().len(),
        design.cells().len()
    );
    let episodes = scaled_count(240, 30);
    let explorations = scaled_count(300, 16);

    // --- 1) grouping on/off -------------------------------------------
    println!("[1] macro grouping (the paper's coarsening) vs per-macro:");
    for group in [true, false] {
        let mut cfg = trainer_config(group, episodes);
        cfg.group_macros = group;
        let trainer = Trainer::new(&design, cfg);
        let t0 = std::time::Instant::now();
        let out = trainer.train();
        let result = MctsPlacer::new(MctsConfig {
            explorations,
            ..MctsConfig::default()
        })
        .place(&trainer, &out.agent, &out.scale);
        println!(
            "  group_macros={group:<5} groups={:<4} wirelength={:<10.0} total {:?}",
            trainer.coarse().macro_groups().len(),
            result.wirelength,
            t0.elapsed()
        );
    }

    // --- 2) exploration budget sweep ------------------------------------
    println!("\n[2] exploration budget gamma (same trained agent):");
    let trainer = Trainer::new(&design, trainer_config(true, episodes));
    let out = trainer.train();
    for gamma in [1usize, 8, 32, 128, explorations] {
        let result = MctsPlacer::new(MctsConfig {
            explorations: gamma,
            ..MctsConfig::default()
        })
        .place(&trainer, &out.agent, &out.scale);
        println!(
            "  gamma={gamma:<5} wirelength={:<10.0} terminal evals={} nodes={}",
            result.wirelength, result.stats.terminal_evaluations, result.stats.nodes
        );
    }

    // --- 3) PUCT constant sweep -----------------------------------------
    println!("\n[3] PUCT constant c (paper: 1.05):");
    for c in [0.2, 1.05, 3.0, 8.0] {
        let result = MctsPlacer::new(MctsConfig {
            c_puct: c,
            explorations: explorations / 2,
            ..MctsConfig::default()
        })
        .place(&trainer, &out.agent, &out.scale);
        println!("  c={c:<5} wirelength={:<10.0}", result.wirelength);
    }

    // --- 4) greedy RL vs MCTS (value-net guidance) ----------------------
    println!("\n[4] greedy RL rollout vs MCTS with the same agent:");
    let (_, rl_w) = trainer.greedy_episode(&out.agent);
    let mcts_w = MctsPlacer::new(MctsConfig {
        explorations,
        ..MctsConfig::default()
    })
    .place(&trainer, &out.agent, &out.scale)
    .wirelength;
    println!("  greedy RL:  {rl_w:.0}");
    println!(
        "  MCTS:       {mcts_w:.0} ({:+.1}%)",
        (mcts_w / rl_w - 1.0) * 100.0
    );
}
