//! Summary statistics of a design, mirroring the benchmark tables of the
//! paper (columns 2–6 of Table II, rows 2–4 of Table III).

use crate::design::Design;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Headline statistics of a [`Design`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignStats {
    /// Design name.
    pub name: String,
    /// Number of movable macros.
    pub movable_macros: usize,
    /// Number of preplaced macros.
    pub preplaced_macros: usize,
    /// Number of I/O pads.
    pub io_pads: usize,
    /// Number of standard cells.
    pub std_cells: usize,
    /// Number of nets.
    pub nets: usize,
    /// Mean net degree (pins per net).
    pub avg_net_degree: f64,
    /// Fraction of region area occupied by nodes.
    pub utilization: f64,
}

impl DesignStats {
    /// Computes the statistics of `design`.
    pub fn of(design: &Design) -> Self {
        let total_pins: usize = design.nets().iter().map(|n| n.pins.len()).sum();
        let nets = design.nets().len();
        DesignStats {
            name: design.name().to_owned(),
            movable_macros: design.movable_macros().len(),
            preplaced_macros: design.preplaced_macros().len(),
            io_pads: design.pads().len(),
            std_cells: design.cells().len(),
            nets,
            avg_net_degree: if nets == 0 {
                0.0
            } else {
                total_pins as f64 / nets as f64
            },
            utilization: design.utilization(),
        }
    }
}

impl fmt::Display for DesignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} mov. macros, {} prep. macros, {} pads, {} cells, {} nets \
             (avg degree {:.2}, util {:.1}%)",
            self.name,
            self.movable_macros,
            self.preplaced_macros,
            self.io_pads,
            self.std_cells,
            self.nets,
            self.avg_net_degree,
            self.utilization * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignBuilder, NodeRef};
    use mmp_geom::{Point, Rect};

    #[test]
    fn stats_of_small_design() {
        let mut b = DesignBuilder::new("s", Rect::new(0.0, 0.0, 10.0, 10.0));
        let m = b.add_macro("m", 2.0, 2.0, "");
        let q = b.add_preplaced_macro("q", 1.0, 1.0, "", Point::new(5.0, 5.0));
        let c = b.add_cell("c", 1.0, 1.0, "");
        let p = b.add_pad("p", Point::new(0.0, 0.0));
        b.add_net(
            "n0",
            [
                (NodeRef::Macro(m), Point::ORIGIN),
                (NodeRef::Cell(c), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        b.add_net(
            "n1",
            [
                (NodeRef::Macro(q), Point::ORIGIN),
                (NodeRef::Cell(c), Point::ORIGIN),
                (NodeRef::Pad(p), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        let s = DesignStats::of(&b.build().unwrap());
        assert_eq!(s.movable_macros, 1);
        assert_eq!(s.preplaced_macros, 1);
        assert_eq!(s.io_pads, 1);
        assert_eq!(s.std_cells, 1);
        assert_eq!(s.nets, 2);
        assert!((s.avg_net_degree - 2.5).abs() < 1e-12);
        assert!((s.utilization - 0.06).abs() < 1e-12);
        let line = s.to_string();
        assert!(line.contains("1 mov. macros"));
    }

    #[test]
    fn stats_of_netless_design() {
        let b = DesignBuilder::new("empty", Rect::new(0.0, 0.0, 1.0, 1.0));
        let s = DesignStats::of(&b.build().unwrap());
        assert_eq!(s.nets, 0);
        assert_eq!(s.avg_net_degree, 0.0);
    }
}
