//! CT-like baseline: per-macro actor-critic RL without grouping or MCTS.
//!
//! Mirhoseini et al.'s CT places macros one at a time with a learned
//! policy. We reuse the exact RL machinery of `mmp-rl` but disable macro
//! grouping (every macro is its own group — the `group_macros = false`
//! trainer mode) and take the greedy rollout of the trained policy as the
//! answer, with no tree search. The episode is therefore much longer and
//! the state much sparser, which is precisely the complexity argument the
//! paper makes for grouping.

use crate::placer::MacroPlacer;
use mmp_legal::MacroLegalizer;
use mmp_netlist::{Design, Placement};
use mmp_rl::{PlacementEnv, Trainer, TrainerConfig};

/// Per-macro RL placer.
#[derive(Debug, Clone)]
pub struct CtLike {
    /// Trainer settings (forced to `group_macros = false`).
    pub config: TrainerConfig,
}

impl CtLike {
    /// A CT-like placer with the given budget; `config.group_macros` is
    /// overridden to `false`.
    pub fn new(mut config: TrainerConfig) -> Self {
        config.group_macros = false;
        CtLike { config }
    }

    /// A laptop-scale budget on a ζ×ζ grid.
    pub fn tiny(zeta: usize, episodes: usize, seed: u64) -> Self {
        let mut cfg = TrainerConfig::tiny(zeta);
        cfg.episodes = episodes;
        cfg.seed = seed;
        CtLike::new(cfg)
    }
}

impl MacroPlacer for CtLike {
    fn name(&self) -> &str {
        "CT-like"
    }

    fn place_macros(&self, design: &Design) -> Placement {
        let trainer = Trainer::new(design, self.config.clone());
        let outcome = trainer.train();
        // Greedy rollout of the trained per-macro policy.
        let mut env = PlacementEnv::new(design, trainer.coarse(), trainer.grid().clone());
        let mut ctx = mmp_rl::InferenceCtx::new();
        while !env.is_terminal() {
            let s = env.state();
            let a = outcome.agent.greedy_action(&s, &mut ctx);
            env.step(a);
        }
        MacroLegalizer::new()
            .legalize(design, trainer.coarse(), env.assignment(), trainer.grid())
            .expect("assignment matches group count")
            .placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_netlist::SyntheticSpec;

    #[test]
    fn ct_like_places_every_macro_individually() {
        let d = SyntheticSpec::small("ct", 6, 0, 8, 40, 70, false, 7).generate();
        let placer = CtLike::tiny(4, 3, 0);
        // Per-macro mode: group count equals macro count.
        let trainer = Trainer::new(&d, placer.config.clone());
        assert_eq!(trainer.coarse().macro_groups().len(), 6);
        let pl = placer.place_macros(&d);
        assert!(pl.macro_overlap_area(&d) < 1e-6);
    }

    #[test]
    fn ct_like_is_deterministic() {
        let d = SyntheticSpec::small("ctd", 5, 0, 8, 40, 70, false, 8).generate();
        let placer = CtLike::tiny(4, 2, 1);
        assert_eq!(placer.place_macros(&d), placer.place_macros(&d));
    }
}
