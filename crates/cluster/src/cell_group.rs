//! Cell grouping with the score function φ of Eq. 2.
//!
//! φ(gᵢ, gⱼ) = 1/ΔD + ϱ·w / (A(gᵢ) + A(gⱼ))
//!
//! Termination is identical to macro grouping: stop when every group
//! reaches one grid cell in area or the best score drops below ν.
//!
//! Exact greedy clustering is O(n³); the paper's industrial designs carry up
//! to a million cells, so above [`ClusterParams::exact_limit`] we fall back
//! to a bucketed approximation: cells are binned by hierarchy module and a
//! coarse spatial grid, and filled area-first into groups of one grid cell.
//! This preserves what φ optimises — spatial/hierarchical locality per unit
//! area — at O(n log n). The exact path is used (and tested) at small n.

use crate::params::ClusterParams;
use mmp_geom::Point;
use mmp_netlist::{CellId, Design, NetId, Placement};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A cluster of standard cells, used to anchor macro-group legalization and
/// coarse wirelength estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellGroup {
    /// Member cells.
    pub members: Vec<CellId>,
    /// Total member area (µm²).
    pub area: f64,
    /// Area-weighted centroid in the initial placement (µm).
    pub center: Point,
}

impl CellGroup {
    fn singleton(design: &Design, placement: &Placement, id: CellId) -> Self {
        CellGroup {
            members: vec![id],
            area: design.cell(id).area(),
            center: placement.cell_center(id),
        }
    }

    fn merged(a: &CellGroup, b: &CellGroup) -> CellGroup {
        let area = a.area + b.area;
        let center = Point::new(
            (a.center.x * a.area + b.center.x * b.area) / area,
            (a.center.y * a.area + b.center.y * b.area) / area,
        );
        let mut members = a.members.clone();
        members.extend_from_slice(&b.members);
        CellGroup {
            members,
            area,
            center,
        }
    }

    /// Number of member cells.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the group has no members (never produced by clustering).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Connectivity between two cell sets: total weight of nets touching both.
fn set_connectivity(design: &Design, a: &[CellId], b: &[CellId]) -> f64 {
    let mut nets_a: BTreeSet<NetId> = BTreeSet::new();
    for &c in a {
        for &n in design.nets_of_cell(c) {
            nets_a.insert(n);
        }
    }
    let mut total = 0.0;
    let mut counted: BTreeSet<NetId> = BTreeSet::new();
    for &c in b {
        for &n in design.nets_of_cell(c) {
            if nets_a.contains(&n) && counted.insert(n) {
                total += design.net(n).weight;
            }
        }
    }
    total
}

/// The score φ of Eq. 2 for a candidate merge.
fn phi(a: &CellGroup, b: &CellGroup, connectivity: f64, params: &ClusterParams) -> f64 {
    let dd = a.center.euclidean_distance(b.center).max(1e-9);
    1.0 / dd + params.rho * connectivity / (a.area + b.area)
}

/// Exact greedy clustering (small designs / tests).
fn cluster_cells_exact(
    design: &Design,
    placement: &Placement,
    params: &ClusterParams,
) -> Vec<CellGroup> {
    let n = design.cells().len();
    let ids: Vec<CellId> = (0..n).map(CellId::from_index).collect();
    let mut groups: Vec<Option<CellGroup>> = ids
        .iter()
        .map(|&id| Some(CellGroup::singleton(design, placement, id)))
        .collect();
    let mut conn: Vec<Vec<f64>> = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let w = set_connectivity(design, &[ids[i]], &[ids[j]]);
            conn[i][j] = w;
            conn[j][i] = w;
        }
    }
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            let Some(gi) = groups[i].as_ref() else {
                continue;
            };
            if gi.area >= params.grid_area {
                continue;
            }
            for j in (i + 1)..n {
                let Some(gj) = groups[j].as_ref() else {
                    continue;
                };
                if gj.area >= params.grid_area {
                    continue;
                }
                let score = phi(gi, gj, conn[i][j], params);
                if best.is_none_or(|(_, _, s)| score > s) {
                    best = Some((i, j, score));
                }
            }
        }
        let Some((i, j, score)) = best else { break };
        if score < params.nu {
            break;
        }
        let (Some(gi), Some(gj)) = (groups[i].as_ref(), groups[j].as_ref()) else {
            break; // unreachable: `best` only records live indices
        };
        let merged = CellGroup::merged(gi, gj);
        groups[i] = Some(merged);
        groups[j] = None;
        // Cross-pattern update over rows i, j and column k of the symmetric
        // matrix — indexing is clearer than iterator juggling here.
        #[allow(clippy::needless_range_loop)]
        for k in 0..n {
            if k != i {
                conn[i][k] += conn[j][k];
                conn[k][i] = conn[i][k];
            }
            conn[j][k] = 0.0;
            conn[k][j] = 0.0;
        }
    }
    groups.into_iter().flatten().collect()
}

/// Bucketed approximation for large designs.
fn cluster_cells_bucketed(
    design: &Design,
    placement: &Placement,
    params: &ClusterParams,
) -> Vec<CellGroup> {
    const SPATIAL_BINS: usize = 32;
    let region = design.region();
    let bin_of = |p: Point| -> (usize, usize) {
        let bx = (((p.x - region.x) / region.width * SPATIAL_BINS as f64) as usize)
            .min(SPATIAL_BINS - 1);
        let by = (((p.y - region.y) / region.height * SPATIAL_BINS as f64) as usize)
            .min(SPATIAL_BINS - 1);
        (bx, by)
    };
    // BTreeMap: bucket iteration order is the sorted key order, so the
    // group sequence is deterministic by construction.
    let mut buckets: BTreeMap<(String, usize, usize), Vec<CellId>> = BTreeMap::new();
    for i in 0..design.cells().len() {
        let id = CellId::from_index(i);
        let (bx, by) = bin_of(placement.cell_center(id));
        buckets
            .entry((design.cell(id).hierarchy.clone(), bx, by))
            .or_default()
            .push(id);
    }
    let mut out = Vec::new();
    for cells in buckets.values() {
        let mut current: Option<CellGroup> = None;
        for &id in cells {
            let single = CellGroup::singleton(design, placement, id);
            let grown = match current.take() {
                None => single,
                Some(g) => CellGroup::merged(&g, &single),
            };
            if grown.area >= params.grid_area {
                out.push(grown);
            } else {
                current = Some(grown);
            }
        }
        if let Some(rest) = current {
            // Fold a small tail into the previous group of the same bucket
            // when one exists; otherwise keep it as its own group.
            if rest.area < params.grid_area * 0.25 {
                if let Some(prev) = out.last_mut() {
                    *prev = CellGroup::merged(prev, &rest);
                    continue;
                }
            }
            out.push(rest);
        }
    }
    out
}

/// Groups the standard cells of `design` per Eq. 2.
///
/// Uses exact greedy clustering up to
/// [`ClusterParams::exact_limit`] cells and the documented bucketed
/// approximation beyond it. Every cell ends up in exactly one group.
pub fn cluster_cells(
    design: &Design,
    placement: &Placement,
    params: &ClusterParams,
) -> Vec<CellGroup> {
    if design.cells().len() <= params.exact_limit {
        cluster_cells_exact(design, placement, params)
    } else {
        cluster_cells_bucketed(design, placement, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_geom::Rect;
    use mmp_netlist::{DesignBuilder, NodeRef, SyntheticSpec};

    #[test]
    fn empty_design_yields_no_groups() {
        let d = DesignBuilder::new("e", Rect::new(0.0, 0.0, 10.0, 10.0))
            .build()
            .unwrap();
        let pl = Placement::initial(&d);
        assert!(cluster_cells(&d, &pl, &ClusterParams::paper(1.0)).is_empty());
    }

    #[test]
    fn connected_nearby_cells_merge_first() {
        let mut b = DesignBuilder::new("c", Rect::new(0.0, 0.0, 1000.0, 1000.0));
        let c0 = b.add_cell("c0", 1.0, 1.0, "");
        let c1 = b.add_cell("c1", 1.0, 1.0, "");
        let c2 = b.add_cell("c2", 1.0, 1.0, "");
        b.add_net(
            "n",
            [
                (NodeRef::Cell(c0), Point::ORIGIN),
                (NodeRef::Cell(c1), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        let d = b.build().unwrap();
        let mut pl = Placement::initial(&d);
        pl.set_cell_center(c0, Point::new(10.0, 10.0));
        pl.set_cell_center(c1, Point::new(11.0, 10.0));
        pl.set_cell_center(c2, Point::new(900.0, 900.0));
        // grid area 2: a merged pair (area 2) stops merging.
        let gs = cluster_cells(&d, &pl, &ClusterParams::paper(2.0));
        let g0 = gs.iter().find(|g| g.members.contains(&c0)).unwrap();
        assert!(g0.members.contains(&c1));
        assert!(!g0.members.contains(&c2));
    }

    #[test]
    fn every_cell_in_exactly_one_group_exact() {
        let d = SyntheticSpec::small("x", 4, 0, 8, 120, 200, true, 13).generate();
        let pl = Placement::initial(&d);
        let params = ClusterParams::paper(d.region().area() / 256.0);
        assert!(d.cells().len() <= params.exact_limit);
        let gs = cluster_cells(&d, &pl, &params);
        let mut all: Vec<CellId> = gs.iter().flat_map(|g| g.members.clone()).collect();
        all.sort();
        let expected: Vec<CellId> = (0..d.cells().len()).map(CellId::from_index).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn every_cell_in_exactly_one_group_bucketed() {
        let d = SyntheticSpec::small("b", 4, 0, 8, 500, 700, true, 13).generate();
        let pl = Placement::initial(&d);
        let mut params = ClusterParams::paper(d.region().area() / 256.0);
        params.exact_limit = 100; // force bucketed path
        let gs = cluster_cells(&d, &pl, &params);
        let mut all: Vec<CellId> = gs.iter().flat_map(|g| g.members.clone()).collect();
        all.sort();
        let expected: Vec<CellId> = (0..d.cells().len()).map(CellId::from_index).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn bucketed_groups_respect_hierarchy() {
        let mut b = DesignBuilder::new("h", Rect::new(0.0, 0.0, 100.0, 100.0));
        for i in 0..10 {
            b.add_cell(format!("a{i}"), 1.0, 1.0, "top/a");
            b.add_cell(format!("b{i}"), 1.0, 1.0, "top/b");
        }
        let d = b.build().unwrap();
        let pl = Placement::initial(&d);
        let mut params = ClusterParams::paper(5.0);
        params.exact_limit = 0; // force bucketed path
        let gs = cluster_cells(&d, &pl, &params);
        for g in &gs {
            let hiers: std::collections::BTreeSet<&str> = g
                .members
                .iter()
                .map(|&c| d.cell(c).hierarchy.as_str())
                .collect();
            assert_eq!(hiers.len(), 1, "bucketed group mixes hierarchies");
        }
    }

    #[test]
    fn group_areas_are_bounded() {
        let d = SyntheticSpec::small("a", 4, 0, 8, 300, 500, false, 5).generate();
        let pl = Placement::initial(&d);
        let grid_area = d.region().area() / 256.0;
        let mut params = ClusterParams::paper(grid_area);
        params.exact_limit = 1_000;
        let gs = cluster_cells(&d, &pl, &params);
        let max_cell_area = d.cells().iter().map(|c| c.area()).fold(0.0f64, f64::max);
        for g in &gs {
            // One merge can overshoot by at most one grid-area (the partner
            // group was itself < grid_area), plus tail folding by 25%.
            assert!(
                g.area <= 2.0 * grid_area + max_cell_area + grid_area * 0.25,
                "group area {} too large (grid {})",
                g.area,
                grid_area
            );
        }
    }

    #[test]
    fn merged_center_is_area_weighted() {
        let a = CellGroup {
            members: vec![CellId(0)],
            area: 1.0,
            center: Point::new(0.0, 0.0),
        };
        let b = CellGroup {
            members: vec![CellId(1)],
            area: 3.0,
            center: Point::new(8.0, 4.0),
        };
        let m = CellGroup::merged(&a, &b);
        assert_eq!(m.center, Point::new(6.0, 3.0));
        assert_eq!(m.area, 4.0);
        assert_eq!(m.len(), 2);
    }
}
