//! The layer abstraction: forward, backward, and parameter visitation.

use crate::infer::InferenceCtx;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable parameter: value + accumulated gradient.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter values.
    pub value: Tensor,
    /// Gradient accumulated by `backward` calls (reset with
    /// [`Param::zero_grad`]).
    pub grad: Tensor,
}

impl Param {
    /// A parameter initialised to `value` with a zero gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }
}

/// A differentiable layer.
///
/// `forward` caches whatever the matching `backward` needs; `backward`
/// consumes the cache, accumulates parameter gradients and returns the
/// gradient w.r.t. the layer input. Layers are used strictly in
/// forward-then-backward pairs (standard tape discipline).
///
/// `infer` is the stateless counterpart: weights stay `&self`, all scratch
/// comes from the [`InferenceCtx`], nothing is cached — so one layer can be
/// shared by many concurrent readers, each with its own context.
pub trait Layer {
    /// Computes the layer output. `train` selects training behaviour
    /// (batch statistics in batch-norm).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Computes the layer output without mutating the layer: evaluation
    /// semantics (running statistics in batch-norm), scratch drawn from
    /// `ctx`. Inputs may carry a leading batch axis N ≥ 1.
    fn infer(&self, input: &Tensor, ctx: &mut InferenceCtx) -> Tensor;

    /// Propagates `grad_out` (∂loss/∂output) to ∂loss/∂input, accumulating
    /// parameter gradients.
    ///
    /// # Panics
    ///
    /// Implementations panic when called without a preceding `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every trainable parameter (used by optimizers and
    /// checkpointing).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_starts_with_zero_grad() {
        let p = Param::new(Tensor::from_vec(&[2], vec![1.0, 2.0]));
        assert_eq!(p.grad.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Param::new(Tensor::zeros(&[2]));
        p.grad.as_mut_slice()[0] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad.as_slice(), &[0.0, 0.0]);
    }
}
