//! Single-macro delta evaluation vs full HPWL recompute.
//!
//! The hot loop of the swap-refinement stage (and of the migrated
//! flip/refine/SA/SE consumers) is "move one macro, re-score": the
//! incremental evaluator re-boxes only the nets touching the moved macro
//! and re-sums cached per-net values, where the full pass re-boxes every
//! net. The `snapshot` bin (`incremental_hpwl`) archives the same
//! comparison as `results/BENCH_incremental_hpwl.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use mmp_core::Point;
use mmp_netlist::{Design, IncrementalHpwl, MacroId, Placement, SyntheticSpec};

/// A paper-scale synthetic circuit (ICCAD04-like density at fixed size,
/// so the bench does not depend on `MMP_SCALE`).
fn bench_design() -> Design {
    SyntheticSpec::small("inc_bench", 24, 4, 40, 1500, 2600, true, 7).generate()
}

fn bench_incremental_hpwl(c: &mut Criterion) {
    let design = bench_design();
    let placement = Placement::initial(&design);
    let mut group = c.benchmark_group("incremental_hpwl");
    group.sample_size(40);

    group.bench_function("full_recompute", |b| {
        b.iter(|| criterion::black_box(placement.hpwl(&design)))
    });

    let mut inc = IncrementalHpwl::new(&design, placement.clone());
    let probe = MacroId::from_index(0);
    group.bench_function("single_macro_delta", |b| {
        b.iter(|| {
            let c = inc.placement().macro_center(probe);
            inc.move_macro(probe, Point::new(c.x + 1.0, c.y));
            let total = criterion::black_box(inc.total());
            inc.revert();
            total
        })
    });

    group.finish();
}

criterion_group!(benches, bench_incremental_hpwl);
criterion_main!(benches);
