//! The search tree: an arena of nodes whose edges carry ⟨N, P, W, Q⟩.

use serde::{Deserialize, Serialize};

/// Statistics of one edge (s_p → s_q) per Sec. IV-A.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeStats {
    /// Flat grid-cell index this edge allocates the next group to.
    pub action: usize,
    /// Child node, created lazily on first traversal.
    pub child: Option<usize>,
    /// Visit count N.
    pub n: u32,
    /// Prior probability P from π_θ.
    pub p: f32,
    /// Accumulated value W.
    pub w: f64,
}

impl EdgeStats {
    /// The mean value Q = W / N (0 before any visit), Eq. 12.
    #[inline]
    pub fn q(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.w / self.n as f64
        }
    }
}

/// One node: a partial allocation at depth `depth` (t − 1 groups placed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Tree depth = number of groups already placed.
    pub depth: usize,
    /// Outgoing edges, present once the node is *expanded*; `None` marks an
    /// unexplored node (the selection target s_s).
    pub edges: Option<Vec<EdgeStats>>,
    /// Cached terminal reward (terminal nodes are evaluated with the real
    /// pipeline exactly once).
    pub terminal_reward: Option<f64>,
}

/// Arena-allocated search tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchTree {
    nodes: Vec<Node>,
    root: usize,
}

impl SearchTree {
    /// A tree with a single unexplored root at depth 0 (the empty
    /// placement).
    pub fn new() -> Self {
        SearchTree {
            nodes: vec![Node {
                depth: 0,
                edges: None,
                terminal_reward: None,
            }],
            root: 0,
        }
    }

    /// Current root node index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Moves the root to `child` (tree reuse after committing an action).
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range node.
    pub fn advance_root(&mut self, child: usize) {
        assert!(child < self.nodes.len(), "node index out of range");
        self.root = child;
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the tree holds no nodes (never the case after `new`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable node access.
    pub fn node(&self, idx: usize) -> &Node {
        &self.nodes[idx]
    }

    /// Mutable node access.
    pub fn node_mut(&mut self, idx: usize) -> &mut Node {
        &mut self.nodes[idx]
    }

    /// Expands `node` with one edge per action, priors `priors`, and marks
    /// it explored. Edges start with N = W = 0 (Sec. IV-B2).
    ///
    /// # Panics
    ///
    /// Panics when the node is already expanded.
    pub fn expand(&mut self, node: usize, priors: &[f32]) {
        assert!(
            self.nodes[node].edges.is_none(),
            "node {node} is already expanded"
        );
        let edges = priors
            .iter()
            .enumerate()
            .map(|(action, &p)| EdgeStats {
                action,
                child: None,
                n: 0,
                p,
                w: 0.0,
            })
            .collect();
        self.nodes[node].edges = Some(edges);
    }

    /// The child node behind `(node, edge_idx)`, created on first use.
    // why: invariant, not input: callers only descend through nodes they have
    // already expanded.
    #[allow(clippy::expect_used)]
    pub fn child_of(&mut self, node: usize, edge_idx: usize) -> usize {
        let depth = self.nodes[node].depth;
        let existing = self.nodes[node].edges.as_ref().expect("expanded node")[edge_idx].child;
        match existing {
            Some(c) => c,
            None => {
                let idx = self.nodes.len();
                self.nodes.push(Node {
                    depth: depth + 1,
                    edges: None,
                    terminal_reward: None,
                });
                self.nodes[node].edges.as_mut().expect("expanded node")[edge_idx].child = Some(idx);
                idx
            }
        }
    }

    /// Backpropagation (Eq. 12): every edge along `path` gains a visit and
    /// accumulates `value`.
    // why: invariant, not input: the selection path only contains expanded nodes.
    #[allow(clippy::expect_used)]
    pub fn backpropagate(&mut self, path: &[(usize, usize)], value: f64) {
        for &(node, edge_idx) in path {
            let edge = &mut self.nodes[node].edges.as_mut().expect("expanded node")[edge_idx];
            edge.n += 1;
            edge.w += value;
        }
    }

    /// Sum of child visit counts of `node` (the √Σ N term of Eq. 11).
    pub fn visit_sum(&self, node: usize) -> u32 {
        self.nodes[node]
            .edges
            .as_ref()
            .map(|es| es.iter().map(|e| e.n).sum())
            .unwrap_or(0)
    }
}

impl Default for SearchTree {
    fn default() -> Self {
        SearchTree::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tree_has_unexplored_root() {
        let t = SearchTree::new();
        assert_eq!(t.len(), 1);
        assert!(t.node(t.root()).edges.is_none());
        assert_eq!(t.node(t.root()).depth, 0);
    }

    #[test]
    fn expansion_initializes_edges_per_paper() {
        let mut t = SearchTree::new();
        t.expand(0, &[0.5, 0.3, 0.2]);
        let edges = t.node(0).edges.as_ref().unwrap();
        assert_eq!(edges.len(), 3);
        for (i, e) in edges.iter().enumerate() {
            assert_eq!(e.action, i);
            assert_eq!(e.n, 0);
            assert_eq!(e.w, 0.0);
            assert_eq!(e.q(), 0.0);
        }
        assert_eq!(edges[0].p, 0.5);
    }

    #[test]
    #[should_panic(expected = "already expanded")]
    fn double_expansion_panics() {
        let mut t = SearchTree::new();
        t.expand(0, &[1.0]);
        t.expand(0, &[1.0]);
    }

    #[test]
    fn children_are_created_lazily_and_cached() {
        let mut t = SearchTree::new();
        t.expand(0, &[0.6, 0.4]);
        let c0 = t.child_of(0, 0);
        let c0_again = t.child_of(0, 0);
        assert_eq!(c0, c0_again);
        assert_eq!(t.len(), 2);
        assert_eq!(t.node(c0).depth, 1);
        let c1 = t.child_of(0, 1);
        assert_ne!(c0, c1);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn backpropagation_updates_n_w_q() {
        let mut t = SearchTree::new();
        t.expand(0, &[1.0, 0.0]);
        let c = t.child_of(0, 0);
        t.expand(c, &[1.0]);
        let _gc = t.child_of(c, 0);
        let path = vec![(0, 0), (c, 0)];
        t.backpropagate(&path, 0.5);
        t.backpropagate(&path, 0.7);
        let e = &t.node(0).edges.as_ref().unwrap()[0];
        assert_eq!(e.n, 2);
        assert!((e.w - 1.2).abs() < 1e-12);
        assert!((e.q() - 0.6).abs() < 1e-12);
        assert_eq!(t.visit_sum(0), 2);
        assert_eq!(t.visit_sum(c), 2);
    }

    #[test]
    fn advance_root_moves_subtree_focus() {
        let mut t = SearchTree::new();
        t.expand(0, &[1.0]);
        let c = t.child_of(0, 0);
        t.advance_root(c);
        assert_eq!(t.root(), c);
    }

    #[test]
    fn visit_sum_conserves_backpropagations() {
        // Property: after any sequence of backpropagations through the
        // root, the root's visit sum equals the number of backpropagations
        // that included a root edge.
        let mut t = SearchTree::new();
        t.expand(0, &[0.4, 0.3, 0.3]);
        let mut count = 0u32;
        for k in 0..50usize {
            let e = k % 3;
            let _ = t.child_of(0, e);
            t.backpropagate(&[(0, e)], (k as f64) * 0.01);
            count += 1;
            assert_eq!(t.visit_sum(0), count);
        }
        // Q of each edge equals its W/N.
        for e in t.node(0).edges.as_ref().unwrap() {
            if e.n > 0 {
                assert!((e.q() - e.w / e.n as f64).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn deep_chain_allocation_is_linear() {
        // Each exploration adds exactly one node: a depth-k chain has k+1.
        let mut t = SearchTree::new();
        let mut node = 0usize;
        for depth in 1..=20 {
            t.expand(node, &[1.0]);
            node = t.child_of(node, 0);
            assert_eq!(t.len(), depth + 1);
            assert_eq!(t.node(node).depth, depth);
        }
    }

    #[test]
    fn visit_sum_of_unexpanded_node_is_zero() {
        let t = SearchTree::new();
        assert_eq!(t.visit_sum(0), 0);
    }
}
