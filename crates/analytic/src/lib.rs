#![warn(missing_docs)]
// Hardened crate: panicking extractors are denied in CI on library code
// (tests and benches may unwrap freely). Justified invariant `expect`s
// carry explicit allows at the call site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
// Structured output goes through mmp_obs; stray prints are denied in CI
// (the obs sinks and bin/ targets are the sanctioned exits).
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

//! Analytical global placement for the MMP macro placer.
//!
//! This crate stands in for [DREAMPlace] in the paper's pipeline (see
//! DESIGN.md §3): a quadratic wirelength placer with
//!
//! * a bound-to-bound (B2B) net model re-linearised every iteration
//!   ([`b2b`]),
//! * Jacobi-preconditioned conjugate gradient solves ([`cg`]) over CSR
//!   sparse systems ([`sparse`]),
//! * FastPlace-style cell-shifting density spreading with anchor pseudo-nets
//!   ([`density`]),
//! * a driver loop ([`placer::GlobalPlacer`]) with two entry points:
//!   [`placer::GlobalPlacer::place_mixed`] (macros + cells movable — the
//!   prototyping placement that feeds clustering) and
//!   [`placer::GlobalPlacer::place_cells`] (macros fixed — the cell placement
//!   + HPWL measurement step of Sec. II-C).
//!
//! [DREAMPlace]: https://github.com/limbo018/DREAMPlace
//!
//! # Example
//!
//! ```
//! use mmp_analytic::{GlobalPlacer, GlobalPlacerConfig};
//! use mmp_netlist::{Placement, SyntheticSpec};
//!
//! let design = SyntheticSpec::small("gp", 4, 0, 8, 60, 90, false, 5).generate();
//! let placer = GlobalPlacer::new(GlobalPlacerConfig::fast());
//! let placement = placer.place_mixed(&design);
//! assert!(placement.macros_inside_region(&design));
//! ```

pub mod b2b;
pub mod cg;
pub mod congestion;
pub mod density;
pub mod placer;
pub mod rows;
pub mod sparse;

pub use cg::CgOutcome;
pub use congestion::{rudy, CongestionMap};
pub use placer::{CellPlaceOutcome, GlobalPlacer, GlobalPlacerConfig};
pub use rows::{legalize_cells_into_rows, RowLegalizeOutcome};
pub use sparse::{CsrMatrix, Triplets};
