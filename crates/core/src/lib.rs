#![warn(missing_docs)]
// Hardened crate: panicking extractors are denied in CI on library code
// (tests and benches may unwrap freely). Justified invariant `expect`s
// carry explicit allows at the call site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
// Structured output goes through mmp_obs; stray prints are denied in CI
// (the obs sinks and bin/ targets are the sanctioned exits).
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

//! The MMP macro placer: MCTS guided by pre-trained RL.
//!
//! This crate is the public face of the workspace — a full reimplementation
//! of *"Effective Macro Placement for Very Large Scale Designs Using MCTS
//! Guided by Pre-trained RL"* (Lin, Lee & Lin, DATE 2025). It wires the
//! stage crates into Algorithm 1:
//!
//! 1. **Preprocessing** — ζ×ζ grid partition + netlist coarsening into
//!    macro/cell groups (`mmp-cluster`, fed by the analytical prototyping
//!    placement of `mmp-analytic`).
//! 2. **Pre-training by RL** — an actor-critic agent learns macro-group
//!    allocation with the calibrated reward of Eq. 9 (`mmp-rl` on the
//!    from-scratch `mmp-nn`).
//! 3. **Placement optimization by MCTS** — one PUCT search guided by π_θ
//!    with V_θ leaf evaluation (`mmp-mcts`).
//! 4. **Legalization + cell placement** — the 3-step QP/sequence-pair flow
//!    (`mmp-legal`) and the mixed-size analytical cell placer, which also
//!    measures the final HPWL.
//!
//! # Quickstart
//!
//! ```
//! use mmp_core::{MacroPlacer, PlacerConfig};
//! use mmp_netlist::SyntheticSpec;
//!
//! let design = SyntheticSpec::small("quick", 6, 0, 8, 40, 70, false, 1).generate();
//! let placer = MacroPlacer::new(PlacerConfig::fast(4));
//! let result = placer.place(&design)?;
//! assert!(result.hpwl > 0.0);
//! assert!(result.placement.macro_overlap_area(&design) < 1e-6);
//! # Ok::<(), mmp_core::PlaceError>(())
//! ```

pub mod budget;
pub mod checkpoint;
pub mod degrade;
pub mod error;
pub mod flow;
pub mod report;
pub mod run_report;

pub use budget::RunBudget;
pub use checkpoint::{fingerprint, CheckpointPlan, CheckpointSummary, CrashPoint, CrashStage};
pub use degrade::{Degradation, DegradationReport, Stage};
pub use error::{FinalPlaceError, PlaceError, PreprocessError, SearchError};
pub use flow::{MacroPlacer, PlacementResult, PlacerConfig, RefineSummary, StageTimings};
pub use report::{geometric_mean, normalize_rows, try_normalize_rows, ReportError, TableRow};
pub use run_report::{RunReport, TimingsMs, TrainingSummary};

// Re-export the stage APIs so downstream users (examples, benches) need a
// single dependency.
pub use mmp_analytic::{GlobalPlacer, GlobalPlacerConfig};
pub use mmp_ckpt::CkptError;
pub use mmp_cluster::{ClusterParams, CoarsenedNetlist, Coarsener};
pub use mmp_geom::{Grid, GridIndex, Point, Rect};
pub use mmp_legal::{MacroLegalizer, SwapRefineConfig, SwapRefineOutcome, SwapRefiner};
pub use mmp_mcts::{MctsConfig, MctsPlacer, SearchStats};
pub use mmp_netlist::{
    iccad04_suite, industrial_suite, Design, DesignBuilder, DesignStats, Placement, SyntheticSpec,
};
pub use mmp_rl::{
    Agent, AgentConfig, RewardKind, RewardScale, Trainer, TrainerConfig, TrainingHistory,
};
pub use mmp_vfs::{FailPlan, FaultKind, OpKind, Vfs};
