//! The coarsened netlist: original nets projected onto macro/cell groups.
//!
//! This is the object the RL environment and MCTS operate on — it "reduces
//! the complexity of a design while retaining essential connectivity
//! information" (Sec. II of the paper).

use crate::cell_group::{cluster_cells, CellGroup};
use crate::macro_group::{cluster_macros, MacroGroup};
use crate::params::ClusterParams;
use mmp_geom::{BoundingBox, Point};
use mmp_netlist::{Design, MacroId, NodeRef, Placement};
use serde::{Deserialize, Serialize};

/// An endpoint of a coarsened net.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GroupRef {
    /// Index into [`CoarsenedNetlist::macro_groups`].
    MacroGroup(usize),
    /// Index into [`CoarsenedNetlist::cell_groups`].
    CellGroup(usize),
    /// A fixed location: an I/O pad or a preplaced macro center.
    Fixed(Point),
}

/// A net of the coarsened netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupNet {
    /// Distinct group endpoints plus fixed points.
    pub endpoints: Vec<GroupRef>,
    /// Accumulated weight of the underlying nets.
    pub weight: f64,
}

/// The coarsened design: groups plus projected connectivity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoarsenedNetlist {
    macro_groups: Vec<MacroGroup>,
    cell_groups: Vec<CellGroup>,
    nets: Vec<GroupNet>,
    macro_to_group: Vec<Option<usize>>,
    cell_to_group: Vec<usize>,
}

impl CoarsenedNetlist {
    /// Macro groups, sorted by non-increasing area (the RL/MCTS placement
    /// sequence of Algorithm 1).
    #[inline]
    pub fn macro_groups(&self) -> &[MacroGroup] {
        &self.macro_groups
    }

    /// Cell groups.
    #[inline]
    pub fn cell_groups(&self) -> &[CellGroup] {
        &self.cell_groups
    }

    /// Projected nets (each touches at least one group and two endpoints).
    #[inline]
    pub fn nets(&self) -> &[GroupNet] {
        &self.nets
    }

    /// The macro-group index containing macro `id`, or `None` for preplaced
    /// macros (they are never grouped).
    #[inline]
    pub fn group_of_macro(&self, id: MacroId) -> Option<usize> {
        self.macro_to_group[id.index()]
    }

    /// The cell-group index containing cell `id`.
    #[inline]
    pub fn group_of_cell(&self, id: mmp_netlist::CellId) -> usize {
        self.cell_to_group[id.index()]
    }

    /// Coarse weighted HPWL given center positions for every macro group and
    /// cell group. This is the cheap proxy used for fast evaluation; the
    /// definitive metric is the full-netlist HPWL after cell placement.
    ///
    /// # Panics
    ///
    /// Panics when the slices are shorter than the group counts.
    pub fn hpwl(&self, macro_group_centers: &[Point], cell_group_centers: &[Point]) -> f64 {
        assert!(macro_group_centers.len() >= self.macro_groups.len());
        assert!(cell_group_centers.len() >= self.cell_groups.len());
        let mut total = 0.0;
        for net in &self.nets {
            let mut bb = BoundingBox::empty();
            for ep in &net.endpoints {
                let p = match *ep {
                    GroupRef::MacroGroup(i) => macro_group_centers[i],
                    GroupRef::CellGroup(i) => cell_group_centers[i],
                    GroupRef::Fixed(p) => p,
                };
                bb.extend(p);
            }
            total += net.weight * bb.half_perimeter();
        }
        total
    }

    /// Initial centers of macro groups (from the clustering placement).
    pub fn macro_group_centers(&self) -> Vec<Point> {
        self.macro_groups.iter().map(|g| g.center).collect()
    }

    /// Initial centers of cell groups (from the clustering placement).
    pub fn cell_group_centers(&self) -> Vec<Point> {
        self.cell_groups.iter().map(|g| g.center).collect()
    }
}

/// Runs macro grouping, cell grouping and net projection.
///
/// # Example
///
/// ```
/// use mmp_cluster::{ClusterParams, Coarsener};
/// use mmp_netlist::{Placement, SyntheticSpec};
///
/// let design = SyntheticSpec::small("c", 6, 0, 8, 50, 80, false, 2).generate();
/// let initial = Placement::initial(&design);
/// let coarse = Coarsener::new(&ClusterParams::paper(100.0)).coarsen(&design, &initial);
/// assert!(coarse.macro_groups().len() >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct Coarsener {
    params: ClusterParams,
}

impl Coarsener {
    /// Creates a coarsener with the given clustering parameters.
    pub fn new(params: &ClusterParams) -> Self {
        Coarsener {
            params: params.clone(),
        }
    }

    /// Clusters `design` and projects its nets onto the groups.
    ///
    /// `placement` provides the initial positions for the distance terms of
    /// Eqs. 1–2 (run the analytical global placer first for the paper's
    /// exact flow).
    ///
    /// # Panics
    ///
    /// Panics on internally inconsistent designs (see [`Coarsener::try_coarsen`]
    /// for the fallible variant used by the hardened flow).
    pub fn coarsen(&self, design: &Design, placement: &Placement) -> CoarsenedNetlist {
        match self.try_coarsen(design, placement) {
            Ok(c) => c,
            Err(e) => panic!("coarsening failed: {e}"),
        }
    }

    /// Fallible variant of [`Coarsener::coarsen`]: returns a typed
    /// [`ClusterError`] instead of panicking when the design violates a
    /// clustering invariant (e.g. a macro that is neither grouped nor
    /// preplaced, which indicates a corrupted netlist).
    ///
    /// # Errors
    ///
    /// See [`ClusterError`].
    pub fn try_coarsen(
        &self,
        design: &Design,
        placement: &Placement,
    ) -> Result<CoarsenedNetlist, ClusterError> {
        let macro_groups = cluster_macros(design, placement, &self.params);
        let cell_groups = cluster_cells(design, placement, &self.params);

        let mut macro_to_group = vec![None; design.macros().len()];
        for (gi, g) in macro_groups.iter().enumerate() {
            for &m in &g.members {
                macro_to_group[m.index()] = Some(gi);
            }
        }
        let mut cell_to_group = vec![usize::MAX; design.cells().len()];
        for (gi, g) in cell_groups.iter().enumerate() {
            for &c in &g.members {
                cell_to_group[c.index()] = gi;
            }
        }

        let mut nets = Vec::new();
        for net in design.nets() {
            let mut endpoints: Vec<GroupRef> = Vec::with_capacity(net.pins.len());
            let mut group_count = 0usize;
            for pin in &net.pins {
                let ep = match pin.node {
                    NodeRef::Macro(id) => match macro_to_group[id.index()] {
                        Some(g) => GroupRef::MacroGroup(g),
                        // preplaced macro: a fixed point at its center
                        None => match design.macro_(id).fixed_center {
                            Some(c) => GroupRef::Fixed(c + pin.offset),
                            None => {
                                return Err(ClusterError::UngroupedMovableMacro {
                                    name: design.macro_(id).name.clone(),
                                })
                            }
                        },
                    },
                    NodeRef::Cell(id) => GroupRef::CellGroup(cell_to_group[id.index()]),
                    NodeRef::Pad(id) => GroupRef::Fixed(design.pad(id).position),
                };
                // Dedupe group endpoints; fixed points are kept as-is (they
                // cannot bias a bounding box).
                let duplicate = match ep {
                    GroupRef::MacroGroup(_) | GroupRef::CellGroup(_) => endpoints.contains(&ep),
                    GroupRef::Fixed(_) => false,
                };
                if !duplicate {
                    if matches!(ep, GroupRef::MacroGroup(_) | GroupRef::CellGroup(_)) {
                        group_count += 1;
                    }
                    endpoints.push(ep);
                }
            }
            // Keep nets that can influence group placement: at least one
            // movable group and at least two endpoints overall.
            if group_count >= 1 && endpoints.len() >= 2 {
                nets.push(GroupNet {
                    endpoints,
                    weight: net.weight,
                });
            }
        }

        Ok(CoarsenedNetlist {
            macro_groups,
            cell_groups,
            nets,
            macro_to_group,
            cell_to_group,
        })
    }
}

/// Error from [`Coarsener::try_coarsen`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A movable macro ended up in no group — the clustering invariant
    /// (every movable macro is grouped, only preplaced macros are not)
    /// was violated, which indicates a corrupted design.
    UngroupedMovableMacro {
        /// Name of the offending macro.
        name: String,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UngroupedMovableMacro { name } => {
                write!(f, "movable macro {name} is in no group and not preplaced")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_geom::Rect;
    use mmp_netlist::{DesignBuilder, SyntheticSpec};

    fn coarse_of(design: &Design) -> CoarsenedNetlist {
        let pl = Placement::initial(design);
        let params = ClusterParams::paper(design.region().area() / 256.0);
        Coarsener::new(&params).coarsen(design, &pl)
    }

    #[test]
    fn every_movable_macro_is_grouped() {
        let d = SyntheticSpec::small("g", 15, 3, 8, 100, 200, true, 31).generate();
        let c = coarse_of(&d);
        for id in d.movable_macros() {
            assert!(c.group_of_macro(id).is_some());
        }
        for id in d.preplaced_macros() {
            assert!(c.group_of_macro(id).is_none());
        }
    }

    #[test]
    fn every_cell_is_grouped() {
        let d = SyntheticSpec::small("g", 6, 0, 8, 150, 250, false, 32).generate();
        let c = coarse_of(&d);
        for i in 0..d.cells().len() {
            let g = c.group_of_cell(mmp_netlist::CellId::from_index(i));
            assert!(g < c.cell_groups().len());
        }
    }

    #[test]
    fn internal_nets_are_dropped() {
        // Two cells that end up in the same group; their private net
        // projects to a single endpoint and must be dropped.
        let mut b = DesignBuilder::new("i", Rect::new(0.0, 0.0, 100.0, 100.0));
        let c0 = b.add_cell("c0", 1.0, 1.0, "");
        let c1 = b.add_cell("c1", 1.0, 1.0, "");
        b.add_net(
            "n",
            [
                (NodeRef::Cell(c0), Point::ORIGIN),
                (NodeRef::Cell(c1), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        let d = b.build().unwrap();
        let pl = Placement::initial(&d);
        // Huge grid area: the two cells merge into one group.
        let c = Coarsener::new(&ClusterParams::paper(1e9)).coarsen(&d, &pl);
        assert_eq!(c.cell_groups().len(), 1);
        assert!(c.nets().is_empty());
    }

    #[test]
    fn preplaced_macros_become_fixed_endpoints() {
        let mut b = DesignBuilder::new("f", Rect::new(0.0, 0.0, 100.0, 100.0));
        let m = b.add_macro("m", 2.0, 2.0, "");
        let f = b.add_preplaced_macro("f", 2.0, 2.0, "", Point::new(70.0, 80.0));
        b.add_net(
            "n",
            [
                (NodeRef::Macro(m), Point::ORIGIN),
                (NodeRef::Macro(f), Point::new(1.0, 0.0)),
            ],
            1.0,
        )
        .unwrap();
        let d = b.build().unwrap();
        let pl = Placement::initial(&d);
        let c = Coarsener::new(&ClusterParams::paper(4.0)).coarsen(&d, &pl);
        assert_eq!(c.nets().len(), 1);
        let fixed: Vec<Point> = c.nets()[0]
            .endpoints
            .iter()
            .filter_map(|e| match e {
                GroupRef::Fixed(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(fixed, vec![Point::new(71.0, 80.0)]);
    }

    #[test]
    fn coarse_hpwl_reacts_to_group_moves() {
        let d = SyntheticSpec::small("h", 8, 0, 8, 60, 90, false, 33).generate();
        let c = coarse_of(&d);
        let mut mc = c.macro_group_centers();
        let cc = c.cell_group_centers();
        let before = c.hpwl(&mc, &cc);
        for p in &mut mc {
            *p = Point::new(p.x + 1000.0, p.y);
        }
        let after = c.hpwl(&mc, &cc);
        assert!(after > before, "moving all groups away must grow HPWL");
    }

    #[test]
    fn coarse_hpwl_translation_of_everything_is_invariant_modulo_fixed() {
        // With no pads/preplaced, translating all groups leaves HPWL fixed.
        let mut b = DesignBuilder::new("t", Rect::new(0.0, 0.0, 100.0, 100.0));
        let m0 = b.add_macro("m0", 2.0, 2.0, "");
        let m1 = b.add_macro("m1", 3.0, 3.0, "");
        b.add_net(
            "n",
            [
                (NodeRef::Macro(m0), Point::ORIGIN),
                (NodeRef::Macro(m1), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        let d = b.build().unwrap();
        let pl = Placement::initial(&d);
        let c = Coarsener::new(&ClusterParams::paper(4.0)).coarsen(&d, &pl);
        let mc = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let shifted = vec![Point::new(5.0, 5.0), Point::new(15.0, 5.0)];
        let cc: Vec<Point> = Vec::new();
        assert!((c.hpwl(&mc, &cc) - c.hpwl(&shifted, &cc)).abs() < 1e-9);
    }

    #[test]
    fn weights_are_preserved() {
        let mut b = DesignBuilder::new("w", Rect::new(0.0, 0.0, 100.0, 100.0));
        let m0 = b.add_macro("m0", 2.0, 2.0, "");
        let p = b.add_pad("p", Point::new(0.0, 0.0));
        b.add_net(
            "n",
            [
                (NodeRef::Macro(m0), Point::ORIGIN),
                (NodeRef::Pad(p), Point::ORIGIN),
            ],
            2.5,
        )
        .unwrap();
        let d = b.build().unwrap();
        let pl = Placement::initial(&d);
        let c = Coarsener::new(&ClusterParams::paper(4.0)).coarsen(&d, &pl);
        assert_eq!(c.nets()[0].weight, 2.5);
    }

    #[test]
    fn zero_macro_design_coarsens() {
        let d = SyntheticSpec::small("z", 0, 0, 8, 60, 80, false, 3).generate();
        let c = coarse_of(&d);
        assert!(c.macro_groups().is_empty());
        assert!(!c.cell_groups().is_empty());
    }
}
