//! The trained agent: a thin, checkpointable wrapper around the network.

use crate::env::State;
use crate::net::{AgentConfig, NetOutput, PolicyValueNet};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// An actor-critic agent (π_θ + V_θ). Cloneable (checkpointing for the
/// Fig. 5 experiment) and serialisable (weight files).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Agent {
    net: PolicyValueNet,
}

impl Agent {
    /// A freshly-initialised agent.
    pub fn new(config: AgentConfig) -> Self {
        Agent {
            net: PolicyValueNet::new(config),
        }
    }

    /// Wraps an existing network.
    pub fn from_net(net: PolicyValueNet) -> Self {
        Agent { net }
    }

    /// The network size configuration.
    pub fn config(&self) -> &AgentConfig {
        self.net.config()
    }

    /// Mutable access to the underlying network (training).
    pub fn net_mut(&mut self) -> &mut PolicyValueNet {
        &mut self.net
    }

    /// Evaluates π_θ and V_θ on a state (inference mode).
    pub fn policy_value(&mut self, state: &State) -> NetOutput {
        self.net
            .forward(&state.s_p, &state.s_a, state.t, state.total, false)
    }

    /// Samples an action from π_θ.
    ///
    /// Falls back to the most-available cell when the distribution is
    /// degenerate (all cells masked).
    pub fn sample_action<R: Rng>(&mut self, state: &State, rng: &mut R) -> usize {
        let out = self.policy_value(state);
        sample_from(&out.probs, rng).unwrap_or_else(|| argmax(&state.s_a))
    }

    /// The greedy (argmax) action of π_θ.
    pub fn greedy_action(&mut self, state: &State) -> usize {
        let out = self.policy_value(state);
        argmax(&out.probs)
    }

    /// Serialises the agent as JSON. A mut reference can be passed as the
    /// writer.
    ///
    /// # Errors
    ///
    /// Propagates serialisation/I/O failures.
    pub fn save<W: Write>(&self, w: W) -> Result<(), serde_json::Error> {
        serde_json::to_writer(w, self)
    }

    /// Reads an agent saved by [`Agent::save`]. A mut reference can be
    /// passed as the reader.
    ///
    /// # Errors
    ///
    /// Propagates deserialisation/I/O failures.
    pub fn load<R: Read>(r: R) -> Result<Self, serde_json::Error> {
        serde_json::from_reader(r)
    }
}

/// Samples an index from an (unnormalised is fine) non-negative weight
/// vector; `None` when all weights vanish.
pub(crate) fn sample_from<R: Rng>(weights: &[f32], rng: &mut R) -> Option<usize> {
    let total: f32 = weights.iter().filter(|w| w.is_finite()).sum();
    if !(total > 0.0) {
        return None;
    }
    let mut ticket = rng.gen::<f32>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if !w.is_finite() {
            continue;
        }
        ticket -= w;
        if ticket <= 0.0 {
            return Some(i);
        }
    }
    weights.iter().rposition(|w| w.is_finite() && *w > 0.0)
}

fn argmax(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn state(z2: usize) -> State {
        State {
            s_p: vec![0.2; z2],
            s_a: vec![1.0; z2],
            t: 0,
            total: 4,
        }
    }

    fn tiny_agent() -> Agent {
        Agent::new(AgentConfig {
            zeta: 4,
            channels: 4,
            res_blocks: 1,
            seed: 3,
        })
    }

    #[test]
    fn greedy_action_is_deterministic() {
        let mut a = tiny_agent();
        let s = state(16);
        assert_eq!(a.greedy_action(&s), a.greedy_action(&s));
    }

    #[test]
    fn sampling_respects_mask() {
        let mut a = tiny_agent();
        let mut s = state(16);
        for i in 0..16 {
            if i != 7 {
                s.s_a[i] = 0.0;
            }
        }
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(a.sample_action(&s, &mut rng), 7);
        }
    }

    #[test]
    fn fully_masked_state_falls_back() {
        let mut a = tiny_agent();
        let mut s = state(16);
        s.s_a = vec![0.0; 16];
        let mut rng = SmallRng::seed_from_u64(2);
        let act = a.sample_action(&s, &mut rng);
        assert!(act < 16);
    }

    #[test]
    fn save_load_roundtrip_preserves_behaviour() {
        let mut a = tiny_agent();
        let s = state(16);
        let before = a.policy_value(&s);
        let mut buf = Vec::new();
        a.save(&mut buf).unwrap();
        let mut b = Agent::load(buf.as_slice()).unwrap();
        let after = b.policy_value(&s);
        assert_eq!(before, after);
    }

    #[test]
    fn sample_from_weights() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(sample_from(&[0.0, 0.0], &mut rng), None);
        assert_eq!(sample_from(&[0.0, 1.0], &mut rng), Some(1));
        // Distribution roughly follows the weights.
        let mut counts = [0usize; 2];
        for _ in 0..2000 {
            counts[sample_from(&[1.0, 3.0], &mut rng).unwrap()] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.0..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sample_from_handles_infinities() {
        let mut rng = SmallRng::seed_from_u64(4);
        // Non-finite entries are skipped rather than poisoning the sum.
        let act = sample_from(&[f32::INFINITY, 1.0], &mut rng);
        assert_eq!(act, Some(1));
    }
}
