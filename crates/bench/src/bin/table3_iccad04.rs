//! Table III — HPWL on the ICCAD04-like suite (ibm01–ibm18): CT \[27\],
//! MaskPlace \[19\], RePlAce \[10\] vs ours.
//!
//! ```sh
//! cargo run --release -p mmp-bench --bin table3_iccad04
//! ```
//!
//! Paper expectation (normalized vs ours): CT 1.39, MaskPlace 1.10,
//! RePlAce 1.01, ours 1.00. `ibm05` carries no macros and is skipped, as in
//! the paper.

use mmp_baselines::{score_hpwl, CtLike, MacroPlacer as Baseline, MaskPlaceLike, ReplaceLike};
use mmp_bench::{header, iccad_scale, run_ours, scaled_count};
use mmp_core::{iccad04_suite, normalize_rows, DesignStats, TableRow};

fn main() {
    header(
        "Table III — ICCAD04-like benchmarks",
        "contenders: CT-like [27] | MaskPlace-like [19] | RePlAce-like [10] | Ours — HPWL (lower wins)",
    );
    let scale = iccad_scale();
    println!("scale factor {scale} (MMP_SCALE to change)\n");

    let mut rows = Vec::new();
    println!(
        "{:>6} | {:>6} {:>7} {:>7} | {:>10} {:>12} {:>12} {:>10}",
        "Cir.", "#Mac", "#Cells", "#Nets", "CT", "MaskPlace", "RePlAce", "Ours"
    );
    for spec in iccad04_suite() {
        if spec.movable_macros == 0 {
            println!(
                "{:>6} | skipped: no macros (the paper also excludes it)",
                spec.name
            );
            continue;
        }
        let spec = spec.scaled(scale);
        let design = spec.generate();
        let stats = DesignStats::of(&design);

        let ct = score_hpwl(
            &design,
            &CtLike::tiny(16, scaled_count(40, 8), 3).place_macros(&design),
        );
        let maskplace = score_hpwl(&design, &MaskPlaceLike::new(16).place_macros(&design));
        let replace = score_hpwl(&design, &ReplaceLike::new().place_macros(&design));
        let ours = run_ours(&spec, 16).hpwl;

        println!(
            "{:>6} | {:>6} {:>7} {:>7} | {:>10.0} {:>12.0} {:>12.0} {:>10.0}",
            stats.name,
            stats.movable_macros,
            stats.std_cells,
            stats.nets,
            ct,
            maskplace,
            replace,
            ours
        );
        rows.push(TableRow {
            circuit: stats.name,
            results: vec![
                ("CT [27]".into(), ct),
                ("MaskPlace [19]".into(), maskplace),
                ("RePlAce [10]".into(), replace),
                ("Ours".into(), ours),
            ],
        });
    }

    println!("\nnormalized (geometric mean, Ours = 1.00):");
    println!("{:>18} | {:>8} | {:>8}", "contender", "measured", "paper");
    let paper = [1.39, 1.10, 1.01, 1.00];
    for ((name, norm), paper_val) in normalize_rows(&rows).into_iter().zip(paper) {
        println!("{name:>18} | {norm:>8.2} | {paper_val:>8.2}");
    }
    println!(
        "\npaper-vs-measured: the paper's ordering is CT worst, then MaskPlace,\n\
         then RePlAce barely behind Ours; check the measured column preserves\n\
         'Ours wins' and CT trailing."
    );
}
