//! The project lint rules clippy cannot express (R1–R10).
//!
//! R1–R7 work on the token stream of [`crate::lexer`] alone, so string
//! literals and comments never produce false positives. R8–R10
//! additionally consult the item table of [`crate::items`] (and, for
//! R8's call chains, the graph of [`crate::graph`], attached by the
//! engine in `lib.rs`). Rules are heuristic by design: they match the
//! conventions this workspace actually uses (`HashMap` by that name,
//! `Instant::now` spelled out) — aliasing a banned item through
//! `use ... as` would evade them, and code review owns that residue.

use crate::items::{is_expr_keyword, ParsedFile};
use crate::lexer::{Comment, Lexed, Tok, TokKind};
use crate::LintConfig;

/// Rule R1: hashed-collection order must not reach placement decisions.
pub const HASH_ORDER: &str = "hash-order";
/// Rule R2: `partial_cmp` on floats panics or lies on NaN; use `total_cmp`.
pub const PARTIAL_CMP: &str = "partial-cmp";
/// Rule R3: wall-clock reads only in the sanctioned budget/obs modules.
pub const WALLCLOCK: &str = "wallclock";
/// Rule R4: randomness only from the vendored seeded RNG.
pub const RNG_SOURCE: &str = "rng-source";
/// Rule R5: every `#[allow(..)]` of a denied lint carries a `why:`.
pub const ALLOW_WHY: &str = "allow-why";
/// Rule R6: machine-derived thread counts never size compute partitions.
pub const PARALLELISM: &str = "parallelism";
/// Rule R7: durable-state crates mutate the filesystem only through the
/// `mmp-vfs` chokepoint, never via bare `std::fs`.
pub const FS_ROUTE: &str = "fs-route";
/// Rule R8: panic sites in library crates, reported with their shortest
/// call chain from the serving/flow entrypoints.
pub const PANIC_PATH: &str = "panic-path";
/// Rule R9: float accumulation whose order is not pinned (`.sum::<f64>`,
/// `fold`/`reduce` with `+`) outside the pool's fixed-chunk reductions.
pub const FLOAT_REDUCTION: &str = "float-reduction";
/// Rule R10: lossy `as` casts in index/coordinate arithmetic.
pub const CAST_TRUNCATION: &str = "cast-truncation";
/// Meta rule: malformed or unused `mmp-lint:` suppression comments.
/// Not suppressible — a broken suppression must never silence itself.
pub const SUPPRESSION: &str = "suppression";

/// Static rule descriptions, used by `mmp-lint rules` and the docs test.
pub const RULES: &[(&str, &str)] = &[
    (
        HASH_ORDER,
        "decision crates must not use HashMap/HashSet (iteration order is \
         seed-dependent); use BTreeMap/BTreeSet or sorted keys, or suppress \
         with a why: proving the collection is never iterated",
    ),
    (
        PARTIAL_CMP,
        "partial_cmp on floats panics or mis-sorts on NaN; use f64::total_cmp",
    ),
    (
        WALLCLOCK,
        "Instant::now/SystemTime::now outside the sanctioned budget/obs \
         timing modules lets wall-clock leak into placement decisions",
    ),
    (
        RNG_SOURCE,
        "thread_rng/rand::random/RandomState are seeded from the OS; all \
         randomness must flow from the vendored seeded RNG",
    ),
    (
        ALLOW_WHY,
        "an #[allow(..)] of a denied lint needs an adjacent comment with a \
         why: justification",
    ),
    (
        PARALLELISM,
        "available_parallelism outside the pool/bench edges derives work \
         partitions from the machine; worker counts must come from explicit \
         configuration (mmp_pool::ThreadPool)",
    ),
    (
        FS_ROUTE,
        "checkpoint/journal crates must not mutate the filesystem through \
         bare std::fs (write/rename/remove/create_dir/...); every durable \
         write routes through the mmp-vfs chokepoint so fault injection \
         and the crash-consistency torture harness see it",
    ),
    (
        PANIC_PATH,
        "panic sites (unwrap/expect/panic!/assert!/slice indexing) in \
         library crates can take the daemon or the flow down; sites are \
         reported with their shortest call chain from the entrypoints \
         (Daemon::serve, MacroPlacer::place, Trainer::train) so the most \
         reachable ones get converted to typed errors first",
    ),
    (
        FLOAT_REDUCTION,
        "float accumulation without a pinned order (.sum::<f32/f64>(), \
         fold/reduce with +) breaks the bitwise worker-invariance contract \
         the moment it is parallelized; route through mmp_pool's \
         fixed-chunk reductions or why-note why the site must stay \
         sequential",
    ),
    (
        CAST_TRUNCATION,
        "`as` casts to narrower integer types (or f32) in geometry/netlist \
         index arithmetic silently truncate or wrap out-of-range values; \
         use try_from/checked conversions or why-note the proven range",
    ),
    (
        SUPPRESSION,
        "mmp-lint suppression comments must parse, carry a non-empty why:, \
         name known rules, and actually suppress something",
    ),
];

/// `true` when `id` names a real (suppressible or meta) rule.
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == id)
}

/// One rule hit before suppression matching.
#[derive(Debug, Clone)]
pub struct RawFinding {
    pub rule: &'static str,
    pub line: usize,
    pub col: usize,
    pub message: String,
    /// The site kind within the rule — the matched token for R1–R7
    /// (`HashMap`, `partial_cmp`, ...), `unwrap`/`expect`/`panic`/
    /// `assert`/`index` for R8, `sum`/`fold`/`reduce` for R9, the cast
    /// target type for R10. Part of the baseline key, so it must be
    /// stable under unrelated edits to the same file.
    pub kind: String,
    /// Index of the triggering token (the engine uses it to attribute
    /// the finding to its enclosing `fn` item).
    pub tok: usize,
}

/// Runs every rule over one lexed file. `path_rel` is the
/// workspace-relative path with `/` separators (used for crate scoping).
pub fn scan(path_rel: &str, lexed: &Lexed, cfg: &LintConfig) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let toks = &lexed.tokens;
    let decision = cfg.is_decision_crate(path_rel);
    let sanctioned_clock = cfg.is_wallclock_sanctioned(path_rel);
    let sanctioned_parallelism = cfg.is_parallelism_sanctioned(path_rel);
    let fs_routed = cfg.is_fs_route_scoped(path_rel);

    // R7 stops at the unit-test module: tests legitimately tamper with
    // files (torn writes, orphaned temps) to exercise the recovery paths,
    // and the workspace convention keeps `mod tests` last in the file.
    let mut in_tests = false;

    // R1 needs to skip `use` declarations: importing a hashed collection
    // is inert, only construction/annotation sites matter (and they keep
    // the import alive). Track `use ... ;` spans in token order.
    let mut in_use = false;
    // One R1 finding per line, not per token, so a multi-token type like
    // `HashMap<GridIndex, Vec<MacroId>>` reads as one violation.
    let mut last_hash_line = 0usize;

    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("use") {
            in_use = true;
        } else if in_use && t.is_punct(';') {
            in_use = false;
        }

        // R1 — hashed collections in decision crates.
        if decision
            && !in_use
            && (t.is_ident("HashMap") || t.is_ident("HashSet"))
            && t.line != last_hash_line
        {
            last_hash_line = t.line;
            out.push(RawFinding {
                rule: HASH_ORDER,
                line: t.line,
                col: t.col,
                kind: t.text.clone(),
                tok: i,
                message: format!(
                    "{} in a decision crate: iteration order is seed-dependent; \
                     use BTreeMap/BTreeSet or sorted keys (or suppress with a \
                     why: proving it is never iterated)",
                    t.text
                ),
            });
        }

        // R2 — partial_cmp anywhere.
        if t.is_ident("partial_cmp") {
            out.push(RawFinding {
                rule: PARTIAL_CMP,
                line: t.line,
                col: t.col,
                kind: "partial_cmp".to_owned(),
                tok: i,
                message: "partial_cmp on floats panics or mis-sorts on NaN; \
                          use f64::total_cmp"
                    .to_owned(),
            });
        }

        // R3 — `Instant::now` / `SystemTime::now` outside sanctioned modules.
        if !sanctioned_clock
            && (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && path_sep(toks, i)
            && toks.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            out.push(RawFinding {
                rule: WALLCLOCK,
                line: t.line,
                col: t.col,
                kind: t.text.clone(),
                tok: i,
                message: format!(
                    "{}::now outside the sanctioned timing modules: wall-clock \
                     must flow through the budget/obs layers, never into \
                     placement decisions",
                    t.text
                ),
            });
        }

        // R6 — machine-derived parallelism outside the pool/bench edges.
        if !sanctioned_parallelism && t.is_ident("available_parallelism") {
            out.push(RawFinding {
                rule: PARALLELISM,
                line: t.line,
                col: t.col,
                kind: "available_parallelism".to_owned(),
                tok: i,
                message: "available_parallelism derives a work partition from \
                          the machine, which breaks run-to-run determinism \
                          across hosts; take the worker count from explicit \
                          configuration (mmp_pool::ThreadPool)"
                    .to_owned(),
            });
        }

        // R7 — bare std::fs mutations in the durable-state crates. The
        // `use` skip does not apply: importing `std::fs::write` into a
        // routed file is the same evasion as calling it qualified.
        if t.is_ident("mod") && toks.get(i + 1).is_some_and(|n| n.is_ident("tests")) {
            in_tests = true;
        }
        if fs_routed && !in_tests {
            if t.is_ident("fs")
                && path_sep(toks, i)
                && toks.get(i + 3).is_some_and(|n| is_fs_mutation(&n.text))
            {
                let name = &toks[i + 3].text;
                out.push(RawFinding {
                    rule: FS_ROUTE,
                    line: t.line,
                    col: t.col,
                    kind: format!("fs::{name}"),
                    tok: i,
                    message: format!(
                        "fs::{name} bypasses the mmp-vfs chokepoint: durable \
                         mutations here are invisible to fault injection and \
                         the torture harness; route through Vfs instead"
                    ),
                });
            }
            if (t.is_ident("File") || t.is_ident("OpenOptions"))
                && path_sep(toks, i)
                && toks
                    .get(i + 3)
                    .is_some_and(|n| n.is_ident("create") || n.is_ident("new"))
            {
                out.push(RawFinding {
                    rule: FS_ROUTE,
                    line: t.line,
                    col: t.col,
                    kind: format!("{}::{}", t.text, toks[i + 3].text),
                    tok: i,
                    message: format!(
                        "{}::{} opens a writable handle outside the mmp-vfs \
                         chokepoint; route durable writes through Vfs instead",
                        t.text,
                        toks[i + 3].text
                    ),
                });
            }
        }

        // R4 — OS-seeded randomness.
        if t.is_ident("thread_rng") || t.is_ident("RandomState") {
            out.push(RawFinding {
                rule: RNG_SOURCE,
                line: t.line,
                col: t.col,
                kind: t.text.clone(),
                tok: i,
                message: format!(
                    "{} is seeded from the OS; use the vendored seeded RNG",
                    t.text
                ),
            });
        }
        if t.is_ident("rand")
            && path_sep(toks, i)
            && toks.get(i + 3).is_some_and(|n| n.is_ident("random"))
        {
            out.push(RawFinding {
                rule: RNG_SOURCE,
                line: t.line,
                col: t.col,
                kind: "rand::random".to_owned(),
                tok: i,
                message: "rand::random is seeded from the OS; use the vendored \
                          seeded RNG"
                    .to_owned(),
            });
        }
    }

    scan_allow_attrs(lexed, cfg, &mut out);
    out
}

/// Runs the semantic rules (R8–R10) over one lexed + item-parsed file.
/// Chains for R8 are attached later by the engine, which owns the
/// workspace-wide call graph; this pass only locates the sites.
///
/// All three rules skip unit-test ranges: tests assert and unwrap by
/// design, and the determinism/robustness contracts only bind library
/// code.
pub fn scan_semantic(
    path_rel: &str,
    lexed: &Lexed,
    pf: &ParsedFile,
    cfg: &LintConfig,
) -> Vec<RawFinding> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let panic_scope = cfg.is_panic_path_scoped(path_rel) && !pf.is_bin;
    let float_scope = !cfg.is_float_sanctioned(path_rel);
    let cast_scope = cfg.is_cast_scoped(path_rel);
    if !panic_scope && !float_scope && !cast_scope {
        return out;
    }
    // One `index` finding per line: `grid[x][y]` or `a[i] + b[i]` is one
    // site to fix, not two.
    let mut last_index_line = 0usize;

    for (i, t) in toks.iter().enumerate() {
        if pf.in_tests(i) {
            continue;
        }
        let prev_dot = i >= 1 && toks[i - 1].is_punct('.');

        // R8 — panic sites in library code.
        if panic_scope {
            if prev_dot
                && (t.is_ident("unwrap") || t.is_ident("expect"))
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                out.push(RawFinding {
                    rule: PANIC_PATH,
                    line: t.line,
                    col: t.col,
                    kind: t.text.clone(),
                    tok: i,
                    message: format!(
                        ".{}() panics on the failure case; in library code \
                         return a typed error instead",
                        t.text
                    ),
                });
            }
            if !prev_dot
                && (t.is_ident("panic")
                    || t.is_ident("unreachable")
                    || t.is_ident("todo")
                    || t.is_ident("unimplemented"))
                && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                out.push(RawFinding {
                    rule: PANIC_PATH,
                    line: t.line,
                    col: t.col,
                    kind: "panic".to_owned(),
                    tok: i,
                    message: format!(
                        "{}! aborts the thread; in library code return a \
                         typed error instead",
                        t.text
                    ),
                });
            }
            if (t.is_ident("assert") || t.is_ident("assert_eq") || t.is_ident("assert_ne"))
                && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                out.push(RawFinding {
                    rule: PANIC_PATH,
                    line: t.line,
                    col: t.col,
                    kind: "assert".to_owned(),
                    tok: i,
                    message: format!(
                        "{}! in library code panics on violation; use \
                         debug_assert! for invariants or return a typed error \
                         for input validation",
                        t.text
                    ),
                });
            }
            // Slice/array indexing: `expr[...]` where the `[` follows a
            // value (ident, `)`, or `]`). Attribute brackets (`#[`),
            // macro brackets (`vec![`), and type/slice-pattern brackets
            // never follow a value token.
            if t.is_punct('[') && t.line != last_index_line && i >= 1 {
                let p = &toks[i - 1];
                let after_value = (p.kind == TokKind::Ident && !is_expr_keyword(&p.text))
                    || p.is_punct(')')
                    || p.is_punct(']');
                if after_value {
                    last_index_line = t.line;
                    out.push(RawFinding {
                        rule: PANIC_PATH,
                        line: t.line,
                        col: t.col,
                        kind: "index".to_owned(),
                        tok: i,
                        message: "slice indexing panics when out of bounds; \
                                  use .get()/.get_mut() or why-note the \
                                  proven bound"
                            .to_owned(),
                    });
                }
            }
        }

        // R9 — unpinned-order float accumulation.
        if float_scope && prev_dot {
            if t.is_ident("sum")
                && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 3).is_some_and(|n| n.is_punct('<'))
                && toks
                    .get(i + 4)
                    .is_some_and(|n| n.is_ident("f32") || n.is_ident("f64"))
            {
                out.push(RawFinding {
                    rule: FLOAT_REDUCTION,
                    line: t.line,
                    col: t.col,
                    kind: "sum".to_owned(),
                    tok: i,
                    message: format!(
                        ".sum::<{}>() accumulates in iterator order, which the \
                         worker-invariance contract does not pin; route \
                         through mmp_pool's fixed-chunk reductions or why-note \
                         why this stays sequential",
                        toks[i + 4].text
                    ),
                });
            }
            // `fold` shows its init literal, so float evidence is
            // required; `reduce` closures show nothing, so any `+` in
            // the span fires (over-approximation by design).
            let is_fold = t.is_ident("fold");
            let is_reduce = t.is_ident("reduce");
            if (is_fold || is_reduce)
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && span_accumulates(toks, i + 1, is_fold)
            {
                out.push(RawFinding {
                    rule: FLOAT_REDUCTION,
                    line: t.line,
                    col: t.col,
                    kind: t.text.clone(),
                    tok: i,
                    message: format!(
                        ".{}(..) with a float `+` accumulates in iterator \
                         order, which the worker-invariance contract does not \
                         pin; route through mmp_pool's fixed-chunk reductions \
                         or why-note why this stays sequential",
                        t.text
                    ),
                });
            }
        }

        // R10 — narrowing `as` casts in index/coordinate arithmetic.
        if cast_scope
            && t.is_ident("as")
            && toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Ident && is_narrowing_cast_target(&n.text))
            // A literal cast (`7 as u32`) has its value in plain sight.
            && !(i >= 1 && toks[i - 1].kind == TokKind::Num)
        {
            let ty = &toks[i + 1].text;
            out.push(RawFinding {
                rule: CAST_TRUNCATION,
                line: t.line,
                col: t.col,
                kind: ty.clone(),
                tok: i,
                message: format!(
                    "`as {ty}` silently truncates/wraps out-of-range values; \
                     use try_from/a checked helper, or why-note the proven \
                     range (widening casts included: prove the source type)"
                ),
            });
        }
    }
    out
}

/// `true` when the balanced-paren span opening at `toks[open]` contains
/// a `+` — and, when `need_float_evidence`, also a float literal or an
/// `f32`/`f64` mention (the shape of `fold(0.0, |a, b| a + b)`; integer
/// folds with `+` are order-insensitive and deliberately not flagged).
fn span_accumulates(toks: &[Tok], open: usize, need_float_evidence: bool) -> bool {
    let mut depth = 0usize;
    let mut has_plus = false;
    let mut has_float = false;
    for t in &toks[open..] {
        match t.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokKind::Punct('+') => has_plus = true,
            TokKind::Ident if t.text == "f32" || t.text == "f64" => has_float = true,
            TokKind::Num => {
                let s = &t.text;
                let float_literal = s.contains('.')
                    || s.ends_with("f32")
                    || s.ends_with("f64")
                    || (!s.starts_with("0x") && (s.contains('e') || s.contains('E')));
                if float_literal {
                    has_float = true;
                }
            }
            _ => {}
        }
    }
    has_plus && (has_float || !need_float_evidence)
}

/// Cast targets R10 treats as truncation-prone in coordinate/index math.
/// `u64`/`i64` are included even though most casts *to* them widen: the
/// rule cannot see the source type, and a why-note naming it is cheap.
fn is_narrowing_cast_target(ty: &str) -> bool {
    matches!(
        ty,
        "u8" | "u16" | "u32" | "u64" | "usize" | "i8" | "i16" | "i32" | "i64" | "isize" | "f32"
    )
}

/// Mutating entry points of `std::fs` (R7). Reads (`read`, `read_dir`,
/// `metadata`, `File::open`) are deliberately absent: only mutations
/// need the chokepoint, and reads through `Vfs` stay optional.
fn is_fs_mutation(name: &str) -> bool {
    matches!(
        name,
        "write"
            | "rename"
            | "remove_file"
            | "remove_dir"
            | "remove_dir_all"
            | "create_dir"
            | "create_dir_all"
            | "copy"
            | "hard_link"
            | "set_permissions"
    )
}

/// `toks[i+1..=i+2]` is `::`.
fn path_sep(toks: &[Tok], i: usize) -> bool {
    toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
        && toks.get(i + 2).is_some_and(|b| b.is_punct(':'))
}

/// R5 — walks `#[allow(...)]` / `#![allow(...)]` attributes; any denied
/// lint inside needs a `why:` in an adjacent comment (trailing on the
/// attribute's line, or in the contiguous comment block directly above).
fn scan_allow_attrs(lexed: &Lexed, cfg: &LintConfig, out: &mut Vec<RawFinding>) {
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct('#') {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        let attr_col = toks[i].col;
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('!')) {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        if !toks.get(j + 1).is_some_and(|t| t.is_ident("allow"))
            || !toks.get(j + 2).is_some_and(|t| t.is_punct('('))
        {
            i += 1;
            continue;
        }
        // Collect `::`-joined paths between the matching parentheses.
        let mut depth = 0usize;
        let mut k = j + 2;
        let mut paths: Vec<String> = Vec::new();
        let mut current = String::new();
        while let Some(t) = toks.get(k) {
            match t.kind {
                crate::lexer::TokKind::Punct('(') => depth += 1,
                crate::lexer::TokKind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                crate::lexer::TokKind::Punct(':') => current.push(':'),
                crate::lexer::TokKind::Punct(',') if !current.is_empty() => {
                    paths.push(std::mem::take(&mut current));
                }
                crate::lexer::TokKind::Ident => current.push_str(&t.text),
                _ => {}
            }
            k += 1;
        }
        if !current.is_empty() {
            paths.push(current);
        }
        for p in &paths {
            if cfg.denied_lints.iter().any(|d| d == p)
                && !has_adjacent_why(&lexed.comments, attr_line)
            {
                out.push(RawFinding {
                    rule: ALLOW_WHY,
                    line: attr_line,
                    col: attr_col,
                    kind: p.clone(),
                    tok: i,
                    message: format!(
                        "#[allow({p})] relaxes a denied lint without a why: \
                         justification; add `// why: ...` on or directly \
                         above the attribute"
                    ),
                });
            }
        }
        i = k.max(i + 1);
    }
}

/// A comment containing `why:` on `attr_line`, or in the contiguous run
/// of comment-bearing lines immediately above it.
fn has_adjacent_why(comments: &[Comment], attr_line: usize) -> bool {
    let has = |line: usize| comments.iter().any(|c| c.line == line);
    let why = |line: usize| {
        comments
            .iter()
            .any(|c| c.line == line && c.text.contains("why:"))
    };
    if why(attr_line) {
        return true;
    }
    let mut line = attr_line;
    while line > 1 && has(line - 1) {
        line -= 1;
        if why(line) {
            return true;
        }
    }
    false
}
