#![warn(missing_docs)]
// Hardened crate: panicking extractors are denied in CI on library code
// (tests and benches may unwrap freely). Justified invariant `expect`s
// carry explicit allows at the call site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
// Structured output goes through mmp_obs; stray prints are denied in CI
// (the obs sinks and bin/ targets are the sanctioned exits).
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

//! Netlist data model for the MMP macro placer.
//!
//! The paper's pipeline consumes mixed-size designs: movable macros,
//! preplaced macros, I/O pads, standard cells and the nets connecting them,
//! plus (for the industrial benchmarks) design-hierarchy names. This crate
//! provides:
//!
//! * the typed [`Design`] model with id-indexed [`Macro`]s, [`Cell`]s,
//!   [`Pad`]s and [`Net`]s,
//! * [`Placement`] — the mutable coordinate assignment scored by HPWL,
//! * a [`DesignBuilder`] with validation,
//! * a Bookshelf-subset reader/writer ([`bookshelf`]),
//! * deterministic **synthetic benchmark generators** ([`generator`])
//!   reproducing the published statistics of the ICCAD04 (`ibm01`–`ibm18`)
//!   and industrial (`Cir1`–`Cir6`) suites the paper evaluates on — the real
//!   files are not redistributable, so we synthesise workloads with the same
//!   size and connectivity shape (see DESIGN.md §3).
//!
//! # Example
//!
//! ```
//! use mmp_netlist::{DesignBuilder, NodeRef};
//! use mmp_geom::{Point, Rect};
//!
//! # fn main() -> Result<(), mmp_netlist::BuildDesignError> {
//! let mut b = DesignBuilder::new("demo", Rect::new(0.0, 0.0, 100.0, 100.0));
//! let m = b.add_macro("m0", 20.0, 10.0, "top/alu");
//! let c = b.add_cell("c0", 1.0, 1.0, "top/alu");
//! b.add_net("n0", [(NodeRef::Macro(m), Point::ORIGIN), (NodeRef::Cell(c), Point::ORIGIN)], 1.0)?;
//! let design = b.build()?;
//! assert_eq!(design.macros().len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod bookshelf;
pub mod bookshelf_aux;
pub mod builder;
pub mod design;
pub mod generator;
pub mod hierarchy;
pub mod ids;
pub mod incremental;
pub mod orientation;
pub mod placement;
pub mod stats;
pub mod svg;

pub use builder::{BuildDesignError, DesignBuilder};
pub use design::{Cell, Design, Macro, Net, Pad, Pin};
pub use generator::{iccad04_suite, industrial_suite, SyntheticSpec};
pub use hierarchy::hierarchy_affinity;
pub use ids::{CellId, MacroId, NetId, NodeRef, PadId};
pub use incremental::IncrementalHpwl;
pub use orientation::Orientation;
pub use placement::Placement;
pub use stats::DesignStats;
