//! The inference workspace: preallocated scratch buffers shared across
//! forward passes.
//!
//! Training needs `&mut self` layers (the tape caches live inside them),
//! but inference does not: weights are immutable and every intermediate is
//! scratch. [`InferenceCtx`] makes that split explicit — layers expose
//! [`Layer::infer`](crate::Layer::infer) taking `&self` weights plus a
//! `&mut InferenceCtx`, and every im2col buffer, activation plane and head
//! output is drawn from (and returned to) the context's pool instead of
//! being freshly allocated. One network can then be shared by many readers
//! (MCTS workers, batched evaluators) that each own a cheap context.

use crate::tensor::Tensor;

/// A pool of reusable `f32` buffers keyed by capacity.
///
/// `take` hands out a zeroed buffer of the requested length, reusing the
/// smallest pooled allocation that fits; `recycle` returns a buffer to the
/// pool. The pool is bounded so pathological shape sequences cannot hoard
/// memory.
///
/// # Example
///
/// ```
/// use mmp_nn::InferenceCtx;
///
/// let mut ctx = InferenceCtx::new();
/// let buf = ctx.take(128);
/// assert_eq!(buf.len(), 128);
/// assert!(buf.iter().all(|&v| v == 0.0));
/// ctx.recycle(buf);
/// // The next request reuses the same allocation.
/// let again = ctx.take(64);
/// assert!(again.capacity() >= 128);
/// ```
#[derive(Debug, Default)]
pub struct InferenceCtx {
    /// Recycled buffers, unordered; small (≤ [`InferenceCtx::MAX_POOLED`]).
    pool: Vec<Vec<f32>>,
}

impl InferenceCtx {
    /// Upper bound on pooled buffers; excess recycles are dropped.
    const MAX_POOLED: usize = 32;

    /// An empty context.
    pub fn new() -> Self {
        InferenceCtx::default()
    }

    /// Number of buffers currently pooled (diagnostics).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// A zeroed buffer of exactly `len` elements, reusing a pooled
    /// allocation when one with sufficient capacity exists.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        // Pick the smallest pooled buffer that fits to keep big ones for
        // big requests.
        let mut best: Option<usize> = None;
        for (i, b) in self.pool.iter().enumerate() {
            if b.capacity() >= len && best.is_none_or(|j| b.capacity() < self.pool[j].capacity()) {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                let mut buf = self.pool.swap_remove(i);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn recycle(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 && self.pool.len() < Self::MAX_POOLED {
            self.pool.push(buf);
        }
    }

    /// A zeroed tensor of the given shape backed by a pooled buffer.
    pub fn take_tensor(&mut self, shape: &[usize]) -> Tensor {
        let len = shape.iter().product();
        Tensor::from_vec(shape, self.take(len))
    }

    /// Returns a tensor's backing storage to the pool.
    pub fn recycle_tensor(&mut self, t: Tensor) {
        self.recycle(t.into_raw());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffers() {
        let mut ctx = InferenceCtx::new();
        let mut buf = ctx.take(16);
        buf.iter_mut().for_each(|v| *v = 3.0);
        ctx.recycle(buf);
        let again = ctx.take(16);
        assert!(
            again.iter().all(|&v| v == 0.0),
            "recycled buffer not zeroed"
        );
    }

    #[test]
    fn pool_reuses_allocations() {
        let mut ctx = InferenceCtx::new();
        let buf = ctx.take(100);
        let ptr = buf.as_ptr();
        ctx.recycle(buf);
        assert_eq!(ctx.pooled(), 1);
        let again = ctx.take(50);
        assert_eq!(again.as_ptr(), ptr, "pooled allocation should be reused");
        assert_eq!(ctx.pooled(), 0);
    }

    #[test]
    fn smallest_sufficient_buffer_is_picked() {
        let mut ctx = InferenceCtx::new();
        let big = ctx.take(1000);
        let small = ctx.take(10);
        ctx.recycle(big);
        ctx.recycle(small);
        let got = ctx.take(8);
        assert!(got.capacity() < 1000, "should prefer the small buffer");
    }

    #[test]
    fn pool_is_bounded() {
        let mut ctx = InferenceCtx::new();
        for _ in 0..100 {
            ctx.recycle(vec![0.0; 4]);
        }
        assert!(ctx.pooled() <= InferenceCtx::MAX_POOLED);
    }

    #[test]
    fn tensor_roundtrip() {
        let mut ctx = InferenceCtx::new();
        let t = ctx.take_tensor(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        ctx.recycle_tensor(t);
        assert_eq!(ctx.pooled(), 1);
    }
}
