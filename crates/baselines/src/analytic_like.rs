//! Analytical baselines: the DREAMPlace-like and RePlAce-like contenders.
//!
//! Both run the mixed-size quadratic global placer of `mmp-analytic` and
//! legalize the resulting (overlapped) macro positions with the shared
//! global sequence-pair pass. They differ in effort: the RePlAce-like
//! variant runs the heavier density schedule (more solve/spread iterations,
//! tighter utilization target), mirroring RePlAce's stronger density
//! control versus a single DREAMPlace global pass. Neither sees design
//! hierarchy — the paper attributes DREAMPlace's Table II gap to exactly
//! that.

use crate::placer::MacroPlacer;
use mmp_analytic::{GlobalPlacer, GlobalPlacerConfig};
use mmp_geom::Point;
use mmp_legal::MacroLegalizer;
use mmp_netlist::{Design, Placement};

fn analytic_place(design: &Design, config: GlobalPlacerConfig) -> Placement {
    let mixed = GlobalPlacer::new(config).place_mixed(design);
    let targets: Vec<Point> = design
        .movable_macros()
        .into_iter()
        .map(|id| mixed.macro_center(id))
        .collect();
    let (placement, _, _) = MacroLegalizer::new().legalize_targets(design, &targets);
    placement
}

/// DREAMPlace-like: one fast analytical mixed-size pass + macro
/// legalization.
#[derive(Debug, Clone, Default)]
pub struct AnalyticOnly;

impl AnalyticOnly {
    /// Creates the placer.
    pub fn new() -> Self {
        AnalyticOnly
    }
}

impl MacroPlacer for AnalyticOnly {
    fn name(&self) -> &str {
        "DREAMPlace-like"
    }

    fn place_macros(&self, design: &Design) -> Placement {
        analytic_place(design, GlobalPlacerConfig::fast())
    }
}

/// RePlAce-like: the quality analytical schedule + macro legalization.
#[derive(Debug, Clone, Default)]
pub struct ReplaceLike;

impl ReplaceLike {
    /// Creates the placer.
    pub fn new() -> Self {
        ReplaceLike
    }
}

impl MacroPlacer for ReplaceLike {
    fn name(&self) -> &str {
        "RePlAce-like"
    }

    fn place_macros(&self, design: &Design) -> Placement {
        let mut cfg = GlobalPlacerConfig::quality();
        cfg.iterations = 24;
        cfg.target_utilization = 1.0;
        analytic_place(design, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placer::score_hpwl;
    use crate::RandomPlacer;
    use mmp_netlist::SyntheticSpec;

    #[test]
    fn analytic_baselines_are_legal() {
        let d = SyntheticSpec::small("an", 8, 2, 8, 80, 140, true, 3).generate();
        for placer in [
            &AnalyticOnly::new() as &dyn MacroPlacer,
            &ReplaceLike::new(),
        ] {
            let pl = placer.place_macros(&d);
            assert!(
                pl.macro_overlap_area(&d) < 1e-6,
                "{} leaves overlaps",
                placer.name()
            );
            // Preplaced macros untouched.
            for id in d.preplaced_macros() {
                assert_eq!(pl.macro_center(id), d.macro_(id).fixed_center.unwrap());
            }
        }
    }

    #[test]
    fn analytic_beats_random_on_average() {
        // The claim is about the placer, not about which side a particular
        // random stream happens to favour: a single random draw has huge
        // variance on these tiny instances, so compare against the mean of
        // several draws per design.
        let mut wins = 0;
        for seed in 0..8 {
            let d = SyntheticSpec::small("ab", 8, 0, 12, 100, 170, false, seed).generate();
            let analytic = score_hpwl(&d, &ReplaceLike::new().place_macros(&d));
            let random_mean: f64 = (0..3)
                .map(|k| score_hpwl(&d, &RandomPlacer::new(seed * 31 + k, 8).place_macros(&d)))
                .sum::<f64>()
                / 3.0;
            if analytic < random_mean {
                wins += 1;
            }
        }
        assert!(wins >= 5, "analytical won only {wins}/8 against random");
    }

    #[test]
    fn variants_produce_different_results() {
        let d = SyntheticSpec::small("av", 8, 0, 8, 80, 140, false, 4).generate();
        let a = AnalyticOnly::new().place_macros(&d);
        let b = ReplaceLike::new().place_macros(&d);
        assert_ne!(a, b);
    }
}
