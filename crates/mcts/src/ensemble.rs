//! Parallel ensemble search: N independent MCTS runs with diversified
//! priors, best final allocation wins.
//!
//! The paper runs one search per design; on a multicore host the cheapest
//! robustness upgrade is root-level parallelism — each worker perturbs the
//! expansion priors slightly (a deterministic analogue of AlphaZero's
//! Dirichlet root noise), searches independently, and the best-scoring
//! terminal allocation is kept. Determinism is preserved: worker `k`
//! always uses noise seed `seed + k`, so results are reproducible.
//!
//! Workers are *supervised*: each runs under `catch_unwind`, so one
//! panicking worker is dropped and the ensemble proceeds on the surviving
//! quorum (≥ 1) instead of taking down the whole run. The loss is visible
//! in [`EnsembleOutcome::panicked_runs`] (the flow records it as a
//! degradation event); only an ensemble with *no* survivors fails, with
//! the typed [`EnsembleError::AllWorkersPanicked`].

use crate::search::{MctsConfig, MctsOutcome, MctsPlacer};
use mmp_obs::{field, Obs};
use mmp_pool::ThreadPool;
use mmp_rl::{Agent, InferenceCtx, RewardScale, Trainer};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Why the ensemble could not produce any result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnsembleError {
    /// `runs == 0` was configured — there is nothing to search.
    NoRuns,
    /// Every worker panicked; no surviving quorum to pick a result from.
    AllWorkersPanicked {
        /// How many workers were launched (and lost).
        runs: usize,
    },
}

impl std::fmt::Display for EnsembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnsembleError::NoRuns => write!(f, "ensemble needs at least one run"),
            EnsembleError::AllWorkersPanicked { runs } => {
                write!(f, "all {runs} ensemble workers panicked; no surviving run")
            }
        }
    }
}

impl std::error::Error for EnsembleError {}

/// Ensemble parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleConfig {
    /// Independent search runs (also the thread fan-out).
    pub runs: usize,
    /// Per-run search configuration; `prior_noise` is forced positive for
    /// every run but the first (run 0 reproduces the plain single search).
    pub base: MctsConfig,
    /// Noise amplitude for the diversified runs.
    pub noise: f32,
    /// Base seed; run `k` uses `seed + k`.
    pub seed: u64,
    /// Observability handle. Only the deterministic run 0 traces (worker
    /// interleaving would make trace output nondeterministic); the
    /// ensemble itself emits a `mcts.ensemble`/`done` summary after the
    /// join. Not part of the serialized configuration.
    #[serde(skip)]
    pub obs: Obs,
    /// Fault injection (test support): worker `k` panics right after
    /// spawning, exercising the supervised-quorum path deterministically.
    /// `None` in production.
    #[serde(default)]
    pub fault_panic_worker: Option<usize>,
    /// Deterministic executor for the run fan-out (fixed partition of the
    /// `runs` indices; single-worker inline by default). A pool-level
    /// panic — outside the per-run supervision, e.g. the poisoned-pool
    /// fault scenario — is typed as
    /// [`EnsembleError::AllWorkersPanicked`]. Not part of the serialized
    /// configuration.
    #[serde(skip)]
    pub pool: ThreadPool,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        EnsembleConfig {
            runs: 4,
            base: MctsConfig::default(),
            noise: 0.25,
            seed: 0,
            obs: Obs::off(),
            fault_panic_worker: None,
            pool: ThreadPool::single(),
        }
    }
}

/// Result of an ensemble run: the winning outcome plus each run's score.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleOutcome {
    /// The best (lowest-wirelength) surviving run's outcome.
    pub best: MctsOutcome,
    /// Final wirelength of every *surviving* run, in run order.
    pub run_wirelengths: Vec<f64>,
    /// Indices of workers that panicked and were dropped (empty on a clean
    /// run). The flow surfaces these as degradation events.
    pub panicked_runs: Vec<usize>,
}

/// Runs the ensemble across `config.runs` threads.
///
/// Run 0 uses zero noise (the deterministic single-search result), so a
/// full-strength ensemble can only improve on [`MctsPlacer::place`].
///
/// # Errors
///
/// [`EnsembleError::NoRuns`] when `config.runs == 0`;
/// [`EnsembleError::AllWorkersPanicked`] when no worker survives. A
/// partial loss is *not* an error — see
/// [`EnsembleOutcome::panicked_runs`].
pub fn place_ensemble(
    trainer: &Trainer<'_>,
    agent: &Agent,
    scale: &RewardScale,
    config: &EnsembleConfig,
) -> Result<EnsembleOutcome, EnsembleError> {
    place_ensemble_with_deadline(trainer, agent, scale, config, None)
}

/// [`place_ensemble`] with a shared wall-clock deadline: every worker
/// degrades independently (best-so-far commits, then policy-greedy — see
/// [`MctsPlacer::place_with_ctx_deadline`]), so the ensemble still returns
/// a complete assignment when the deadline expires mid-search.
///
/// # Errors
///
/// See [`place_ensemble`].
pub fn place_ensemble_with_deadline(
    trainer: &Trainer<'_>,
    agent: &Agent,
    scale: &RewardScale,
    config: &EnsembleConfig,
    deadline: Option<Instant>,
) -> Result<EnsembleOutcome, EnsembleError> {
    if config.runs == 0 {
        return Err(EnsembleError::NoRuns);
    }
    // Runs fan out over the deterministic pool (fixed partition of the run
    // indices; inline when the pool has one worker). Each run is
    // *supervised*: the catch_unwind wraps the run body inside the task, so
    // a panicking run resolves to `None` and is dropped from the quorum. A
    // panic that escapes the supervision — the pool's own fault-injection
    // knob, used by the poisoned-pool scenario — surfaces as a typed pool
    // error instead, which downgrades to the all-workers-lost error here.
    let fault = config.fault_panic_worker;
    let outcomes: Vec<Option<MctsOutcome>> = config
        .pool
        .try_run(config.runs, |k| {
            // Workers share the read-only agent; each brings only a private
            // scratch context (no network clone per worker).
            let mut cfg = config.base.clone();
            if k > 0 {
                cfg.prior_noise = config.noise.max(1e-3);
                cfg.noise_seed = config.seed.wrapping_add(k as u64);
            } else {
                cfg.prior_noise = 0.0;
            }
            // Only run 0 (the deterministic baseline) carries the handle:
            // events from concurrent workers would interleave
            // nondeterministically in the trace.
            let obs = if k == 0 {
                config.obs.clone()
            } else {
                Obs::off()
            };
            catch_unwind(AssertUnwindSafe(|| {
                if fault == Some(k) {
                    panic!("injected ensemble worker fault (run {k})");
                }
                let placer = MctsPlacer::new(cfg).with_obs(obs);
                let mut ctx = InferenceCtx::new();
                placer.place_with_ctx_deadline(trainer, agent, scale, &mut ctx, deadline)
            }))
            .ok()
        })
        .map_err(|_pool_panic| EnsembleError::AllWorkersPanicked { runs: config.runs })?;

    let mut panicked_runs = Vec::new();
    let mut survivors: Vec<MctsOutcome> = Vec::new();
    for (k, slot) in outcomes.into_iter().enumerate() {
        match slot {
            Some(o) => survivors.push(o),
            None => panicked_runs.push(k),
        }
    }
    if survivors.is_empty() {
        return Err(EnsembleError::AllWorkersPanicked { runs: config.runs });
    }
    let run_wirelengths: Vec<f64> = survivors.iter().map(|o| o.wirelength).collect();
    // NaN-sane: a poisoned wirelength sorts above every real score, so it
    // can never win.
    let sane = |w: f64| if w.is_nan() { f64::INFINITY } else { w };
    // why: invariant, not input: the caller guarantees at least one survivor
    #[allow(clippy::expect_used)]
    let best = survivors
        .into_iter()
        .min_by(|a, b| sane(a.wirelength).total_cmp(&sane(b.wirelength)))
        .expect("at least one surviving run");
    if config.obs.enabled() {
        config
            .obs
            .count("mcts.ensemble_runs", run_wirelengths.len() as u64);
        if !panicked_runs.is_empty() {
            config
                .obs
                .count("mcts.ensemble_panics", panicked_runs.len() as u64);
        }
        if config.obs.tracing() {
            let best_run = run_wirelengths
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| sane(**a).total_cmp(&sane(**b)))
                .map(|(i, _)| i)
                .unwrap_or(0);
            config.obs.event(
                "mcts.ensemble",
                "done",
                &[
                    field("runs", run_wirelengths.len()),
                    field("panicked", panicked_runs.len()),
                    field("best_run", best_run),
                    field("best_wirelength", best.wirelength),
                ],
            );
        }
    }
    Ok(EnsembleOutcome {
        best,
        run_wirelengths,
        panicked_runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_netlist::SyntheticSpec;
    use mmp_rl::TrainerConfig;

    fn setup() -> (mmp_netlist::Design, TrainerConfig) {
        let d = SyntheticSpec::small("ens", 7, 0, 8, 60, 100, false, 5).generate();
        let mut cfg = TrainerConfig::tiny(4);
        cfg.episodes = 4;
        (d, cfg)
    }

    #[test]
    fn ensemble_never_loses_to_single_search() {
        let (d, cfg) = setup();
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let single = MctsPlacer::new(MctsConfig {
            explorations: 12,
            ..MctsConfig::default()
        })
        .place(&trainer, &out.agent, &out.scale);
        let ens = place_ensemble(
            &trainer,
            &out.agent,
            &out.scale,
            &EnsembleConfig {
                runs: 3,
                base: MctsConfig {
                    explorations: 12,
                    ..MctsConfig::default()
                },
                ..EnsembleConfig::default()
            },
        )
        .unwrap();
        assert!(ens.best.wirelength <= single.wirelength + 1e-9);
        assert_eq!(ens.run_wirelengths.len(), 3);
        assert!(ens.panicked_runs.is_empty());
        // Run 0 is the noise-free search.
        assert_eq!(ens.run_wirelengths[0], single.wirelength);
    }

    #[test]
    fn ensemble_is_deterministic() {
        let (d, cfg) = setup();
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let config = EnsembleConfig {
            runs: 3,
            base: MctsConfig {
                explorations: 8,
                ..MctsConfig::default()
            },
            ..EnsembleConfig::default()
        };
        let a = place_ensemble(&trainer, &out.agent, &out.scale, &config).unwrap();
        let b = place_ensemble(&trainer, &out.agent, &out.scale, &config).unwrap();
        assert_eq!(a.run_wirelengths, b.run_wirelengths);
        assert_eq!(a.best.assignment, b.best.assignment);
    }

    #[test]
    fn zero_runs_is_a_typed_error() {
        let (d, cfg) = setup();
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let err = place_ensemble(
            &trainer,
            &out.agent,
            &out.scale,
            &EnsembleConfig {
                runs: 0,
                ..EnsembleConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, EnsembleError::NoRuns);
        assert!(err.to_string().contains("at least one run"));
    }

    #[test]
    fn panicked_worker_is_dropped_and_quorum_survives() {
        let (d, cfg) = setup();
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let config = EnsembleConfig {
            runs: 3,
            base: MctsConfig {
                explorations: 8,
                ..MctsConfig::default()
            },
            fault_panic_worker: Some(1),
            ..EnsembleConfig::default()
        };
        let ens = place_ensemble(&trainer, &out.agent, &out.scale, &config).unwrap();
        assert_eq!(ens.panicked_runs, vec![1]);
        assert_eq!(ens.run_wirelengths.len(), 2, "two survivors of three");
        assert!(ens.best.wirelength.is_finite() && ens.best.wirelength > 0.0);
        // The degraded ensemble is still deterministic.
        let again = place_ensemble(&trainer, &out.agent, &out.scale, &config).unwrap();
        assert_eq!(ens.run_wirelengths, again.run_wirelengths);
        assert_eq!(ens.best.assignment, again.best.assignment);
    }

    #[test]
    fn losing_a_noisy_worker_does_not_change_the_survivors() {
        // Worker k's noise seed depends only on k, never on which other
        // workers are alive — killing worker 2 must leave runs 0 and 1
        // byte-identical to the clean ensemble's.
        let (d, cfg) = setup();
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let mut config = EnsembleConfig {
            runs: 3,
            base: MctsConfig {
                explorations: 8,
                ..MctsConfig::default()
            },
            ..EnsembleConfig::default()
        };
        let clean = place_ensemble(&trainer, &out.agent, &out.scale, &config).unwrap();
        config.fault_panic_worker = Some(2);
        let degraded = place_ensemble(&trainer, &out.agent, &out.scale, &config).unwrap();
        assert_eq!(degraded.run_wirelengths, clean.run_wirelengths[..2]);
    }

    #[test]
    fn all_workers_panicking_is_a_typed_error() {
        let (d, cfg) = setup();
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let err = place_ensemble(
            &trainer,
            &out.agent,
            &out.scale,
            &EnsembleConfig {
                runs: 1,
                fault_panic_worker: Some(0),
                ..EnsembleConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, EnsembleError::AllWorkersPanicked { runs: 1 });
    }

    #[test]
    fn multi_worker_pool_matches_single_worker_bitwise() {
        let (d, cfg) = setup();
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let mut config = EnsembleConfig {
            runs: 3,
            base: MctsConfig {
                explorations: 8,
                ..MctsConfig::default()
            },
            ..EnsembleConfig::default()
        };
        let single = place_ensemble(&trainer, &out.agent, &out.scale, &config).unwrap();
        for workers in [2, 4] {
            config.pool = ThreadPool::try_new(workers).unwrap();
            let multi = place_ensemble(&trainer, &out.agent, &out.scale, &config).unwrap();
            assert_eq!(
                multi
                    .run_wirelengths
                    .iter()
                    .map(|w| w.to_bits())
                    .collect::<Vec<_>>(),
                single
                    .run_wirelengths
                    .iter()
                    .map(|w| w.to_bits())
                    .collect::<Vec<_>>(),
                "workers={workers}: run scores drifted from the inline pool"
            );
            assert_eq!(multi.best.assignment, single.best.assignment);
        }
    }

    #[test]
    fn poisoned_pool_is_a_typed_error() {
        // A panic at the *pool* level (outside per-run supervision) must not
        // crash the process or silently drop runs: it is typed as the
        // all-workers-lost ensemble error, deterministically.
        let (d, cfg) = setup();
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let config = EnsembleConfig {
            runs: 3,
            base: MctsConfig {
                explorations: 8,
                ..MctsConfig::default()
            },
            pool: ThreadPool::try_new(2)
                .unwrap()
                .with_fault_panic_worker(Some(1)),
            ..EnsembleConfig::default()
        };
        let err = place_ensemble(&trainer, &out.agent, &out.scale, &config).unwrap_err();
        assert_eq!(err, EnsembleError::AllWorkersPanicked { runs: 3 });
        let again = place_ensemble(&trainer, &out.agent, &out.scale, &config).unwrap_err();
        assert_eq!(err, again);
    }

    #[test]
    fn noisy_runs_explore_different_allocations() {
        let (d, cfg) = setup();
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let ens = place_ensemble(
            &trainer,
            &out.agent,
            &out.scale,
            &EnsembleConfig {
                runs: 4,
                noise: 0.8,
                base: MctsConfig {
                    explorations: 8,
                    ..MctsConfig::default()
                },
                ..EnsembleConfig::default()
            },
        )
        .unwrap();
        // With strong noise, at least two runs should differ in score.
        let first = ens.run_wirelengths[0];
        assert!(
            ens.run_wirelengths.iter().any(|w| (w - first).abs() > 1e-9),
            "all runs identical despite noise: {:?}",
            ens.run_wirelengths
        );
    }
}
