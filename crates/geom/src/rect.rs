//! Axis-aligned rectangles: macro outlines, the chip region, grid cells.

use crate::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle described by its lower-left corner and size.
///
/// All macros, the placement region and individual grid cells are `Rect`s.
/// Invariant: `width >= 0` and `height >= 0` (constructors normalise).
///
/// # Example
///
/// ```
/// use mmp_geom::{Point, Rect};
///
/// let r = Rect::new(10.0, 20.0, 30.0, 40.0);
/// assert_eq!(r.area(), 1200.0);
/// assert_eq!(r.center(), Point::new(25.0, 40.0));
/// assert!(r.contains_point(Point::new(10.0, 20.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rect {
    /// X of the lower-left corner (µm).
    pub x: f64,
    /// Y of the lower-left corner (µm).
    pub y: f64,
    /// Horizontal extent (µm), non-negative.
    pub width: f64,
    /// Vertical extent (µm), non-negative.
    pub height: f64,
}

impl Rect {
    /// Creates a rectangle from its lower-left corner and size.
    ///
    /// Negative sizes are clamped to zero so that the non-negativity
    /// invariant always holds.
    #[inline]
    pub fn new(x: f64, y: f64, width: f64, height: f64) -> Self {
        Rect {
            x,
            y,
            width: width.max(0.0),
            height: height.max(0.0),
        }
    }

    /// Creates a rectangle from two opposite corners, in any order.
    pub fn from_corners(a: Point, b: Point) -> Self {
        let ll = a.min(b);
        let ur = a.max(b);
        Rect::new(ll.x, ll.y, ur.x - ll.x, ur.y - ll.y)
    }

    /// Creates a rectangle of the given size centred on `center`.
    pub fn centered_at(center: Point, width: f64, height: f64) -> Self {
        Rect::new(
            center.x - width / 2.0,
            center.y - height / 2.0,
            width,
            height,
        )
    }

    /// Lower-left corner.
    #[inline]
    pub fn lower_left(&self) -> Point {
        Point::new(self.x, self.y)
    }

    /// Upper-right corner.
    #[inline]
    pub fn upper_right(&self) -> Point {
        Point::new(self.x + self.width, self.y + self.height)
    }

    /// Geometric centre.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(self.x + self.width / 2.0, self.y + self.height / 2.0)
    }

    /// Area in µm².
    #[inline]
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// `true` when the rectangle has zero area.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.width == 0.0 || self.height == 0.0
    }

    /// Right edge X coordinate.
    #[inline]
    pub fn right(&self) -> f64 {
        self.x + self.width
    }

    /// Top edge Y coordinate.
    #[inline]
    pub fn top(&self) -> f64 {
        self.y + self.height
    }

    /// `true` when `p` lies inside the rectangle (closed on all edges).
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.x && p.x <= self.right() && p.y >= self.y && p.y <= self.top()
    }

    /// `true` when `other` lies fully inside `self` (closed comparison).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.x >= self.x - 1e-9
            && other.y >= self.y - 1e-9
            && other.right() <= self.right() + 1e-9
            && other.top() <= self.top() + 1e-9
    }

    /// `true` when the *open interiors* of the two rectangles intersect.
    ///
    /// Edge-sharing rectangles do **not** overlap; this is the test the
    /// legalizer uses to certify an overlap-free macro placement.
    #[inline]
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x < other.right()
            && other.x < self.right()
            && self.y < other.top()
            && other.y < self.top()
    }

    /// The intersection rectangle, or `None` when interiors are disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.overlaps(other) {
            return None;
        }
        let ll = self.lower_left().max(other.lower_left());
        let ur = self.upper_right().min(other.upper_right());
        Some(Rect::from_corners(ll, ur))
    }

    /// Area of the intersection (zero when disjoint).
    #[inline]
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let w = (self.right().min(other.right()) - self.x.max(other.x)).max(0.0);
        let h = (self.top().min(other.top()) - self.y.max(other.y)).max(0.0);
        w * h
    }

    /// Smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::from_corners(
            self.lower_left().min(other.lower_left()),
            self.upper_right().max(other.upper_right()),
        )
    }

    /// The same rectangle translated by `(dx, dy)`.
    #[inline]
    pub fn translated(&self, dx: f64, dy: f64) -> Rect {
        Rect::new(self.x + dx, self.y + dy, self.width, self.height)
    }

    /// The same outline moved so its lower-left corner is `ll`.
    #[inline]
    pub fn at(&self, ll: Point) -> Rect {
        Rect::new(ll.x, ll.y, self.width, self.height)
    }

    /// The same outline moved so its centre is `c`.
    #[inline]
    pub fn centered_on(&self, c: Point) -> Rect {
        Rect::centered_at(c, self.width, self.height)
    }

    /// Clamps the rectangle's position so it lies inside `bounds`.
    ///
    /// When the rectangle is larger than `bounds` in a dimension it is
    /// aligned to the lower/left edge of `bounds` in that dimension.
    pub fn clamped_inside(&self, bounds: &Rect) -> Rect {
        let x = if self.width >= bounds.width {
            bounds.x
        } else {
            self.x.clamp(bounds.x, bounds.right() - self.width)
        };
        let y = if self.height >= bounds.height {
            bounds.y
        } else {
            self.y.clamp(bounds.y, bounds.top() - self.height)
        };
        Rect::new(x, y, self.width, self.height)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} .. {}] x [{} .. {}]",
            self.x,
            self.right(),
            self.y,
            self.top()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn corners_and_center() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(r.lower_left(), Point::new(1.0, 2.0));
        assert_eq!(r.upper_right(), Point::new(4.0, 6.0));
        assert_eq!(r.center(), Point::new(2.5, 4.0));
        assert_eq!(r.area(), 12.0);
    }

    #[test]
    fn from_corners_normalizes_order() {
        let a = Rect::from_corners(Point::new(4.0, 6.0), Point::new(1.0, 2.0));
        let b = Rect::from_corners(Point::new(1.0, 2.0), Point::new(4.0, 6.0));
        assert_eq!(a, b);
        assert_eq!(a, Rect::new(1.0, 2.0, 3.0, 4.0));
    }

    #[test]
    fn negative_sizes_clamp_to_zero() {
        let r = Rect::new(0.0, 0.0, -5.0, -1.0);
        assert_eq!(r.width, 0.0);
        assert_eq!(r.height, 0.0);
        assert!(r.is_empty());
    }

    #[test]
    fn edge_sharing_rects_do_not_overlap() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(10.0, 0.0, 10.0, 10.0);
        assert!(!a.overlaps(&b));
        assert_eq!(a.overlap_area(&b), 0.0);
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn overlapping_rects_intersection() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(5.0, 5.0, 10.0, 10.0);
        assert!(a.overlaps(&b));
        let i = a.intersection(&b).expect("overlap");
        assert_eq!(i, Rect::new(5.0, 5.0, 5.0, 5.0));
        assert_eq!(a.overlap_area(&b), 25.0);
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(5.0, 5.0, 1.0, 1.0);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, Rect::new(0.0, 0.0, 6.0, 6.0));
    }

    #[test]
    fn clamp_keeps_rect_inside() {
        let bounds = Rect::new(0.0, 0.0, 100.0, 100.0);
        let r = Rect::new(95.0, -20.0, 10.0, 10.0);
        let c = r.clamped_inside(&bounds);
        assert!(bounds.contains_rect(&c));
        assert_eq!(c, Rect::new(90.0, 0.0, 10.0, 10.0));
    }

    #[test]
    fn clamp_oversized_aligns_to_origin_of_bounds() {
        let bounds = Rect::new(10.0, 10.0, 5.0, 5.0);
        let r = Rect::new(0.0, 0.0, 50.0, 50.0);
        let c = r.clamped_inside(&bounds);
        assert_eq!(c.lower_left(), bounds.lower_left());
    }

    #[test]
    fn centered_constructors_agree() {
        let c = Point::new(7.0, 9.0);
        let a = Rect::centered_at(c, 4.0, 6.0);
        let b = Rect::new(0.0, 0.0, 4.0, 6.0).centered_on(c);
        assert_eq!(a, b);
        assert_eq!(a.center(), c);
    }

    proptest! {
        #[test]
        fn overlap_area_is_symmetric(ax in -100f64..100.0, ay in -100f64..100.0,
                                     aw in 0f64..50.0, ah in 0f64..50.0,
                                     bx in -100f64..100.0, by in -100f64..100.0,
                                     bw in 0f64..50.0, bh in 0f64..50.0) {
            let a = Rect::new(ax, ay, aw, ah);
            let b = Rect::new(bx, by, bw, bh);
            prop_assert!((a.overlap_area(&b) - b.overlap_area(&a)).abs() < 1e-9);
        }

        #[test]
        fn overlap_area_bounded_by_min_area(ax in -100f64..100.0, ay in -100f64..100.0,
                                            aw in 0f64..50.0, ah in 0f64..50.0,
                                            bx in -100f64..100.0, by in -100f64..100.0,
                                            bw in 0f64..50.0, bh in 0f64..50.0) {
            let a = Rect::new(ax, ay, aw, ah);
            let b = Rect::new(bx, by, bw, bh);
            prop_assert!(a.overlap_area(&b) <= a.area().min(b.area()) + 1e-9);
        }

        #[test]
        fn translation_preserves_area(x in -100f64..100.0, y in -100f64..100.0,
                                      w in 0f64..50.0, h in 0f64..50.0,
                                      dx in -10f64..10.0, dy in -10f64..10.0) {
            let r = Rect::new(x, y, w, h);
            prop_assert!((r.translated(dx, dy).area() - r.area()).abs() < 1e-9);
        }

        #[test]
        fn clamped_rect_is_inside_when_it_fits(x in -500f64..500.0, y in -500f64..500.0,
                                               w in 0f64..99.0, h in 0f64..99.0) {
            let bounds = Rect::new(0.0, 0.0, 100.0, 100.0);
            let c = Rect::new(x, y, w, h).clamped_inside(&bounds);
            prop_assert!(bounds.contains_rect(&c));
        }
    }
}
