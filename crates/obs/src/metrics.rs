//! The metrics registry: counters, gauges and duration histograms.
//!
//! Metrics are process-local and keyed by `&'static str`, so the hot-path
//! update never allocates; one uncontended mutex per metric kind guards
//! the maps (updates only happen when the handle is enabled, so the
//! disabled flow never touches a lock). A [`MetricsSnapshot`] taken at the
//! end of a run feeds the JSON run report.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Running aggregate of one duration histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub total: Duration,
    /// Smallest sample ([`Duration::ZERO`] when empty).
    pub min: Duration,
    /// Largest sample ([`Duration::ZERO`] when empty).
    pub max: Duration,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            total: Duration::ZERO,
            min: Duration::ZERO,
            max: Duration::ZERO,
        }
    }
}

impl HistogramSnapshot {
    fn record(&mut self, d: Duration) {
        if self.count == 0 || d < self.min {
            self.min = d;
        }
        if d > self.max {
            self.max = d;
        }
        self.count += 1;
        self.total += d;
    }

    /// Mean sample duration ([`Duration::ZERO`] when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.count).unwrap_or(u32::MAX)
        }
    }
}

/// The registry behind an enabled [`crate::Obs`] handle.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    histograms: Mutex<BTreeMap<&'static str, HistogramSnapshot>>,
}

/// A poisoned metrics mutex means another thread panicked mid-update;
/// observability must never turn that into a second panic, so we keep the
/// (still structurally sound) data.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Metrics {
    /// Adds `delta` to counter `name` (creating it at 0).
    pub fn count(&self, name: &'static str, delta: u64) {
        let mut map = lock(&self.counters);
        let c = map.entry(name).or_insert(0);
        *c = c.saturating_add(delta);
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &'static str, value: f64) {
        lock(&self.gauges).insert(name, value);
    }

    /// Records one sample in histogram `name`.
    pub fn record_duration(&self, name: &'static str, d: Duration) {
        lock(&self.histograms).entry(name).or_default().record(d);
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Metrics`] registry, detached from the
/// `'static` keys so it can be stored, merged and serialized freely.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram aggregates by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter `name`, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Gauge `name`, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let m = Metrics::default();
        m.count("a", 1);
        m.count("a", 2);
        m.count("b", u64::MAX);
        m.count("b", 10);
        let s = m.snapshot();
        assert_eq!(s.counter("a"), Some(3));
        assert_eq!(s.counter("b"), Some(u64::MAX));
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn gauges_take_the_last_write() {
        let m = Metrics::default();
        m.gauge("hpwl", 10.0);
        m.gauge("hpwl", 8.5);
        assert_eq!(m.snapshot().gauge("hpwl"), Some(8.5));
    }

    #[test]
    fn histograms_track_count_sum_min_max_mean() {
        let m = Metrics::default();
        m.record_duration("d", Duration::from_micros(10));
        m.record_duration("d", Duration::from_micros(30));
        m.record_duration("d", Duration::from_micros(20));
        let s = m.snapshot();
        let h = s.histogram("d").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.total, Duration::from_micros(60));
        assert_eq!(h.min, Duration::from_micros(10));
        assert_eq!(h.max, Duration::from_micros(30));
        assert_eq!(h.mean(), Duration::from_micros(20));
        assert_eq!(HistogramSnapshot::default().mean(), Duration::ZERO);
    }

    #[test]
    fn concurrent_updates_are_safe() {
        let m = std::sync::Arc::new(Metrics::default());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.count("n", 1);
                    }
                });
            }
        });
        assert_eq!(m.snapshot().counter("n"), Some(4000));
    }
}
