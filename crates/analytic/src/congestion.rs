//! RUDY congestion estimation (Spindler & Johannes).
//!
//! RUDY (Rectangular Uniform wire DensitY) spreads each net's expected
//! wire volume uniformly over its bounding box: a net with half-perimeter
//! `w + h` over box area `w·h` contributes density `(w + h)/(w·h)` to every
//! point it covers. Summed over nets on a bin grid this is the standard
//! cheap routability proxy — the paper's related work (routability-driven
//! placers) motivates tracking it alongside HPWL.

use mmp_geom::{BoundingBox, Rect};
use mmp_netlist::{Design, Placement};

/// A congestion map over `bins × bins` uniform bins.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionMap {
    bins: usize,
    /// Row-major densities (dimensionless wire-volume per unit area).
    density: Vec<f64>,
}

impl CongestionMap {
    /// Bin grid resolution.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Density of bin `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn at(&self, col: usize, row: usize) -> f64 {
        assert!(col < self.bins && row < self.bins, "bin out of range");
        self.density[row * self.bins + col]
    }

    /// Flat row-major view of the map.
    pub fn as_slice(&self) -> &[f64] {
        &self.density
    }

    /// Maximum bin density — the headline congestion figure.
    pub fn peak(&self) -> f64 {
        self.density.iter().fold(0.0f64, |m, &d| m.max(d))
    }

    /// Mean bin density.
    pub fn mean(&self) -> f64 {
        if self.density.is_empty() {
            0.0
        } else {
            // mmp-lint: allow(float-reduction) why: sequential sum over the bin slice, order fixed by construction
            self.density.iter().sum::<f64>() / self.density.len() as f64
        }
    }
}

/// Computes the RUDY map of `placement` over `bins × bins` bins.
///
/// Single-pin nets and empty boxes contribute nothing; degenerate
/// (zero-width or zero-height) boxes fall back to a thin box one bin wide
/// so straight wires still register.
///
/// # Panics
///
/// Panics when `bins == 0`.
pub fn rudy(design: &Design, placement: &Placement, bins: usize) -> CongestionMap {
    assert!(bins > 0, "need at least one bin");
    let region = *design.region();
    let bw = region.width / bins as f64;
    let bh = region.height / bins as f64;
    let mut density = vec![0.0f64; bins * bins];

    for net in design.nets() {
        let mut bb = BoundingBox::empty();
        for pin in &net.pins {
            bb.extend(placement.pin_position(design, pin.node, pin.offset));
        }
        if bb.len() < 2 || bb.half_perimeter() <= 0.0 {
            continue;
        }
        let (Some(min), Some(max)) = (bb.min(), bb.max()) else {
            continue; // unreachable: bb.len() >= 2 checked above
        };
        // Degenerate boxes: widen to one bin so the wire registers.
        let net_rect = Rect::new(
            min.x,
            min.y,
            (max.x - min.x).max(bw),
            (max.y - min.y).max(bh),
        );
        let wire = net.weight * bb.half_perimeter();
        let rho = wire / net_rect.area();
        // Spread ρ over covered bins, proportional to overlap area.
        let c0 = (((net_rect.x - region.x) / bw).floor().max(0.0)) as usize;
        let r0 = (((net_rect.y - region.y) / bh).floor().max(0.0)) as usize;
        let c1 = ((((net_rect.right() - region.x) / bw).ceil() as usize).max(1) - 1).min(bins - 1);
        let r1 = ((((net_rect.top() - region.y) / bh).ceil() as usize).max(1) - 1).min(bins - 1);
        for r in r0..=r1 {
            for c in c0..=c1 {
                let bin = Rect::new(region.x + c as f64 * bw, region.y + r as f64 * bh, bw, bh);
                let overlap = bin.overlap_area(&net_rect);
                if overlap > 0.0 {
                    density[r * bins + c] += rho * overlap / bin.area();
                }
            }
        }
    }
    CongestionMap { bins, density }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_geom::Point;
    use mmp_netlist::{DesignBuilder, NodeRef, SyntheticSpec};

    #[test]
    fn empty_design_has_zero_congestion() {
        let d = DesignBuilder::new("e", Rect::new(0.0, 0.0, 10.0, 10.0))
            .build()
            .unwrap();
        let map = rudy(&d, &Placement::initial(&d), 4);
        assert_eq!(map.peak(), 0.0);
        assert_eq!(map.mean(), 0.0);
        assert_eq!(map.bins(), 4);
    }

    #[test]
    fn single_net_density_lands_in_its_bbox() {
        let mut b = DesignBuilder::new("n", Rect::new(0.0, 0.0, 100.0, 100.0));
        let p0 = b.add_pad("p0", Point::new(10.0, 10.0));
        let p1 = b.add_pad("p1", Point::new(40.0, 40.0));
        b.add_net(
            "n",
            [
                (NodeRef::Pad(p0), Point::ORIGIN),
                (NodeRef::Pad(p1), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        let d = b.build().unwrap();
        let map = rudy(&d, &Placement::initial(&d), 10);
        // The bbox covers bins (1..4, 1..4); a far corner bin must read 0.
        assert!(map.at(2, 2) > 0.0);
        assert_eq!(map.at(9, 9), 0.0);
    }

    #[test]
    fn clumped_placement_is_more_congested_than_spread() {
        let d = SyntheticSpec::small("cg", 6, 0, 8, 80, 140, false, 8).generate();
        // Spread: the analytical placement.
        let spread = crate::GlobalPlacer::new(crate::GlobalPlacerConfig::fast()).place_mixed(&d);
        // Clump: everything at the center.
        let clumped = Placement::initial(&d);
        let peak_spread = rudy(&d, &spread, 8).peak();
        let peak_clumped = rudy(&d, &clumped, 8).peak();
        assert!(
            peak_clumped > peak_spread,
            "clumped {peak_clumped} should exceed spread {peak_spread}"
        );
    }

    #[test]
    fn degenerate_straight_nets_still_register() {
        let mut b = DesignBuilder::new("s", Rect::new(0.0, 0.0, 100.0, 100.0));
        let p0 = b.add_pad("p0", Point::new(10.0, 50.0));
        let p1 = b.add_pad("p1", Point::new(90.0, 50.0)); // same y: zero-height box
        b.add_net(
            "n",
            [
                (NodeRef::Pad(p0), Point::ORIGIN),
                (NodeRef::Pad(p1), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        let d = b.build().unwrap();
        let map = rudy(&d, &Placement::initial(&d), 10);
        assert!(map.peak() > 0.0, "straight wire must register");
    }

    #[test]
    fn net_weight_scales_density() {
        let build = |w: f64| {
            let mut b = DesignBuilder::new("w", Rect::new(0.0, 0.0, 100.0, 100.0));
            let p0 = b.add_pad("p0", Point::new(10.0, 10.0));
            let p1 = b.add_pad("p1", Point::new(60.0, 60.0));
            b.add_net(
                "n",
                [
                    (NodeRef::Pad(p0), Point::ORIGIN),
                    (NodeRef::Pad(p1), Point::ORIGIN),
                ],
                w,
            )
            .unwrap();
            b.build().unwrap()
        };
        let d1 = build(1.0);
        let d2 = build(2.0);
        let m1 = rudy(&d1, &Placement::initial(&d1), 8);
        let m2 = rudy(&d2, &Placement::initial(&d2), 8);
        assert!((m2.peak() - 2.0 * m1.peak()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let d = SyntheticSpec::small("z", 2, 0, 4, 10, 20, false, 9).generate();
        let _ = rudy(&d, &Placement::initial(&d), 0);
    }
}
