//! `mmp-lint` — workspace static analysis for determinism and
//! stage-invariant conventions.
//!
//! The placement flow (RL pre-training → PUCT-guided MCTS → legalization)
//! is only reproducible if every stage is bitwise deterministic. The
//! conventions that guarantee it — seeded vendored RNG only, `total_cmp`
//! instead of `partial_cmp().unwrap()`, no hash-order-dependent
//! iteration, no wall-clock reads outside the budget/obs layers — cannot
//! all be expressed as clippy lints, so this crate machine-enforces them
//! with a hand-rolled, dependency-free lexer (see [`lexer`]).
//!
//! # Rules
//!
//! | id | scope | enforces |
//! |----|-------|----------|
//! | `hash-order` (R1)  | decision crates | no `HashMap`/`HashSet` whose order could reach decisions |
//! | `partial-cmp` (R2) | all crates | `f64::total_cmp` instead of `partial_cmp` |
//! | `wallclock` (R3)   | all but budget/obs/bench | no `Instant::now`/`SystemTime::now` |
//! | `rng-source` (R4)  | all crates | no `thread_rng`/`rand::random`/`RandomState` |
//! | `allow-why` (R5)   | all crates | `#[allow(..)]` of a denied lint carries a `why:` |
//! | `parallelism` (R6) | all but pool/bench | no `available_parallelism`-derived partitioning |
//! | `fs-route` (R7)    | ckpt/serve lib code | fs mutations only through the `mmp-vfs` chokepoint |
//! | `panic-path` (R8)  | library crates | panic sites, ranked by call-chain reachability from the flow entrypoints |
//! | `float-reduction` (R9) | all but pool/bench | no unpinned-order float accumulation outside the pool's fixed-chunk reductions |
//! | `cast-truncation` (R10) | geom/netlist/legal | no bare lossy `as` casts in index/coordinate math |
//! | `suppression`      | all crates | suppression comments parse, justify, and bite |
//!
//! R1–R7 are token-local. R8–R10 are semantic: the engine first parses
//! every file into an item table ([`items`]), builds an approximate
//! intra-workspace call graph ([`graph`]), and only then scans — which
//! is how R8 findings carry a shortest call chain from the serving/flow
//! entrypoints (`Daemon::serve`, `MacroPlacer::place`, `Trainer::train`).
//!
//! # Baseline + ratchet
//!
//! Pre-existing findings are grandfathered in `lint.baseline.json`
//! (committed at the workspace root). `mmp-lint check --deny-new` fails
//! only on findings *not* covered by the baseline, so the count can
//! ratchet down but never up; `--update-baseline` regenerates the file
//! (see [`baseline`] for the key scheme and the regeneration policy).
//!
//! # Suppressions
//!
//! A finding is silenced in-source by a plain line comment on the same
//! line or the line directly above, of the form
//!
//! ```text
//! // mmp-lint: allow(hash-order) why: lookup table only, never iterated
//! ```
//!
//! The `why:` text is mandatory and must be non-empty; a malformed,
//! unknown-rule, or unused suppression is itself a (non-suppressible)
//! finding, so stale directives cannot accumulate.

pub mod baseline;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod rules;

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{
    ALLOW_WHY, CAST_TRUNCATION, FLOAT_REDUCTION, FS_ROUTE, HASH_ORDER, PANIC_PATH, PARALLELISM,
    PARTIAL_CMP, RNG_SOURCE, RULES, SUPPRESSION, WALLCLOCK,
};

/// What the engine enforces where. [`LintConfig::default`] encodes this
/// workspace's conventions; tests construct narrower configs.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crate directory names (under `crates/`) whose code makes or feeds
    /// placement decisions — the `hash-order` rule applies only here.
    pub decision_crates: Vec<String>,
    /// Path prefixes (workspace-relative, `/`-separated) where wall-clock
    /// reads are sanctioned: the budget/obs timing layers and the bench
    /// harness edge.
    pub wallclock_sanctioned: Vec<String>,
    /// Lints that CI denies; `#[allow(..)]`-ing one needs a `why:`.
    pub denied_lints: Vec<String>,
    /// Path prefixes where `available_parallelism` is sanctioned: the
    /// deterministic pool crate (which must never call it for partitioning,
    /// but may reference it in docs/validation) and the bench harness edge
    /// (machine reporting only). Everywhere else the worker count must come
    /// from explicit configuration.
    pub parallelism_sanctioned: Vec<String>,
    /// Path prefixes whose library code must route every filesystem
    /// mutation through the `mmp-vfs` chokepoint (`fs-route` rule): the
    /// checkpoint and serving crates, whose durable writes the torture
    /// harness must be able to intercept. Unit-test modules are exempt.
    pub fs_route_scoped: Vec<String>,
    /// Crate directory names (under `crates/`) whose library code the
    /// `panic-path` rule scans. Binary roots (`main.rs`, `src/bin/`)
    /// and unit tests are exempt everywhere: a CLI may panic on broken
    /// invariants, a library must not.
    pub panic_path_scoped: Vec<String>,
    /// Path prefixes where unpinned-order float accumulation is
    /// sanctioned: the pool crate (it *implements* the fixed-chunk
    /// reductions) and the bench harness edge.
    pub float_sanctioned: Vec<String>,
    /// Path prefixes the `cast-truncation` rule scans: the crates doing
    /// index/coordinate arithmetic where a silent wrap corrupts
    /// geometry instead of crashing.
    pub cast_scoped: Vec<String>,
    /// Entrypoint suffixes for R8 reachability, matched against
    /// qualified item names (`Server::serve` matches
    /// `mmp_serve::daemon::Server::serve`).
    pub entrypoints: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        let s = |v: &[&str]| v.iter().map(|x| (*x).to_owned()).collect();
        LintConfig {
            decision_crates: s(&[
                "analytic", "cluster", "core", "legal", "mcts", "netlist", "rl",
            ]),
            wallclock_sanctioned: s(&[
                "crates/obs/src",
                "crates/core/src/budget.rs",
                "crates/bench/src",
                // The daemon's single clock chokepoint: queue-wait spans
                // and nothing else (placement decisions never see it).
                "crates/serve/src/clock.rs",
            ]),
            denied_lints: s(&[
                "clippy::disallowed_methods",
                "clippy::unwrap_used",
                "clippy::expect_used",
                "clippy::print_stdout",
                "clippy::print_stderr",
            ]),
            parallelism_sanctioned: s(&["crates/pool/src", "crates/bench/src"]),
            fs_route_scoped: s(&["crates/ckpt/src", "crates/serve/src"]),
            panic_path_scoped: s(&[
                "analytic",
                "baselines",
                "ckpt",
                "cluster",
                "core",
                "geom",
                "legal",
                "mcts",
                "netlist",
                "nn",
                "obs",
                "pool",
                "rl",
                "serve",
                "vfs",
            ]),
            float_sanctioned: s(&["crates/pool/src", "crates/bench/src"]),
            cast_scoped: s(&["crates/geom/src", "crates/netlist/src", "crates/legal/src"]),
            entrypoints: s(&[
                // `Daemon::serve` is the paper-facing name; `Server` is
                // the concrete daemon type, and `Server::start` roots
                // the worker_loop → run_job placement path.
                "Daemon::serve",
                "Server::serve",
                "Server::start",
                "MacroPlacer::place",
                "Trainer::train",
            ]),
        }
    }
}

impl LintConfig {
    /// `true` when `path_rel` lives in a decision crate's `src/`.
    pub fn is_decision_crate(&self, path_rel: &str) -> bool {
        self.decision_crates
            .iter()
            .any(|c| path_rel.starts_with(&format!("crates/{c}/src/")))
    }

    /// `true` when `path_rel` is a sanctioned wall-clock module.
    pub fn is_wallclock_sanctioned(&self, path_rel: &str) -> bool {
        self.wallclock_sanctioned
            .iter()
            .any(|p| path_rel.starts_with(p.as_str()))
    }

    /// `true` when `path_rel` may mention `available_parallelism`.
    pub fn is_parallelism_sanctioned(&self, path_rel: &str) -> bool {
        self.parallelism_sanctioned
            .iter()
            .any(|p| path_rel.starts_with(p.as_str()))
    }

    /// `true` when `path_rel` must route fs mutations through `mmp-vfs`.
    pub fn is_fs_route_scoped(&self, path_rel: &str) -> bool {
        self.fs_route_scoped
            .iter()
            .any(|p| path_rel.starts_with(p.as_str()))
    }

    /// `true` when `path_rel` is library code the `panic-path` rule scans.
    pub fn is_panic_path_scoped(&self, path_rel: &str) -> bool {
        self.panic_path_scoped
            .iter()
            .any(|c| path_rel.starts_with(&format!("crates/{c}/src/")))
    }

    /// `true` when `path_rel` may accumulate floats in iterator order.
    pub fn is_float_sanctioned(&self, path_rel: &str) -> bool {
        self.float_sanctioned
            .iter()
            .any(|p| path_rel.starts_with(p.as_str()))
    }

    /// `true` when `path_rel` is in the `cast-truncation` scope.
    pub fn is_cast_scoped(&self, path_rel: &str) -> bool {
        self.cast_scoped
            .iter()
            .any(|p| path_rel.starts_with(p.as_str()))
    }
}

/// One finding, after suppression matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`hash-order`, `partial-cmp`, ...).
    pub rule: String,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Qualified name of the enclosing `fn` item
    /// (`mmp_serve::daemon::Server::serve`); empty outside any item.
    pub item: String,
    /// Site kind within the rule — the matched token for R1–R7,
    /// `unwrap`/`expect`/`panic`/`assert`/`index` for R8,
    /// `sum`/`fold`/`reduce` for R9, the cast target type for R10.
    pub kind: String,
    /// R8 only: shortest call chain from a flow entrypoint to the
    /// enclosing item (entrypoint first, enclosing item last); empty
    /// when unreachable or for other rules.
    pub call_chain: Vec<String>,
    /// `true` when an in-source directive silenced this finding.
    pub suppressed: bool,
    /// The justification text of the matching directive, if suppressed.
    pub why: Option<String>,
    /// `true` when the committed baseline grandfathers this finding
    /// (set by [`baseline::mark`], never by the engine itself).
    pub baselined: bool,
}

/// A parsed `mmp-lint: allow(..) why: ..` directive.
struct Suppression {
    line: usize,
    rules: Vec<String>,
    why: String,
    used: bool,
}

/// Lints one file's source. `path_rel` scopes the crate-sensitive rules,
/// so fixtures can pretend to live anywhere in the workspace. R8 chains
/// only span this one file — use [`lint_files`] for workspace-wide
/// reachability.
pub fn lint_source(path_rel: &str, src: &str, cfg: &LintConfig) -> Vec<Finding> {
    lint_files(&[(path_rel.to_owned(), src.to_owned())], cfg)
}

/// The two-pass engine behind [`lint_source`] and [`lint_workspace`]:
/// pass 1 lexes and item-parses every file and builds the call graph,
/// pass 2 runs the rules and attaches enclosing items, R8 call chains,
/// and suppressions. Findings arrive in file order, sorted by position
/// within each file, and no finding is `baselined` — ratcheting is a
/// separate, explicit step ([`baseline::mark`]).
pub fn lint_files(files: &[(String, String)], cfg: &LintConfig) -> Vec<Finding> {
    let parsed: Vec<(items::ParsedFile, lexer::Lexed)> = files
        .iter()
        .map(|(path_rel, src)| {
            let lexed = lexer::lex(src);
            (items::parse(path_rel, &lexed), lexed)
        })
        .collect();
    let g = graph::CallGraph::build(&parsed, &cfg.entrypoints);

    let mut findings: Vec<Finding> = Vec::new();
    for (fi, ((path_rel, _), (pf, lexed))) in files.iter().zip(&parsed).enumerate() {
        let mut raw = rules::scan(path_rel, lexed, cfg);
        raw.extend(rules::scan_semantic(path_rel, lexed, pf, cfg));
        findings.extend(decorate_and_suppress(path_rel, lexed, pf, fi, &g, raw));
    }
    findings
}

/// Turns one file's raw findings into [`Finding`]s: attributes each to
/// its enclosing item, attaches R8 call chains, and applies the
/// suppression directives from the file's comments.
fn decorate_and_suppress(
    path_rel: &str,
    lexed: &lexer::Lexed,
    pf: &items::ParsedFile,
    file_idx: usize,
    g: &graph::CallGraph,
    raw: Vec<rules::RawFinding>,
) -> Vec<Finding> {
    let mut findings: Vec<Finding> = Vec::new();
    let mut sups: Vec<Suppression> = Vec::new();
    for c in &lexed.comments {
        match parse_directive(&c.text) {
            Directive::None => {}
            Directive::Malformed(msg) => findings.push(Finding {
                rule: SUPPRESSION.to_owned(),
                path: path_rel.to_owned(),
                line: c.line,
                col: 1,
                message: msg,
                item: String::new(),
                kind: String::new(),
                call_chain: Vec::new(),
                suppressed: false,
                why: None,
                baselined: false,
            }),
            Directive::Allow { rules, why } => sups.push(Suppression {
                line: c.line,
                rules,
                why,
                used: false,
            }),
        }
    }

    for f in raw {
        let item_idx = pf.enclosing_item(f.tok);
        let item = item_idx
            .map(|i| pf.items[i].qual.clone())
            .unwrap_or_default();
        let call_chain = if f.rule == PANIC_PATH {
            item_idx
                .and_then(|i| g.chain(file_idx, i))
                .unwrap_or_default()
        } else {
            Vec::new()
        };
        let hit = sups.iter_mut().find(|s| {
            (s.line == f.line || s.line + 1 == f.line) && s.rules.iter().any(|r| r == f.rule)
        });
        let (suppressed, why) = match hit {
            Some(s) => {
                s.used = true;
                (true, Some(s.why.clone()))
            }
            None => (false, None),
        };
        findings.push(Finding {
            rule: f.rule.to_owned(),
            path: path_rel.to_owned(),
            line: f.line,
            col: f.col,
            message: f.message,
            item,
            kind: f.kind,
            call_chain,
            suppressed,
            why,
            baselined: false,
        });
    }

    for s in &sups {
        if !s.used {
            findings.push(Finding {
                rule: SUPPRESSION.to_owned(),
                path: path_rel.to_owned(),
                line: s.line,
                col: 1,
                message: format!(
                    "unused suppression for ({}) — it matches no finding on \
                     this or the next line; remove it",
                    s.rules.join(", ")
                ),
                item: String::new(),
                kind: String::new(),
                call_chain: Vec::new(),
                suppressed: false,
                why: None,
                baselined: false,
            });
        }
    }

    findings
        .sort_by(|a, b| (a.line, a.col, a.rule.as_str()).cmp(&(b.line, b.col, b.rule.as_str())));
    findings
}

enum Directive {
    None,
    Malformed(String),
    Allow { rules: Vec<String>, why: String },
}

/// Parses one comment. Only plain `//` line comments carry directives —
/// doc comments (`///`, `//!`) and block comments never do, so rustdoc
/// can *describe* the syntax without tripping the meta rule.
fn parse_directive(text: &str) -> Directive {
    if !text.starts_with("//") || text.starts_with("///") || text.starts_with("//!") {
        return Directive::None;
    }
    let body = text.trim_start_matches('/').trim_start();
    let Some(rest) = body.strip_prefix("mmp-lint:") else {
        return Directive::None;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Directive::Malformed(
            "malformed mmp-lint directive: expected `mmp-lint: allow(<rule>) why: <text>`"
                .to_owned(),
        );
    };
    let Some(close) = rest.find(')') else {
        return Directive::Malformed(
            "malformed mmp-lint directive: unclosed allow( rule list".to_owned(),
        );
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_owned())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Directive::Malformed(
            "malformed mmp-lint directive: empty allow( ) rule list".to_owned(),
        );
    }
    for r in &rules {
        if r == SUPPRESSION {
            return Directive::Malformed(
                "the suppression meta rule cannot be suppressed".to_owned(),
            );
        }
        if !rules::known_rule(r) {
            return Directive::Malformed(format!(
                "mmp-lint directive names unknown rule `{r}` (known: {})",
                rules::RULES
                    .iter()
                    .map(|(id, _)| *id)
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
    let after = rest[close + 1..].trim_start();
    let Some(why) = after.strip_prefix("why:") else {
        return Directive::Malformed(
            "mmp-lint directive is missing its `why:` justification".to_owned(),
        );
    };
    if why.trim().is_empty() {
        return Directive::Malformed(
            "mmp-lint directive has an empty `why:` justification".to_owned(),
        );
    }
    Directive::Allow {
        rules,
        why: why.trim().to_owned(),
    }
}

/// Lints every `crates/*/src/**/*.rs` under `root` (the workspace
/// checkout). `vendor/` is never walked: the vendored stubs mirror
/// external crates and are not held to project conventions.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree (a missing
/// `crates/` directory, unreadable files).
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in crates_dir.read_dir()? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            crate_dirs.push(entry.path());
        }
    }
    crate_dirs.sort();

    let mut files: Vec<PathBuf> = Vec::new();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();

    let mut sources: Vec<(String, String)> = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&file)?;
        sources.push((rel, src));
    }
    Ok(lint_files(&sources, cfg))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in dir.read_dir()? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Human-readable report: every unsuppressed finding (with its R8 call
/// chain when one exists), then a summary line. Suppressed findings are
/// counted but not listed; baselined findings are listed only when
/// `show_baselined` (plain `check` shows everything, `--deny-new` hides
/// the grandfathered noise).
pub fn render_text(findings: &[Finding], show_baselined: bool) -> String {
    let mut out = String::new();
    let mut unsuppressed = 0usize;
    let mut baselined = 0usize;
    for f in findings {
        if f.suppressed {
            continue;
        }
        unsuppressed += 1;
        if f.baselined {
            baselined += 1;
            if !show_baselined {
                continue;
            }
        }
        let tag = if f.baselined { " (baselined)" } else { "" };
        let _ = writeln!(
            out,
            "{}:{}:{}: [{}] {}{}",
            f.path, f.line, f.col, f.rule, f.message, tag
        );
        if !f.call_chain.is_empty() {
            let _ = writeln!(out, "    via {}", f.call_chain.join(" -> "));
        }
    }
    let _ = writeln!(
        out,
        "mmp-lint: {} finding(s), {} unsuppressed ({} new, {} baselined), {} suppressed",
        findings.len(),
        unsuppressed,
        unsuppressed - baselined,
        baselined,
        findings.len() - unsuppressed
    );
    out
}

/// Machine-readable report. Schema (stable, `version` guards changes):
///
/// ```text
/// {"version":2,"total":N,"unsuppressed":M,"new":K,
///  "findings":[{"rule":"..","path":"..","line":L,"col":C,
///               "message":"..","item":"..","kind":"..",
///               "call_chain":["..",".."],"suppressed":false,
///               "why":null,"baselined":false}, ..]}
/// ```
///
/// v2 (this PR) added `item`, `kind`, `call_chain`, `baselined`, and the
/// top-level `new` count to the v1 shape.
pub fn render_json(findings: &[Finding]) -> String {
    let unsuppressed = findings.iter().filter(|f| !f.suppressed).count();
    let new = findings
        .iter()
        .filter(|f| !f.suppressed && !f.baselined)
        .count();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"version\":2,\"total\":{},\"unsuppressed\":{},\"new\":{},\"findings\":[",
        findings.len(),
        unsuppressed,
        new
    );
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let chain = f
            .call_chain
            .iter()
            .map(|s| json_str(s))
            .collect::<Vec<_>>()
            .join(",");
        let _ = write!(
            out,
            "{{\"rule\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{},\
             \"item\":{},\"kind\":{},\"call_chain\":[{}],\
             \"suppressed\":{},\"why\":{},\"baselined\":{}}}",
            json_str(&f.rule),
            json_str(&f.path),
            f.line,
            f.col,
            json_str(&f.message),
            json_str(&f.item),
            json_str(&f.kind),
            chain,
            f.suppressed,
            match &f.why {
                Some(w) => json_str(w),
                None => "null".to_owned(),
            },
            f.baselined
        );
    }
    out.push_str("]}");
    out
}

/// Escapes a string as a JSON literal (quotes included).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directive_roundtrip() {
        match parse_directive("// mmp-lint: allow(hash-order, wallclock) why: lookup only") {
            Directive::Allow { rules, why } => {
                assert_eq!(rules, vec!["hash-order", "wallclock"]);
                assert_eq!(why, "lookup only");
            }
            _ => panic!("expected Allow"),
        }
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        assert!(matches!(
            parse_directive("/// mmp-lint: allow(hash-order) why: doc example"),
            Directive::None
        ));
    }

    #[test]
    fn missing_why_is_malformed() {
        assert!(matches!(
            parse_directive("// mmp-lint: allow(hash-order)"),
            Directive::Malformed(_)
        ));
        assert!(matches!(
            parse_directive("// mmp-lint: allow(hash-order) why:   "),
            Directive::Malformed(_)
        ));
    }

    #[test]
    fn unknown_rule_is_malformed() {
        assert!(matches!(
            parse_directive("// mmp-lint: allow(no-such-rule) why: x"),
            Directive::Malformed(_)
        ));
    }

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }
}
