//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate provides a
//! self-describing value model ([`Value`]) plus [`Serialize`]/[`Deserialize`]
//! traits and re-exported derive macros. The derive output targets this
//! crate's API, and `serde_json` (the sibling vendor crate) renders/parses
//! [`Value`] as JSON. The encoding matches upstream serde_json closely
//! enough for this workspace's own files (externally tagged enums, structs
//! as maps, newtype structs as their inner value); non-finite floats render
//! as `null` and read back as NaN.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Numeric view of this value, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(u) => Some(*u as f64),
            Value::I64(i) => Some(*i as f64),
            Value::F64(f) => Some(*f),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Signed-integer view of this value, if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::U64(u) => i64::try_from(*u).ok(),
            Value::I64(i) => Some(*i),
            Value::F64(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// Unsigned-integer view of this value, if it fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) => u64::try_from(*i).ok(),
            Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && f.is_finite() => Some(*f as u64),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// An error carrying an arbitrary message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// A required field was absent from a map.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`].
pub trait Serialize {
    /// This value as a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// Conversion from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Looks up `key` in a [`Value::Map`]; `None` for other variants or absent
/// keys. Used by derive-generated code.
pub fn map_get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, val)| val),
        _ => None,
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u).map_err(Error::custom)
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i).map_err(Error::custom)
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(v)?;
        <[T; N]>::try_from(items)
            .map_err(|got| Error::custom(format!("expected {N} elements, got {}", got.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+ ; $len:expr)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) if items.len() == $len => {
                        Ok(($($t::deserialize(&items[$idx])?,)+))
                    }
                    _ => Err(Error::custom(concat!("expected sequence of length ", $len))),
                }
            }
        }
    )+};
}

impl_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4),
);

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn serialize(&self) -> Value {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Map(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
                .collect(),
            _ => Err(Error::custom("expected map")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
                .collect(),
            _ => Err(Error::custom("expected map")),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}
