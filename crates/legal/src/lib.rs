#![warn(missing_docs)]
// Hardened crate: panicking extractors are denied in CI on library code
// (tests and benches may unwrap freely). Justified invariant `expect`s
// carry explicit allows at the call site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
// Structured output goes through mmp_obs; stray prints are denied in CI
// (the obs sinks and bin/ targets are the sanctioned exits).
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

//! Macro legalization for the MMP placer (Sec. II-B of the paper).
//!
//! After RL/MCTS allocates macro groups to grid cells, exact legal macro
//! locations are found in three steps:
//!
//! 1. **Cell-group QP** — cell groups placed by quadratic programming with
//!    macro groups fixed at their grid centers ([`MacroLegalizer::place_cell_groups`](flow::MacroLegalizer::place_cell_groups)).
//! 2. **Macro QP** — groups are decomposed; individual macros placed by QP
//!    with cell groups fixed, each macro confined to its group's grid
//!    ([`MacroLegalizer::place_macros_in_grids`](flow::MacroLegalizer::place_macros_in_grids)).
//! 3. **Overlap removal** — geometric relations are captured by a *sequence
//!    pair* (S⁺, S⁻) [Murata et al.] ([`SequencePair`]); overlaps are removed
//!    while minimising wirelength by a convex piecewise-linear descent over
//!    the sequence-pair constraint graphs ([`optimize_axis`]) — our
//!    equivalent of the LP of Eq. 3 / [Tang et al.] (x and y are solved
//!    independently, as the paper notes).
//!
//! [`MacroLegalizer`] drives all three steps.

pub mod constraint;
pub mod fallback;
pub mod flip;
pub mod flow;
pub mod median;
pub mod refine;
pub mod sequence_pair;
pub mod swap_refine;

pub use constraint::{pack, ConstraintGraph};
pub use fallback::{shelf_pack, ShelfItem, ShelfOutcome, ShelfPlacement};
pub use flip::{optimize_orientations, FlipOutcome};
pub use flow::{LegalizeError, LegalizeOutcome, MacroLegalizer};
pub use median::{optimize_axis, weighted_median, AxisTarget};
pub use refine::{BoundaryRefiner, RefineOutcome};
pub use sequence_pair::{Relation, SequencePair};
pub use swap_refine::{SwapRefineConfig, SwapRefineOutcome, SwapRefiner};
