//! Dense row-major `f32` tensors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense tensor with row-major layout (last axis fastest).
///
/// Activations use NCHW; linear layers use `(N, features)`.
///
/// # Example
///
/// ```
/// use mmp_nn::Tensor;
///
/// let mut t = Tensor::zeros(&[2, 3]);
/// t.set(&[1, 2], 5.0);
/// assert_eq!(t.get(&[1, 2]), 5.0);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length does not match shape"
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the raw data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing storage (buffer
    /// recycling via [`crate::InferenceCtx`]).
    #[inline]
    pub fn into_raw(self) -> Vec<f32> {
        self.data
    }

    /// Changes the shape in place; the element count must be unchanged.
    ///
    /// # Panics
    ///
    /// Panics when the element counts differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        assert_eq!(
            self.data.len(),
            shape.iter().product::<usize>(),
            "data length does not match shape"
        );
        self.shape = shape.to_vec();
    }

    /// Row-major flat offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics on rank or bound violations (debug-friendly; hot paths index
    /// the slice directly).
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (i, (&x, &s)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(x < s, "index {x} out of bound {s} at axis {i}");
            off = off * s + x;
        }
        off
    }

    /// Element at a multi-index.
    pub fn get(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Sets the element at a multi-index.
    pub fn set(&mut self, idx: &[usize], v: f32) {
        let off = self.offset(idx);
        self.data[off] = v;
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics when the element counts differ.
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Elementwise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise in-place scaling.
    pub fn scale(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// Sets every element to zero (gradient reset).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            // mmp-lint: allow(float-reduction) why: sequential sum over the backing slice, order fixed by construction
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// `true` when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ({} elems)", self.shape, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        t.set(&[1, 2, 3], 7.0);
        assert_eq!(t.get(&[1, 2, 3]), 7.0);
        assert_eq!(t.offset(&[1, 2, 3]), 23);
        assert_eq!(t.offset(&[0, 0, 0]), 0);
    }

    #[test]
    #[should_panic(expected = "out of bound")]
    fn out_of_bound_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.get(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn rank_mismatch_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.get(&[0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_check() {
        let _ = Tensor::from_vec(&[2, 2], vec![0.0; 3]);
    }

    #[test]
    fn arithmetic_helpers() {
        let mut a = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(&[2], vec![10.0, 20.0]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[11.0, 22.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[5.5, 11.0]);
        assert_eq!(a.mean(), 8.25);
        a.fill_zero();
        assert_eq!(a.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect());
        let r = t.reshaped(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
    }

    #[test]
    fn into_raw_and_in_place_reshape() {
        let mut t = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect());
        t.reshape_in_place(&[6]);
        assert_eq!(t.shape(), &[6]);
        let raw = t.into_raw();
        assert_eq!(raw, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn in_place_reshape_checks_count() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.reshape_in_place(&[7]);
    }

    #[test]
    fn finiteness_check() {
        let mut t = Tensor::zeros(&[2]);
        assert!(t.is_finite());
        t.set(&[0], f32::NAN);
        assert!(!t.is_finite());
    }
}
