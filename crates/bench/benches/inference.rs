//! Forward-pass throughput of the shared inference engine: one state per
//! call vs batched calls ([`PolicyValueNet::forward_batch`]).
//!
//! Per-state cost is `mean / batch`; states/sec is `batch / mean`. The
//! `paper` group runs the exact Table-I tower (ζ = 16, 128 channels, 10
//! ResBlocks); the `tiny` group gives a fast signal on the same code path.

use criterion::{criterion_group, criterion_main, Criterion};
use mmp_rl::{AgentConfig, InferenceCtx, PolicyValueNet, StateRef};

/// Deterministic occupancy/availability maps for `n` states.
fn states(z2: usize, n: usize) -> Vec<(Vec<f32>, Vec<f32>)> {
    (0..n)
        .map(|k| {
            let s_p: Vec<f32> = (0..z2)
                .map(|i| ((i * 7 + k * 13) % 5) as f32 * 0.2)
                .collect();
            let mut s_a = vec![1.0f32; z2];
            s_a[k % z2] = 0.0;
            (s_p, s_a)
        })
        .collect()
}

fn bench_config(c: &mut Criterion, label: &str, config: AgentConfig, samples: usize) {
    let net = PolicyValueNet::new(config);
    let z2 = config.zeta * config.zeta;
    let mut group = c.benchmark_group(format!("inference/{label}"));
    group.sample_size(samples);
    for batch in [1usize, 8, 32] {
        let data = states(z2, batch);
        let refs: Vec<StateRef<'_>> = data
            .iter()
            .enumerate()
            .map(|(k, (s_p, s_a))| StateRef {
                s_p,
                s_a,
                t: k,
                total: batch,
            })
            .collect();
        let mut ctx = InferenceCtx::new();
        group.bench_function(format!("batch_{batch}"), |b| {
            b.iter(|| criterion::black_box(net.forward_batch(&refs, &mut ctx)))
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    // Fast proxy first, so a watcher gets numbers early.
    bench_config(c, "tiny_z8", AgentConfig::tiny(8), 10);
    // The paper-scale tower of Table I (expensive: ~0.8 GMAC per state).
    bench_config(c, "paper_z16", AgentConfig::paper(), 2);
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
