//! Shared plumbing for the experiment harness.
//!
//! Every table and figure of the paper's evaluation has a binary here
//! (`cargo run --release -p mmp-bench --bin <exp>`) that regenerates it on
//! the synthetic benchmark suites, plus a Criterion bench
//! (`cargo bench -p mmp-bench`) timing the experiment's hot kernel.
//!
//! Two environment variables control cost:
//!
//! * `MMP_SCALE` — circuit scale factor in `(0, 1]` (default `0.002` for
//!   the ICCAD04-like suite, `0.0005` for the industrial-like one whose
//!   originals carry up to 1.1 M cells). `1.0` reproduces published sizes.
//! * `MMP_BUDGET` — multiplier on training episodes / search explorations
//!   (default `1.0`).
//! * `MMP_REPORT_DIR` — when set, every [`run_ours`] call archives its
//!   [`RunReport`] as `<dir>/<circuit>.report.json` next to the bench
//!   output, so a published table row stays traceable to its run.

use mmp_core::{MacroPlacer, PlacementResult, PlacerConfig, RunReport, SyntheticSpec};
use mmp_obs::Obs;
use std::path::PathBuf;

/// Reads a positive float env var with a default.
///
/// The workspace bans `std::env::var` in library code (the observability
/// layer replaced the old `MMP_TRACE` toggles); the bench harness is the
/// sanctioned edge where the environment is read, like the CLI's flags.
// why: the bench harness is the sanctioned env-reading edge
#[allow(clippy::disallowed_methods)]
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(default)
}

/// The report-archival directory, when `MMP_REPORT_DIR` is set and
/// non-empty.
// why: the bench harness is the sanctioned env-reading edge
#[allow(clippy::disallowed_methods)]
pub fn report_dir() -> Option<PathBuf> {
    std::env::var("MMP_REPORT_DIR")
        .ok()
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// The harness scale factor for the ICCAD04-like suite.
pub fn iccad_scale() -> f64 {
    env_f64("MMP_SCALE", 0.002).min(1.0)
}

/// The harness scale factor for the industrial-like suite.
pub fn industrial_scale() -> f64 {
    env_f64("MMP_SCALE", 0.0005).min(1.0)
}

/// The budget multiplier.
pub fn budget() -> f64 {
    env_f64("MMP_BUDGET", 1.0)
}

/// Applies the budget multiplier to a count with a sensible floor.
pub fn scaled_count(base: usize, floor: usize) -> usize {
    ((base as f64 * budget()) as usize).max(floor)
}

/// The harness configuration for "Ours": the paper's flow at bench scale.
pub fn ours_config(zeta: usize) -> PlacerConfig {
    let mut cfg = PlacerConfig::bench(zeta);
    cfg.trainer.episodes = scaled_count(cfg.trainer.episodes, 20);
    cfg.mcts.explorations = scaled_count(cfg.mcts.explorations, 16);
    cfg
}

/// Runs "Ours" on a spec and returns the result.
///
/// When `MMP_REPORT_DIR` is set, the run carries a metrics-only
/// observability handle and its [`RunReport`] is archived as
/// `<dir>/<circuit>.report.json` (best effort: an unwritable directory
/// prints a warning instead of failing the experiment).
///
/// # Panics
///
/// Panics when the flow rejects the design (the synthetic suites are
/// always feasible).
pub fn run_ours(spec: &SyntheticSpec, zeta: usize) -> PlacementResult {
    let design = spec.generate();
    let archive = report_dir();
    let obs = if archive.is_some() {
        Obs::metrics_only()
    } else {
        Obs::off()
    };
    let result = MacroPlacer::new(ours_config(zeta))
        .with_obs(obs.clone())
        .place(&design)
        .expect("synthetic suites are feasible");
    if let Some(dir) = archive {
        let path = dir.join(format!("{}.report.json", spec.name));
        let report = RunReport::new(spec.name.as_str(), &result, &obs.snapshot());
        match report.to_json() {
            Ok(json) => {
                // why: archived reports are best-effort output artifacts, not
                // resumable state, so the bench edge keeps bare `fs::write`
                // under a scoped allow.
                #[allow(clippy::disallowed_methods)]
                if let Err(e) =
                    std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json + "\n"))
                {
                    eprintln!("warning: cannot archive {}: {e}", path.display());
                } else {
                    println!("archived {}", path.display());
                }
            }
            Err(e) => eprintln!("warning: cannot serialize report for {}: {e}", spec.name),
        }
    }
    result
}

/// Pretty-prints one experiment header.
pub fn header(title: &str, detail: &str) {
    println!("================================================================");
    println!("{title}");
    println!("{detail}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_f64_parses_and_defaults() {
        std::env::remove_var("MMP_TEST_VAR");
        assert_eq!(env_f64("MMP_TEST_VAR", 0.5), 0.5);
        std::env::set_var("MMP_TEST_VAR", "0.25");
        assert_eq!(env_f64("MMP_TEST_VAR", 0.5), 0.25);
        std::env::set_var("MMP_TEST_VAR", "-1");
        assert_eq!(env_f64("MMP_TEST_VAR", 0.5), 0.5);
        std::env::set_var("MMP_TEST_VAR", "junk");
        assert_eq!(env_f64("MMP_TEST_VAR", 0.5), 0.5);
        std::env::remove_var("MMP_TEST_VAR");
    }

    #[test]
    fn scaled_count_has_floor() {
        assert!(scaled_count(100, 10) >= 10);
    }
}
