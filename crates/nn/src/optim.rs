//! SGD and Adam optimizers.
//!
//! Optimizers key per-parameter state by *visitation slot*: call
//! [`Optimizer::begin_step`] once, then feed every parameter in a stable
//! order (a network's `visit_params` order is stable by construction).

use crate::layer::Param;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// An optimizer over [`Param`]s.
///
/// ```
/// use mmp_nn::{Linear, Layer, Optimizer, Sgd, Tensor};
///
/// let mut lin = Linear::new(2, 1, 0);
/// let mut opt = Sgd::new(0.1, 0.0);
/// let x = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]);
/// let before = lin.forward(&x, true).as_slice()[0];
/// lin.backward(&Tensor::from_vec(&[1, 1], vec![1.0])); // d loss/d y = 1
/// opt.begin_step();
/// lin.visit_params(&mut |p| opt.update(p));
/// let after = lin.forward(&x, true).as_slice()[0];
/// assert!(after < before, "gradient step must reduce the output");
/// ```
pub trait Optimizer {
    /// Starts a new step (resets the slot counter).
    fn begin_step(&mut self);

    /// Applies the update to one parameter using its accumulated gradient.
    fn update(&mut self, param: &mut Param);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    velocity: Vec<Tensor>,
    slot: usize,
}

impl Sgd {
    /// Creates SGD with the given learning rate and momentum.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
            slot: 0,
        }
    }
}

impl Optimizer for Sgd {
    fn begin_step(&mut self) {
        self.slot = 0;
    }

    fn update(&mut self, param: &mut Param) {
        if self.slot == self.velocity.len() {
            self.velocity.push(Tensor::zeros(param.value.shape()));
        }
        let v = &mut self.velocity[self.slot];
        self.slot += 1;
        let (vs, gs, ps) = (
            v.as_mut_slice(),
            param.grad.as_slice(),
            param.value.shape().to_vec(),
        );
        debug_assert_eq!(&ps[..], param.grad.shape());
        for (vi, gi) in vs.iter_mut().zip(gs) {
            *vi = self.momentum * *vi + gi;
        }
        for (pv, vi) in param.value.as_mut_slice().iter_mut().zip(v.as_slice()) {
            *pv -= self.lr * vi;
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u32,
    slot: usize,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
            slot: 0,
        }
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self) {
        self.slot = 0;
        self.t += 1;
    }

    fn update(&mut self, param: &mut Param) {
        if self.slot == self.m.len() {
            self.m.push(Tensor::zeros(param.value.shape()));
            self.v.push(Tensor::zeros(param.value.shape()));
        }
        let slot = self.slot;
        self.slot += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let m = self.m[slot].as_mut_slice();
        let v = self.v[slot].as_mut_slice();
        let g = param.grad.as_slice();
        let p = param.value.as_mut_slice();
        for i in 0..p.len() {
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            p[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(x0: f32) -> Param {
        Param::new(Tensor::from_vec(&[1], vec![x0]))
    }

    /// Minimise f(x) = x² with both optimizers: x must approach 0.
    #[test]
    fn sgd_minimizes_quadratic() {
        let mut p = quadratic_param(5.0);
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..100 {
            p.grad.as_mut_slice()[0] = 2.0 * p.value.as_slice()[0];
            opt.begin_step();
            opt.update(&mut p);
        }
        assert!(p.value.as_slice()[0].abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let run = |momentum: f32| {
            let mut p = quadratic_param(5.0);
            let mut opt = Sgd::new(0.01, momentum);
            for _ in 0..50 {
                p.grad.as_mut_slice()[0] = 2.0 * p.value.as_slice()[0];
                opt.begin_step();
                opt.update(&mut p);
            }
            p.value.as_slice()[0].abs()
        };
        assert!(run(0.9) < run(0.0), "momentum should converge faster here");
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut p = quadratic_param(5.0);
        let mut opt = Adam::new(0.2);
        for _ in 0..200 {
            p.grad.as_mut_slice()[0] = 2.0 * p.value.as_slice()[0];
            opt.begin_step();
            opt.update(&mut p);
        }
        assert!(p.value.as_slice()[0].abs() < 1e-2);
    }

    #[test]
    fn slots_track_multiple_params() {
        let mut a = quadratic_param(1.0);
        let mut b = quadratic_param(-1.0);
        let mut opt = Adam::new(0.5);
        for _ in 0..100 {
            a.grad.as_mut_slice()[0] = 2.0 * a.value.as_slice()[0];
            b.grad.as_mut_slice()[0] = 2.0 * b.value.as_slice()[0];
            opt.begin_step();
            opt.update(&mut a);
            opt.update(&mut b);
        }
        assert!(a.value.as_slice()[0].abs() < 0.05);
        assert!(b.value.as_slice()[0].abs() < 0.05);
    }
}
