//! BENCH_compute — the deterministic compute substrate: GEMM microkernel
//! throughput, batched network-forward latency, CG solve time, and the
//! thread-scaling behaviour of the fixed pool.
//!
//! ```sh
//! cargo run --release -p mmp-bench --bin compute            # full run
//! MMP_SMOKE=1 cargo run --release -p mmp-bench --bin compute # CI smoke
//! ```
//!
//! Measures, against the scalar [`reference`](mmp_nn::matmul::reference)
//! kernels the tiled path is bitwise-verified against:
//!
//! * `gemm` — square-GEMM GFLOP/s, tiled vs reference;
//! * `forward` — `PolicyValueNet::forward_batch` latency at the tiny and
//!   paper (ζ = 16, 128 channels, 10 ResBlocks) architectures, tiled vs
//!   reference kernels through an unmodified forward pass;
//! * `cg` — one preconditioned CG solve on a grid Laplacian;
//! * `thread_scaling` — the same forward/CG work under 1/2/4 pool
//!   workers, with the bitwise-identity of every output asserted (the
//!   pool must buy wall-clock only, never different bits).
//!
//! The full run asserts the tiled batched forward at paper scale (batch
//! 32) is at least 2× the scalar baseline. The snapshot is archived as
//! `results/BENCH_compute.json`.

use mmp_analytic::{cg, Triplets};
use mmp_bench::header;
use mmp_nn::matmul::{self, reference};
use mmp_nn::{InferenceCtx, KernelKind};
use mmp_pool::ThreadPool;
use mmp_rl::{AgentConfig, NetOutput, PolicyValueNet, StateRef};
use serde::Serialize;
use std::time::Instant;

/// `true` when the run should shrink to CI-smoke sizes.
// why: the bench harness is the sanctioned env-reading edge
#[allow(clippy::disallowed_methods)]
fn smoke() -> bool {
    std::env::var("MMP_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Median seconds per call of `f` over `reps` timed calls.
fn median_s(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Deterministic splitmix64 stream for benchmark inputs.
struct Mix(u64);

impl Mix {
    fn next_f32(&mut self) -> f32 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ((z >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    }
}

fn filled(n: usize, mix: &mut Mix) -> Vec<f32> {
    (0..n).map(|_| mix.next_f32()).collect()
}

#[derive(Serialize)]
struct GemmRow {
    m: usize,
    k: usize,
    n: usize,
    reference_gflops: f64,
    tiled_gflops: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct ForwardRow {
    arch: String,
    zeta: usize,
    channels: usize,
    res_blocks: usize,
    batch: usize,
    reference_ms: f64,
    tiled_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct CgRow {
    n: usize,
    nnz: usize,
    iterations: usize,
    converged: bool,
    solve_ms: f64,
}

#[derive(Serialize)]
struct ScaleRow {
    workers: usize,
    forward_ms: f64,
    cg_ms: f64,
    bitwise_identical: bool,
}

#[derive(Serialize)]
struct Snapshot {
    smoke: bool,
    gemm: Vec<GemmRow>,
    forward: Vec<ForwardRow>,
    cg: CgRow,
    thread_scaling: Vec<ScaleRow>,
}

/// Times `c += a·b` through both kernels; also cross-checks their bits.
fn bench_gemm(m: usize, k: usize, n: usize, reps: usize) -> GemmRow {
    let mut mix = Mix(0x6e6d);
    let a = filled(m * k, &mut mix);
    let b = filled(k * n, &mut mix);
    let mut c_ref = vec![0.0f32; m * n];
    let mut c_tiled = vec![0.0f32; m * n];
    reference::matmul(&a, &b, &mut c_ref, m, k, n);
    matmul::matmul(&a, &b, &mut c_tiled, m, k, n);
    assert!(
        c_ref
            .iter()
            .zip(&c_tiled)
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "tiled GEMM diverged from the reference bits at {m}x{k}x{n}"
    );
    let flops = 2.0 * (m * k * n) as f64;
    let mut sink = vec![0.0f32; m * n];
    let ref_s = median_s(reps, || {
        reference::matmul(&a, &b, &mut sink, m, k, n);
        std::hint::black_box(&sink);
    });
    let tiled_s = median_s(reps, || {
        matmul::matmul(&a, &b, &mut sink, m, k, n);
        std::hint::black_box(&sink);
    });
    GemmRow {
        m,
        k,
        n,
        reference_gflops: flops / ref_s / 1e9,
        tiled_gflops: flops / tiled_s / 1e9,
        speedup: ref_s / tiled_s,
    }
}

/// A deterministic batch of observations for `cfg`'s grid.
fn make_states(zeta: usize, batch: usize) -> Vec<(Vec<f32>, Vec<f32>)> {
    let z2 = zeta * zeta;
    let mut mix = Mix(0x0b5);
    (0..batch)
        .map(|_| {
            let s_p = filled(z2, &mut mix);
            // Availability maps are probabilities; keep them in (0, 1].
            let s_a: Vec<f32> = (0..z2).map(|_| mix.next_f32().abs() + 0.25).collect();
            (s_p, s_a)
        })
        .collect()
}

fn forward_once(
    net: &PolicyValueNet,
    states: &[(Vec<f32>, Vec<f32>)],
    ctx: &mut InferenceCtx,
) -> Vec<NetOutput> {
    let refs: Vec<StateRef<'_>> = states
        .iter()
        .enumerate()
        .map(|(t, (s_p, s_a))| StateRef {
            s_p,
            s_a,
            t,
            total: states.len(),
        })
        .collect();
    net.forward_batch(&refs, ctx)
}

/// Times a batched forward through both kernel kinds on one architecture.
fn bench_forward(arch: &str, cfg: AgentConfig, batch: usize, reps: usize) -> ForwardRow {
    let net = PolicyValueNet::new(cfg);
    let states = make_states(cfg.zeta, batch);
    let mut ref_ctx = InferenceCtx::new().with_kernel(KernelKind::Reference);
    let mut tiled_ctx = InferenceCtx::new();
    // Warm up both buffer pools and cross-check the kernel-kind bits once.
    let out_ref = forward_once(&net, &states, &mut ref_ctx);
    let out_tiled = forward_once(&net, &states, &mut tiled_ctx);
    assert!(
        outputs_identical(&out_ref, &out_tiled),
        "{arch}: kernel kinds must produce identical bits"
    );
    let ref_s = median_s(reps, || {
        std::hint::black_box(forward_once(&net, &states, &mut ref_ctx));
    });
    let tiled_s = median_s(reps, || {
        std::hint::black_box(forward_once(&net, &states, &mut tiled_ctx));
    });
    ForwardRow {
        arch: arch.to_owned(),
        zeta: cfg.zeta,
        channels: cfg.channels,
        res_blocks: cfg.res_blocks,
        batch,
        reference_ms: ref_s * 1e3,
        tiled_ms: tiled_s * 1e3,
        speedup: ref_s / tiled_s,
    }
}

fn outputs_identical(a: &[NetOutput], b: &[NetOutput]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.value.to_bits() == y.value.to_bits()
                && x.probs.len() == y.probs.len()
                && x.probs
                    .iter()
                    .zip(&y.probs)
                    .all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

/// A `side`×`side` 5-point grid Laplacian (shifted SPD), the shape of the
/// analytic placer's star-model systems.
fn grid_laplacian(side: usize) -> mmp_analytic::CsrMatrix {
    let n = side * side;
    let mut t = Triplets::new(n);
    for r in 0..side {
        for c in 0..side {
            let i = r * side + c;
            t.add(i, i, 4.0 + 1e-3);
            for (nr, nc) in [
                (r.wrapping_sub(1), c),
                (r + 1, c),
                (r, c.wrapping_sub(1)),
                (r, c + 1),
            ] {
                if nr < side && nc < side {
                    t.add(i, nr * side + nc, -1.0);
                }
            }
        }
    }
    t.to_csr()
}

fn bench_cg(pool: &ThreadPool, side: usize, reps: usize) -> (CgRow, Vec<u64>) {
    let a = grid_laplacian(side);
    let n = a.dim();
    let b: Vec<f64> = (0..n).map(|i| ((i % 17) as f64 - 8.0) / 8.0).collect();
    let x0 = vec![0.0f64; n];
    let outcome = cg::solve_pooled(pool, &a, &b, &x0, 1e-9, 4 * n);
    let solve_s = median_s(reps, || {
        std::hint::black_box(cg::solve_pooled(pool, &a, &b, &x0, 1e-9, 4 * n));
    });
    let bits = outcome.x.iter().map(|v| v.to_bits()).collect();
    (
        CgRow {
            n,
            nnz: a.nnz(),
            iterations: outcome.iterations,
            converged: outcome.converged,
            solve_ms: solve_s * 1e3,
        },
        bits,
    )
}

fn main() {
    let smoke = smoke();
    header(
        "BENCH_compute — GEMM, batched forward, CG, thread scaling",
        "tiled microkernels vs the scalar reference they are bitwise-equal to",
    );
    if smoke {
        println!("MMP_SMOKE set: CI-smoke sizes\n");
    }

    // --- GEMM throughput ------------------------------------------------
    let gemm_sizes: &[(usize, usize, usize)] = if smoke {
        &[(48, 48, 48)]
    } else {
        &[(64, 64, 64), (128, 128, 128), (256, 256, 256)]
    };
    let gemm_reps = if smoke { 3 } else { 7 };
    println!(
        "{:>14} | {:>10} {:>10} {:>8}",
        "GEMM m×k×n", "ref GF/s", "tiled GF/s", "speedup"
    );
    let gemm: Vec<GemmRow> = gemm_sizes
        .iter()
        .map(|&(m, k, n)| {
            let row = bench_gemm(m, k, n, gemm_reps);
            println!(
                "{:>5}x{:>3}x{:>3} | {:>10.2} {:>10.2} {:>7.1}x",
                row.m, row.k, row.n, row.reference_gflops, row.tiled_gflops, row.speedup
            );
            row
        })
        .collect();

    // --- Batched forward latency ----------------------------------------
    println!(
        "\n{:>10} {:>5} {:>6} | {:>11} {:>11} {:>8}",
        "arch", "zeta", "batch", "ref (ms)", "tiled (ms)", "speedup"
    );
    let mut forward = Vec::new();
    let tiny_batches: &[usize] = if smoke { &[8] } else { &[1, 8, 32] };
    for &batch in tiny_batches {
        forward.push(bench_forward(
            "tiny_z8",
            AgentConfig::tiny(8),
            batch,
            if smoke { 3 } else { 5 },
        ));
    }
    if !smoke {
        // The acceptance measurement: Table I architecture, batch 32.
        forward.push(bench_forward("paper_z16", AgentConfig::paper(), 32, 3));
    }
    for row in &forward {
        println!(
            "{:>10} {:>5} {:>6} | {:>11.2} {:>11.2} {:>7.1}x",
            row.arch, row.zeta, row.batch, row.reference_ms, row.tiled_ms, row.speedup
        );
    }
    if !smoke {
        let paper = forward
            .iter()
            .find(|r| r.arch == "paper_z16")
            .expect("paper row measured above");
        assert!(
            paper.speedup >= 2.0,
            "tiled batched forward at paper scale must be >= 2x the scalar \
             baseline, measured {:.2}x",
            paper.speedup
        );
    }

    // --- CG solve -------------------------------------------------------
    let cg_side = if smoke { 24 } else { 64 };
    let cg_reps = if smoke { 3 } else { 5 };
    let (cg_row, cg_bits_1w) = bench_cg(&ThreadPool::single(), cg_side, cg_reps);
    println!(
        "\nCG grid Laplacian n={} nnz={}: {:.2} ms, {} iterations, converged={}",
        cg_row.n, cg_row.nnz, cg_row.solve_ms, cg_row.iterations, cg_row.converged
    );
    assert!(cg_row.converged, "the benchmark system must converge");

    // --- Thread scaling -------------------------------------------------
    // One core or many, the pool contract is the same: worker count buys
    // wall-clock at most — the bits never move. Assert that here, where a
    // violation is cheapest to spot.
    let net = PolicyValueNet::new(AgentConfig::tiny(8));
    let states = make_states(8, 32);
    let mut base_ctx = InferenceCtx::new();
    let base_out = forward_once(&net, &states, &mut base_ctx);
    println!(
        "\n{:>8} | {:>12} {:>10} {:>9}",
        "workers", "forward (ms)", "cg (ms)", "bitwise"
    );
    let mut thread_scaling = Vec::new();
    for workers in [1usize, 2, 4] {
        let pool = ThreadPool::try_new(workers).expect("worker counts 1..=4 are valid");
        let mut ctx = InferenceCtx::new().with_exec(pool);
        let out = forward_once(&net, &states, &mut ctx);
        let forward_s = median_s(if smoke { 3 } else { 5 }, || {
            std::hint::black_box(forward_once(&net, &states, &mut ctx));
        });
        let (cg_w, cg_bits) = bench_cg(&pool, cg_side, if smoke { 3 } else { 5 });
        let bitwise = outputs_identical(&base_out, &out) && cg_bits == cg_bits_1w;
        assert!(bitwise, "worker count {workers} changed output bits");
        println!(
            "{:>8} | {:>12.2} {:>10.2} {:>9}",
            workers,
            forward_s * 1e3,
            cg_w.solve_ms,
            bitwise
        );
        thread_scaling.push(ScaleRow {
            workers,
            forward_ms: forward_s * 1e3,
            cg_ms: cg_w.solve_ms,
            bitwise_identical: bitwise,
        });
    }

    let snapshot = Snapshot {
        smoke,
        gemm,
        forward,
        cg: cg_row,
        thread_scaling,
    };
    let json = serde_json::to_string(&snapshot).expect("snapshot serializes");
    // A smoke run must never clobber the committed full-size snapshot.
    let path = if smoke {
        "results/BENCH_compute_smoke.json"
    } else {
        "results/BENCH_compute.json"
    };
    // why: the snapshot is a best-effort output artifact, not resumable
    // state, so the bench edge keeps bare `fs::write` under a scoped allow.
    #[allow(clippy::disallowed_methods)]
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, json + "\n"))
    {
        eprintln!("warning: cannot write {path}: {e}");
    } else {
        println!("\nwrote {path}");
    }
}
