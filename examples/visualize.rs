//! Visualize the flow's stages as SVG files: the analytical prototyping
//! placement, the legalized MCTS allocation, and the boundary-refined
//! variant.
//!
//! ```sh
//! cargo run --release -p mmp-examples --bin visualize
//! ls mmp_viz_*.svg
//! ```

use mmp_core::{GlobalPlacer, GlobalPlacerConfig, MacroPlacer, PlacerConfig, SyntheticSpec};
use mmp_legal::BoundaryRefiner;
use mmp_netlist::svg;
use std::fs::File;
use std::io::BufWriter;

fn save(design: &mmp_core::Design, pl: &mmp_core::Placement, path: &str) -> std::io::Result<()> {
    let file = File::create(path)?;
    svg::write(
        design,
        pl,
        &svg::SvgOptions {
            macro_labels: true,
            ..svg::SvgOptions::default()
        },
        BufWriter::new(file),
    )?;
    println!("wrote {path}");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = SyntheticSpec::small("viz", 10, 2, 16, 300, 500, true, 17).generate();

    // Stage 1: analytical mixed-size prototyping placement.
    let proto = GlobalPlacer::new(GlobalPlacerConfig::fast()).place_mixed(&design);
    save(&design, &proto, "mmp_viz_1_prototype.svg")?;
    println!(
        "prototype HPWL = {:.0} (overlapped macros allowed)",
        proto.hpwl(&design)
    );

    // Stage 2: the full RL + MCTS flow.
    let mut cfg = PlacerConfig::fast(8);
    cfg.trainer.episodes = 40;
    cfg.mcts.explorations = 64;
    let result = MacroPlacer::new(cfg).place(&design)?;
    save(&design, &result.placement, "mmp_viz_2_placed.svg")?;
    println!("placed HPWL    = {:.0} (legal)", result.hpwl);

    // Stage 3: optional IncreMacro-style boundary refinement.
    let refined = BoundaryRefiner::new().refine(&design, &result.placement);
    save(&design, &refined.placement, "mmp_viz_3_refined.svg")?;
    println!(
        "refined HPWL   = {:.0} ({} boundary moves)",
        refined.hpwl_after, refined.moves
    );
    Ok(())
}
