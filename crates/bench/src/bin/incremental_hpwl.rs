//! BENCH_incremental_hpwl — the incremental evaluator's speedup over a
//! full HPWL recompute, plus the swap-refinement stage's effect on the
//! committed wirelength.
//!
//! ```sh
//! cargo run --release -p mmp-bench --bin incremental_hpwl
//! ```
//!
//! Per scaled ICCAD04-like circuit this measures:
//!
//! * `full_ns` — one from-scratch `Placement::hpwl` pass over the final
//!   mixed-size placement;
//! * `delta_ns` — one single-macro delta evaluation on the incremental
//!   evaluator (`move_macro` + re-summed `total` + `revert`), the unit of
//!   work every refinement proposal costs;
//! * the flow's committed HPWL vs the HPWL after the `--refine` stage
//!   (one run: the stage reports both), with the stage's wall-clock.
//!
//! The snapshot is archived as `results/BENCH_incremental_hpwl.json`.

use mmp_bench::{header, iccad_scale, ours_config};
use mmp_core::{iccad04_suite, MacroPlacer, Point, SwapRefineConfig};
use mmp_netlist::{Design, IncrementalHpwl, MacroId, Placement, SyntheticSpec};
use serde::Serialize;
use std::time::Instant;

/// Circuits measured (a prefix of the suite keeps the run in minutes).
const CIRCUITS: usize = 4;
/// Timed repetitions per measurement; the median is reported.
const REPS: usize = 7;
/// Evaluations per repetition.
const EVALS: usize = 50;

/// Median nanoseconds per call of `f` over [`REPS`] batches of [`EVALS`].
fn median_ns(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..EVALS {
                f();
            }
            t.elapsed().as_nanos() as f64 / EVALS as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[derive(Serialize)]
struct Row {
    circuit: String,
    macros: usize,
    nets: usize,
    full_ns: f64,
    delta_ns: f64,
    speedup: f64,
    hpwl_committed: f64,
    hpwl_refined: f64,
    refine_proposed: usize,
    refine_accepted: usize,
    refine_ms: f64,
}

/// Fixed-size timing row, independent of `MMP_SCALE`.
#[derive(Serialize)]
struct PaperScale {
    macros: usize,
    nets: usize,
    full_ns: f64,
    delta_ns: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Snapshot {
    scale: f64,
    zeta: usize,
    refine_moves: usize,
    rows: Vec<Row>,
    paper_scale: PaperScale,
}

/// Times one full pass vs one single-macro delta eval on `placement`.
fn time_eval(design: &Design, placement: &Placement) -> (f64, f64) {
    let full_ns = median_ns(|| {
        std::hint::black_box(placement.hpwl(design));
    });
    let mut inc = IncrementalHpwl::new(design, placement.clone());
    let probe = MacroId::from_index(0);
    let full_check = placement.hpwl(design);
    assert_eq!(inc.total().to_bits(), full_check.to_bits());
    let delta_ns = median_ns(|| {
        let c = inc.placement().macro_center(probe);
        inc.move_macro(probe, Point::new(c.x + 1.0, c.y));
        std::hint::black_box(inc.total());
        inc.revert();
    });
    (full_ns, delta_ns)
}

fn main() {
    header(
        "BENCH_incremental_hpwl — delta eval vs full recompute",
        "per circuit: single-macro delta eval, full HPWL pass, refine effect",
    );
    let scale = iccad_scale();
    let zeta = 16;
    let rcfg = SwapRefineConfig::default();
    println!("scale factor {scale} (MMP_SCALE to change)\n");
    println!(
        "{:>6} | {:>6} {:>7} | {:>10} {:>10} {:>8} | {:>12} {:>12} {:>9}",
        "Cir.",
        "#Mac",
        "#Nets",
        "full(ns)",
        "delta(ns)",
        "speedup",
        "committed",
        "refined",
        "acc/prop"
    );

    let mut rows = Vec::new();
    for spec in iccad04_suite()
        .into_iter()
        .filter(|s| s.movable_macros > 0)
        .take(CIRCUITS)
    {
        let spec = spec.scaled(scale);
        let design = spec.generate();
        let mut cfg = ours_config(zeta);
        cfg.refine = Some(rcfg);
        let result = MacroPlacer::new(cfg)
            .place(&design)
            .expect("synthetic suites are feasible");
        let refine = result.refine.expect("refine stage was configured");
        let (full_ns, delta_ns) = time_eval(&design, &result.placement);
        let speedup = full_ns / delta_ns;
        println!(
            "{:>6} | {:>6} {:>7} | {:>10.0} {:>10.0} {:>7.1}x | {:>12.1} {:>12.1} {:>5}/{}",
            spec.name,
            design.macros().len(),
            design.nets().len(),
            full_ns,
            delta_ns,
            speedup,
            refine.hpwl_before,
            refine.hpwl_after,
            refine.accepted,
            refine.proposed,
        );
        assert!(
            refine.hpwl_after <= refine.hpwl_before,
            "{}: refinement must never raise the committed HPWL",
            spec.name
        );
        rows.push(Row {
            circuit: spec.name.clone(),
            macros: design.macros().len(),
            nets: design.nets().len(),
            full_ns,
            delta_ns,
            speedup,
            hpwl_committed: refine.hpwl_before,
            hpwl_refined: refine.hpwl_after,
            refine_proposed: refine.proposed,
            refine_accepted: refine.accepted,
            refine_ms: result.timings.refine.as_secs_f64() * 1e3,
        });
    }

    let min_speedup = rows.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min);
    println!("\nminimum single-macro delta-eval speedup: {min_speedup:.1}x");

    // Paper-scale reference, matching the `incremental_hpwl` criterion
    // bench: at thousands of nets the touched-nets fraction per macro is
    // small and the delta eval pulls well clear of the full pass (the
    // scaled rows above keep shrinking with MMP_SCALE and converge on the
    // O(#nets) re-sum floor instead).
    let paper = SyntheticSpec::small("inc_bench", 24, 4, 40, 1500, 2600, true, 7).generate();
    let (p_full, p_delta) = time_eval(&paper, &Placement::initial(&paper));
    let paper_scale = PaperScale {
        macros: paper.macros().len(),
        nets: paper.nets().len(),
        full_ns: p_full,
        delta_ns: p_delta,
        speedup: p_full / p_delta,
    };
    println!(
        "paper-scale ({} nets): full {:.0} ns, delta {:.0} ns, speedup {:.1}x",
        paper_scale.nets, p_full, p_delta, paper_scale.speedup
    );
    assert!(
        paper_scale.speedup >= 5.0,
        "single-macro delta eval must be >= 5x a full recompute at paper scale"
    );

    let snapshot = Snapshot {
        scale,
        zeta,
        refine_moves: rcfg.moves,
        rows,
        paper_scale,
    };
    let json = serde_json::to_string(&snapshot).expect("snapshot serializes");
    let path = "results/BENCH_incremental_hpwl.json";
    // why: the snapshot is a best-effort output artifact, not resumable
    // state, so the bench edge keeps bare `fs::write` under a scoped allow.
    #[allow(clippy::disallowed_methods)]
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, json + "\n"))
    {
        eprintln!("warning: cannot write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}
