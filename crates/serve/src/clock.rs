//! The serving layer's wall-clock read point.
//!
//! This module is the sanctioned home for `Instant::now` in `mmp-serve`
//! (enforced by `mmp-lint`'s `wallclock` rule), mirroring
//! `mmp_core::budget::now`. The daemon reads the clock for exactly one
//! thing: measuring how long a job waited in the queue, which is reported
//! back to the client as telemetry. Nothing decision-bearing flows from
//! it — retry backoff is a pure function of the attempt number (see
//! [`crate::backoff`]), and placement determinism is untouched because
//! the flow's own clock reads stay behind `mmp_core::budget`.

use std::time::Instant;

/// Reads the monotonic clock.
pub(crate) fn now() -> Instant {
    Instant::now()
}
