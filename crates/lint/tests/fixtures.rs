//! Fixture tests: for every rule R1–R7, one snippet that fires, one that
//! is clean, and one that is suppressed with a `why:` justification.

use mmp_lint::{
    lint_source, LintConfig, ALLOW_WHY, FS_ROUTE, HASH_ORDER, PARALLELISM, PARTIAL_CMP, RNG_SOURCE,
    WALLCLOCK,
};

const DECISION: &str = "crates/mcts/src/fixture.rs";
const NON_DECISION: &str = "crates/geom/src/fixture.rs";

fn unsuppressed(path: &str, src: &str) -> Vec<(String, usize)> {
    lint_source(path, src, &LintConfig::default())
        .into_iter()
        .filter(|f| !f.suppressed)
        .map(|f| (f.rule, f.line))
        .collect()
}

fn suppressed(path: &str, src: &str) -> Vec<(String, String)> {
    lint_source(path, src, &LintConfig::default())
        .into_iter()
        .filter(|f| f.suppressed)
        .map(|f| (f.rule, f.why.unwrap_or_default()))
        .collect()
}

// --- R1: hash-order ------------------------------------------------------

#[test]
fn hash_order_fires_in_decision_crates() {
    let src = "fn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
    assert_eq!(unsuppressed(DECISION, src), vec![(HASH_ORDER.into(), 2)]);
    let set = "fn f() {\n    let s: HashSet<u32> = HashSet::new();\n}\n";
    assert_eq!(unsuppressed(DECISION, set), vec![(HASH_ORDER.into(), 2)]);
}

#[test]
fn hash_order_is_clean_for_btree_and_non_decision_crates() {
    let btree = "fn f() {\n    let m: BTreeMap<u32, u32> = BTreeMap::new();\n}\n";
    assert!(unsuppressed(DECISION, btree).is_empty());
    // The same HashMap is fine outside decision crates...
    let hash = "fn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
    assert!(unsuppressed(NON_DECISION, hash).is_empty());
    // ... and `use` declarations alone never fire.
    let use_only = "use std::collections::HashMap;\n";
    assert!(unsuppressed(DECISION, use_only).is_empty());
    // String literals and comments are not code.
    let quoted = "fn f() {\n    let s = \"HashMap\"; // HashMap in prose\n}\n";
    assert!(unsuppressed(DECISION, quoted).is_empty());
}

#[test]
fn hash_order_suppression_with_why_is_honoured() {
    let src = "fn f() {\n    // mmp-lint: allow(hash-order) why: lookup only, never iterated\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
    assert!(unsuppressed(DECISION, src).is_empty());
    assert_eq!(
        suppressed(DECISION, src),
        vec![(HASH_ORDER.into(), "lookup only, never iterated".into())]
    );
}

// --- R2: partial-cmp -----------------------------------------------------

#[test]
fn partial_cmp_fires_everywhere() {
    let src = "fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    assert_eq!(
        unsuppressed(NON_DECISION, src),
        vec![(PARTIAL_CMP.into(), 2)]
    );
}

#[test]
fn total_cmp_is_clean() {
    let src = "fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a.total_cmp(b));\n}\n";
    assert!(unsuppressed(NON_DECISION, src).is_empty());
}

#[test]
fn partial_cmp_suppression_with_why_is_honoured() {
    let src = "fn f(v: &mut [f64]) {\n    // mmp-lint: allow(partial-cmp) why: inputs are integers widened to f64, NaN impossible\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    assert!(unsuppressed(NON_DECISION, src).is_empty());
}

// --- R3: wallclock -------------------------------------------------------

#[test]
fn wallclock_fires_outside_sanctioned_modules() {
    let src =
        "fn f() {\n    let t = Instant::now();\n    let s = std::time::SystemTime::now();\n}\n";
    assert_eq!(
        unsuppressed(DECISION, src),
        vec![(WALLCLOCK.into(), 2), (WALLCLOCK.into(), 3)]
    );
}

#[test]
fn wallclock_is_clean_in_sanctioned_modules() {
    let src = "fn f() {\n    let t = Instant::now();\n}\n";
    assert!(unsuppressed("crates/obs/src/lib.rs", src).is_empty());
    assert!(unsuppressed("crates/core/src/budget.rs", src).is_empty());
    assert!(unsuppressed("crates/bench/src/bin/ablations.rs", src).is_empty());
    // `Instant` in a type position is fine anywhere.
    let ty = "fn f(deadline: Option<Instant>) -> bool {\n    deadline.is_some()\n}\n";
    assert!(unsuppressed(DECISION, ty).is_empty());
}

#[test]
fn wallclock_suppression_with_why_is_honoured() {
    let src = "fn f() {\n    // mmp-lint: allow(wallclock) why: budget-deadline probe, degrades deterministically\n    let t = Instant::now();\n}\n";
    assert!(unsuppressed(DECISION, src).is_empty());
}

// --- R4: rng-source ------------------------------------------------------

#[test]
fn rng_source_fires_on_os_seeded_randomness() {
    let src = "fn f() {\n    let mut rng = thread_rng();\n    let x: f64 = rand::random();\n    let s = RandomState::new();\n}\n";
    assert_eq!(
        unsuppressed(NON_DECISION, src),
        vec![
            (RNG_SOURCE.into(), 2),
            (RNG_SOURCE.into(), 3),
            (RNG_SOURCE.into(), 4)
        ]
    );
}

#[test]
fn seeded_rng_is_clean() {
    let src =
        "fn f() {\n    let mut rng = SmallRng::seed_from_u64(7);\n    let x: f64 = rng.gen();\n}\n";
    assert!(unsuppressed(NON_DECISION, src).is_empty());
}

#[test]
fn rng_source_suppression_with_why_is_honoured() {
    let src = "fn f() {\n    // mmp-lint: allow(rng-source) why: fixture exercising the OS entropy path itself\n    let mut rng = thread_rng();\n}\n";
    assert!(unsuppressed(NON_DECISION, src).is_empty());
}

// --- R5: allow-why -------------------------------------------------------

#[test]
fn allow_of_denied_lint_without_why_fires() {
    let src = "#[allow(clippy::unwrap_used)]\nfn f() {}\n";
    assert_eq!(unsuppressed(NON_DECISION, src), vec![(ALLOW_WHY.into(), 1)]);
    // Inner attributes are covered too.
    let inner = "#![allow(clippy::print_stdout)]\nfn f() {}\n";
    assert_eq!(
        unsuppressed(NON_DECISION, inner),
        vec![(ALLOW_WHY.into(), 1)]
    );
}

#[test]
fn allow_with_adjacent_why_is_clean() {
    // Trailing on the attribute line.
    let trailing = "#[allow(clippy::unwrap_used)] // why: invariant, not input\nfn f() {}\n";
    assert!(unsuppressed(NON_DECISION, trailing).is_empty());
    // In the contiguous comment block directly above.
    let above = "// why: invariant, not input: the slice is non-empty by construction\n#[allow(clippy::expect_used)]\nfn f() {}\n";
    assert!(unsuppressed(NON_DECISION, above).is_empty());
    // Allows of lints that are not denied need no justification.
    let benign = "#[allow(clippy::too_many_arguments)]\nfn f() {}\n";
    assert!(unsuppressed(NON_DECISION, benign).is_empty());
}

#[test]
fn allow_why_directive_is_self_satisfying() {
    // A directive targeting allow-why is self-defeating by design: its own
    // `why:` text sits adjacent to the attribute, which already satisfies
    // R5, so the rule never fires and the directive is flagged as unused.
    // The justification requirement is met either way — there is no path
    // to an unjustified denied-lint allow.
    let src = "// mmp-lint: allow(allow-why) why: justification lives in the module docs\n#[allow(clippy::unwrap_used)]\nfn f() {}\n";
    let rules = unsuppressed(NON_DECISION, src);
    assert_eq!(rules, vec![("suppression".into(), 1)]);
}

// --- suppression meta rule -----------------------------------------------

#[test]
fn malformed_and_unused_suppressions_are_findings() {
    let missing_why = "// mmp-lint: allow(hash-order)\nfn f() {}\n";
    assert_eq!(
        unsuppressed(NON_DECISION, missing_why),
        vec![("suppression".into(), 1)]
    );
    let unknown_rule = "// mmp-lint: allow(made-up) why: x\nfn f() {}\n";
    assert_eq!(
        unsuppressed(NON_DECISION, unknown_rule),
        vec![("suppression".into(), 1)]
    );
    let unused = "// mmp-lint: allow(wallclock) why: nothing here uses the clock\nfn f() {}\n";
    assert_eq!(
        unsuppressed(NON_DECISION, unused),
        vec![("suppression".into(), 1)]
    );
}

#[test]
fn suppressions_only_reach_their_own_and_next_line() {
    let too_far = "fn f() {\n    // mmp-lint: allow(wallclock) why: too far away\n\n    let t = Instant::now();\n}\n";
    let rules: Vec<_> = unsuppressed(DECISION, too_far);
    // The finding stays unsuppressed and the directive is flagged unused.
    assert!(rules.iter().any(|(r, _)| r == WALLCLOCK));
    assert!(rules.iter().any(|(r, _)| r == "suppression"));
}

// --- R6: parallelism -----------------------------------------------------

#[test]
fn available_parallelism_fires_outside_sanctioned_paths() {
    let src =
        "fn f() -> usize {\n    std::thread::available_parallelism().map_or(1, |n| n.get())\n}\n";
    assert_eq!(unsuppressed(DECISION, src), vec![(PARALLELISM.into(), 2)]);
    assert_eq!(
        unsuppressed(NON_DECISION, src),
        vec![(PARALLELISM.into(), 2)]
    );
}

#[test]
fn available_parallelism_is_clean_in_pool_and_bench() {
    let src =
        "fn f() -> usize {\n    std::thread::available_parallelism().map_or(1, |n| n.get())\n}\n";
    assert!(unsuppressed("crates/pool/src/lib.rs", src).is_empty());
    assert!(unsuppressed("crates/bench/src/bin/compute.rs", src).is_empty());
    // Prose mentions are not code.
    let quoted =
        "fn f() {\n    let s = \"available_parallelism\"; // available_parallelism in prose\n}\n";
    assert!(unsuppressed(DECISION, quoted).is_empty());
}

// --- R7: fs-route --------------------------------------------------------

const ROUTED: &str = "crates/ckpt/src/fixture.rs";

#[test]
fn fs_mutations_fire_in_routed_crates() {
    let src = "fn f(p: &Path) {\n    std::fs::write(p, b\"x\").unwrap();\n    fs::rename(p, p).unwrap();\n}\n";
    assert_eq!(
        unsuppressed(ROUTED, src),
        vec![(FS_ROUTE.into(), 2), (FS_ROUTE.into(), 3)]
    );
    // Writable handles opened around the chokepoint count too.
    let handle = "fn f(p: &Path) {\n    let _ = File::create(p);\n    let _ = OpenOptions::new().write(true).open(p);\n}\n";
    assert_eq!(
        unsuppressed("crates/serve/src/fixture.rs", handle),
        vec![(FS_ROUTE.into(), 2), (FS_ROUTE.into(), 3)]
    );
    // Importing a mutation helper is the same evasion as calling it.
    let import = "use std::fs::write;\n";
    assert_eq!(unsuppressed(ROUTED, import), vec![(FS_ROUTE.into(), 1)]);
}

#[test]
fn fs_reads_tests_and_unrouted_crates_are_clean() {
    // Reads never need the chokepoint.
    let reads =
        "fn f(p: &Path) -> Vec<u8> {\n    let _ = fs::metadata(p);\n    fs::read(p).unwrap()\n}\n";
    assert!(unsuppressed(ROUTED, reads).is_empty());
    // The same mutation is fine outside the routed crates...
    let write = "fn f(p: &Path) {\n    std::fs::write(p, b\"x\").unwrap();\n}\n";
    assert!(unsuppressed(NON_DECISION, write).is_empty());
    // ... and inside the trailing unit-test module, where tests tamper
    // with files on purpose to exercise recovery.
    let in_tests =
        "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t(p: &Path) {\n        std::fs::write(p, b\"torn\").unwrap();\n    }\n}\n";
    assert!(unsuppressed(ROUTED, in_tests).is_empty());
}

#[test]
fn fs_route_suppression_with_why_is_honoured() {
    let src = "fn f(p: &Path) {\n    // mmp-lint: allow(fs-route) why: test-only tamper helper behind cfg(test)\n    std::fs::write(p, b\"x\").unwrap();\n}\n";
    assert!(unsuppressed(ROUTED, src).is_empty());
    assert_eq!(
        suppressed(ROUTED, src),
        vec![(
            FS_ROUTE.into(),
            "test-only tamper helper behind cfg(test)".into()
        )]
    );
}

#[test]
fn parallelism_suppression_with_why_is_honoured() {
    let src = "fn f() -> usize {\n    // mmp-lint: allow(parallelism) why: report-only, never partitions work\n    std::thread::available_parallelism().map_or(1, |n| n.get())\n}\n";
    assert!(unsuppressed(DECISION, src).is_empty());
    assert_eq!(
        suppressed(DECISION, src),
        vec![(
            PARALLELISM.into(),
            "report-only, never partitions work".into()
        )]
    );
}
