//! The reward function 𝔇(W) of Eq. 9 and its calibration.
//!
//! The paper observes that RL converges faster when rewards sit *slightly
//! above zero*. Before training, 50 random episodes are played; their
//! maximum (δ), minimum (γ) and average (Δ) wirelengths scale the reward:
//!
//! 𝔇(W) = (−W + Δ)/(δ − γ) + α,      α ∈ \[0.5, 1\]
//!
//! Fig. 4 compares this against the same formula without α and against the
//! intuitive reward −W; [`RewardKind`] selects among the three.

use serde::{Deserialize, Serialize};

/// Which reward formula to use (the three curves of Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RewardKind {
    /// Eq. 9 with the shift α (the paper's default; α = 0.75 sits mid-range
    /// of the stated \[0.5, 1\]).
    Paper {
        /// The positive shift α.
        alpha: f64,
    },
    /// Eq. 9 with α = 0 (rewards hover around zero).
    PaperNoAlpha,
    /// The intuitive reward −W (never converged in the paper's Fig. 4b).
    NegWirelength,
}

impl Default for RewardKind {
    fn default() -> Self {
        RewardKind::Paper { alpha: 0.75 }
    }
}

/// Calibrated reward function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewardScale {
    kind: RewardKind,
    /// δ: maximum calibration wirelength.
    max: f64,
    /// γ: minimum calibration wirelength.
    min: f64,
    /// Δ: average calibration wirelength.
    mean: f64,
}

/// Error from [`RewardScale::try_calibrate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibrationError {
    /// The sample set was empty.
    NoSamples,
    /// Every sample was NaN or infinite.
    NoFiniteSamples,
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::NoSamples => write!(f, "calibration needs samples"),
            CalibrationError::NoFiniteSamples => {
                write!(f, "calibration needs at least one finite wirelength sample")
            }
        }
    }
}

impl std::error::Error for CalibrationError {}

impl RewardScale {
    /// Calibrates from the wirelengths of the random warm-up episodes.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample set; see [`RewardScale::try_calibrate`]
    /// for the fallible variant used by the hardened flow.
    pub fn calibrate(kind: RewardKind, wirelengths: &[f64]) -> Self {
        match Self::try_calibrate(kind, wirelengths) {
            Ok(s) => s,
            Err(e) => panic!("calibration needs samples: {e}"),
        }
    }

    /// Fallible calibration: ignores non-finite samples and returns a typed
    /// error instead of panicking when no usable sample remains. A
    /// degenerate spread (δ = γ, Eq. 9 denominator zero) is clamped inside
    /// [`RewardScale::reward`], so identical samples are fine here.
    ///
    /// # Errors
    ///
    /// See [`CalibrationError`].
    pub fn try_calibrate(kind: RewardKind, wirelengths: &[f64]) -> Result<Self, CalibrationError> {
        if wirelengths.is_empty() {
            return Err(CalibrationError::NoSamples);
        }
        let finite: Vec<f64> = wirelengths
            .iter()
            .copied()
            .filter(|w| w.is_finite())
            .collect();
        if finite.is_empty() {
            return Err(CalibrationError::NoFiniteSamples);
        }
        let max = finite.iter().cloned().fold(f64::MIN, f64::max);
        let min = finite.iter().cloned().fold(f64::MAX, f64::min);
        // mmp-lint: allow(float-reduction) why: sequential sum in sample order; calibration statistic, not a placement decision
        let mean = finite.iter().sum::<f64>() / finite.len() as f64;
        Ok(RewardScale {
            kind,
            max,
            min,
            mean,
        })
    }

    /// The reward for a placement of wirelength `w`.
    pub fn reward(&self, w: f64) -> f64 {
        match self.kind {
            RewardKind::NegWirelength => -w,
            RewardKind::Paper { alpha } => self.scaled(w) + alpha,
            RewardKind::PaperNoAlpha => self.scaled(w),
        }
    }

    fn scaled(&self, w: f64) -> f64 {
        // Guard degenerate calibration (all samples equal): fall back to a
        // span of the calibration magnitude so rewards stay O(1).
        let mut span = self.max - self.min;
        if span <= 1e-9 * self.mean.abs().max(1.0) {
            span = self.mean.abs().max(1.0);
        }
        (-w + self.mean) / span
    }

    /// The calibration statistics (δ, γ, Δ).
    pub fn stats(&self) -> (f64, f64, f64) {
        (self.max, self.min, self.mean)
    }

    /// The reward formula in use.
    pub fn kind(&self) -> RewardKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn calibration_extracts_stats() {
        let s = RewardScale::calibrate(RewardKind::default(), &[10.0, 30.0, 20.0]);
        assert_eq!(s.stats(), (30.0, 10.0, 20.0));
    }

    #[test]
    fn average_wirelength_maps_to_alpha() {
        let s = RewardScale::calibrate(RewardKind::Paper { alpha: 0.75 }, &[10.0, 30.0, 20.0]);
        // W = Δ ⇒ scaled term 0 ⇒ reward = α.
        assert!((s.reward(20.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rewards_slightly_above_zero_within_calibration_range() {
        // The design intent: with α = 0.75, any W within [γ, δ] of a
        // symmetric sample maps to a positive reward.
        let s = RewardScale::calibrate(RewardKind::Paper { alpha: 0.75 }, &[10.0, 30.0]);
        for w in [10.0, 15.0, 20.0, 25.0, 30.0] {
            assert!(s.reward(w) > 0.0, "reward({w}) = {}", s.reward(w));
        }
    }

    #[test]
    fn no_alpha_hovers_around_zero() {
        let s = RewardScale::calibrate(RewardKind::PaperNoAlpha, &[10.0, 30.0, 20.0]);
        assert!((s.reward(20.0)).abs() < 1e-12);
        assert!(s.reward(10.0) > 0.0);
        assert!(s.reward(30.0) < 0.0);
    }

    #[test]
    fn neg_wirelength_is_identity_negation() {
        let s = RewardScale::calibrate(RewardKind::NegWirelength, &[1.0]);
        assert_eq!(s.reward(123.0), -123.0);
    }

    #[test]
    fn degenerate_calibration_is_guarded() {
        let s = RewardScale::calibrate(RewardKind::PaperNoAlpha, &[5.0, 5.0, 5.0]);
        assert!(s.reward(5.0).is_finite());
    }

    #[test]
    fn zero_spread_calibration_never_divides_by_zero() {
        // Eq. 9 denominator δ − γ = 0 when all calibration episodes return
        // identical wirelength; the clamped span keeps every reward finite
        // and the W = Δ reward at exactly α.
        let s = RewardScale::calibrate(RewardKind::Paper { alpha: 0.75 }, &[42.0; 50]);
        for w in [0.0, 21.0, 42.0, 84.0, 1e12] {
            assert!(s.reward(w).is_finite(), "reward({w}) = {}", s.reward(w));
        }
        assert!((s.reward(42.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let s = RewardScale::try_calibrate(
            RewardKind::PaperNoAlpha,
            &[10.0, f64::NAN, 30.0, f64::INFINITY, 20.0],
        )
        .unwrap();
        assert_eq!(s.stats(), (30.0, 10.0, 20.0));
    }

    #[test]
    fn all_non_finite_samples_are_a_typed_error() {
        let err = RewardScale::try_calibrate(RewardKind::default(), &[f64::NAN, f64::INFINITY])
            .unwrap_err();
        assert_eq!(err, CalibrationError::NoFiniteSamples);
    }

    #[test]
    fn empty_samples_are_a_typed_error() {
        let err = RewardScale::try_calibrate(RewardKind::default(), &[]).unwrap_err();
        assert_eq!(err, CalibrationError::NoSamples);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_calibration_panics() {
        let _ = RewardScale::calibrate(RewardKind::default(), &[]);
    }

    proptest! {
        #[test]
        fn reward_is_monotone_decreasing_in_wirelength(
            samples in proptest::collection::vec(1.0f64..1e6, 2..50),
            w1 in 1.0f64..1e6, w2 in 1.0f64..1e6,
        ) {
            let s = RewardScale::calibrate(RewardKind::default(), &samples);
            if w1 < w2 {
                prop_assert!(s.reward(w1) >= s.reward(w2));
            } else {
                prop_assert!(s.reward(w2) >= s.reward(w1));
            }
        }
    }
}
