//! Failure injection and fuzz-style robustness checks.

use mmp_netlist::{bookshelf, Placement, SyntheticSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    /// The bookshelf parser must never panic: arbitrary input either
    /// parses or produces a structured error.
    #[test]
    fn bookshelf_parser_never_panics(input in ".{0,400}") {
        let _ = bookshelf::read("fuzz", input.as_bytes());
    }

    /// Prefix truncation of a valid stream (simulated torn write) must not
    /// panic either.
    #[test]
    fn truncated_bookshelf_never_panics(cut in 0usize..2000) {
        let design = SyntheticSpec::small("t", 4, 1, 6, 30, 50, true, 1).generate();
        let mut buf = Vec::new();
        bookshelf::write(&design, Some(&Placement::initial(&design)), &mut buf).unwrap();
        let cut = cut.min(buf.len());
        let _ = bookshelf::read("t", &buf[..cut]);
    }

    /// Line-level corruption (byte flips) must not panic.
    #[test]
    fn corrupted_bookshelf_never_panics(pos in 0usize..2000, byte in 0u8..=255) {
        let design = SyntheticSpec::small("c", 4, 0, 6, 30, 50, false, 2).generate();
        let mut buf = Vec::new();
        bookshelf::write(&design, None, &mut buf).unwrap();
        if !buf.is_empty() {
            let pos = pos % buf.len();
            buf[pos] = byte;
        }
        let _ = bookshelf::read("c", buf.as_slice());
    }
}

mod env_invariants {
    use super::*;
    use mmp_cluster::{ClusterParams, Coarsener};
    use mmp_geom::Grid;
    use mmp_rl::PlacementEnv;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Whatever (valid) actions are played, the environment's
        /// availability stays in [0, 1], occupancy stays in [0, 1] and
        /// grows monotonically.
        #[test]
        fn environment_invariants_hold_under_random_play(
            seed in 0u64..500,
            actions in proptest::collection::vec(0usize..64, 32),
        ) {
            let design =
                SyntheticSpec::small(format!("env{seed}"), 8, 1, 8, 50, 90, true, seed).generate();
            let grid = Grid::new(*design.region(), 8);
            let coarse = Coarsener::new(&ClusterParams::paper(grid.cell_area()))
                .coarsen(&design, &Placement::initial(&design));
            let mut env = PlacementEnv::new(&design, &coarse, grid);
            let mut prev_occupancy = -1.0f32;
            let mut k = 0usize;
            while !env.is_terminal() {
                let s = env.state();
                for &v in &s.s_a {
                    prop_assert!((0.0..=1.0).contains(&v), "s_a out of range: {v}");
                }
                for &v in &s.s_p {
                    prop_assert!((0.0..=1.0).contains(&v), "s_p out of range: {v}");
                }
                let occ: f32 = s.s_p.iter().sum();
                prop_assert!(occ >= prev_occupancy);
                prev_occupancy = occ;
                env.step(actions[k % actions.len()]);
                k += 1;
            }
            prop_assert_eq!(env.assignment().len(), coarse.macro_groups().len());
        }
    }
}

mod legalizer_stress {
    use super::*;
    use mmp_geom::Point;
    use mmp_legal::MacroLegalizer;

    /// Extremely skewed targets (all macros stacked on one point, at a
    /// region corner, off in one axis) must still come out overlap-free.
    #[test]
    fn degenerate_targets_legalize_cleanly() {
        let design = SyntheticSpec::small("deg", 10, 2, 8, 60, 110, true, 3).generate();
        let movable = design.movable_macros();
        let corner = design.region().lower_left();
        let center = design.region().center();
        for target in [corner, center, Point::new(center.x, design.region().y)] {
            let targets = vec![target; movable.len()];
            let (placement, _, overlap) = MacroLegalizer::new().legalize_targets(&design, &targets);
            assert!(
                overlap < 1e-6,
                "targets at {target} leave overlap {overlap}"
            );
            assert!(placement.macro_overlap_area(&design) < 1e-6);
        }
    }

    /// A design whose macros barely fit (high utilization) still legalizes
    /// without overlap, even if some macros spill to the region edge.
    #[test]
    fn tight_instances_remain_overlap_free() {
        use mmp_netlist::DesignBuilder;
        let mut b = DesignBuilder::new("tight", mmp_geom::Rect::new(0.0, 0.0, 40.0, 40.0));
        // 12 macros of 10x10 = 1200 of 1600 area (75% macro utilization).
        for i in 0..12 {
            b.add_macro(format!("m{i}"), 10.0, 10.0, "");
        }
        let design = b.build().unwrap();
        let targets = vec![design.region().center(); 12];
        let (placement, out_of_region, overlap) =
            MacroLegalizer::new().legalize_targets(&design, &targets);
        assert!(
            !out_of_region,
            "12 x 100 fits a 1600 region: 4x4 packing at most"
        );
        assert!(overlap < 1e-6, "remaining overlap {overlap}");
        assert!(placement.macros_inside_region(&design));
    }
}
