//! The actor-critic network of Fig. 2 / Table I.
//!
//! A shared residual conv tower feeds two heads:
//!
//! * **policy** — 1×1 conv (2 maps) → FC → ζ² logits, masked by the
//!   availability map s_a and softmax-normalised. The paper "multiplies" the
//!   FC output by s_a before the softmax; we implement the mask as
//!   `logits + ln(s_a)`, which makes the final probabilities exactly
//!   proportional to `softmax(logits) · s_a` while keeping the softmax
//!   gradient standard.
//! * **value** — the tower output concatenated with s_p and a position
//!   embedding of t (a constant `t/total` plane), 1×1 conv → MLP
//!   (ζ² → ζ → ζ² → 1) per Table I.
//!
//! Channel width and tower depth are configurable: [`AgentConfig::paper`]
//! reproduces Table I exactly (128 channels, 10 ResBlocks);
//! [`AgentConfig::tiny`] runs the same code at laptop scale.

use mmp_nn::{softmax, BatchNorm2d, Conv2d, Layer, Linear, Param, Relu, Tensor};
use serde::{Deserialize, Serialize};

/// Network size parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Grid resolution ζ (the action space is ζ²).
    pub zeta: usize,
    /// Conv channel width F (Table I: 128).
    pub channels: usize,
    /// ResBlock count (Table I: 10).
    pub res_blocks: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl AgentConfig {
    /// The exact architecture of Table I: ζ = 16, 128 channels, 10
    /// ResBlocks.
    pub fn paper() -> Self {
        AgentConfig {
            zeta: 16,
            channels: 128,
            res_blocks: 10,
            seed: 0,
        }
    }

    /// A laptop-scale configuration sharing all code paths (16 channels,
    /// 2 ResBlocks) over a ζ×ζ grid.
    pub fn tiny(zeta: usize) -> Self {
        AgentConfig {
            zeta,
            channels: 16,
            res_blocks: 2,
            seed: 0,
        }
    }
}

/// One pre-activation-style residual block: conv-bn-relu-conv-bn + skip,
/// then relu (the ResBlock of Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ResBlock {
    conv_a: Conv2d,
    bn_a: BatchNorm2d,
    relu_a: Relu,
    conv_b: Conv2d,
    bn_b: BatchNorm2d,
    relu_out: Relu,
}

impl ResBlock {
    fn new(channels: usize, seed: u64) -> Self {
        ResBlock {
            conv_a: Conv2d::new(channels, channels, 3, seed),
            bn_a: BatchNorm2d::new(channels),
            relu_a: Relu::new(),
            conv_b: Conv2d::new(channels, channels, 3, seed ^ 0xb10c),
            bn_b: BatchNorm2d::new(channels),
            relu_out: Relu::new(),
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut h = self.conv_a.forward(x, train);
        h = self.bn_a.forward(&h, train);
        h = self.relu_a.forward(&h, train);
        h = self.conv_b.forward(&h, train);
        h = self.bn_b.forward(&h, train);
        h.add_assign(x);
        self.relu_out.forward(&h, train)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.relu_out.backward(grad);
        let mut gx = self.bn_b.backward(&g);
        gx = self.conv_b.backward(&gx);
        gx = self.relu_a.backward(&gx);
        gx = self.bn_a.backward(&gx);
        let mut gi = self.conv_a.backward(&gx);
        gi.add_assign(&g); // skip path
        gi
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv_a.visit_params(f);
        self.bn_a.visit_params(f);
        self.conv_b.visit_params(f);
        self.bn_b.visit_params(f);
    }
}

/// One forward result.
#[derive(Debug, Clone, PartialEq)]
pub struct NetOutput {
    /// Masked action distribution over the ζ² cells.
    pub probs: Vec<f32>,
    /// Predicted value v_θ of the state.
    pub value: f32,
}

#[derive(Debug, Clone)]
struct ForwardCache {
    probs: Vec<f32>,
    value: f32,
    tower_out: Tensor,
}

/// The shared-trunk policy/value network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyValueNet {
    config: AgentConfig,
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    blocks: Vec<ResBlock>,
    conv_p: Conv2d,
    bn_p: BatchNorm2d,
    relu_p: Relu,
    fc_p: Linear,
    conv_v: Conv2d,
    bn_v: BatchNorm2d,
    relu_v: Relu,
    lin1: Linear,
    relu_l1: Relu,
    lin2: Linear,
    relu_l2: Relu,
    lin3: Linear,
    #[serde(skip)]
    cache: Option<ForwardCache>,
}

impl PolicyValueNet {
    /// Builds the network (deterministic in `config.seed`).
    pub fn new(config: AgentConfig) -> Self {
        let f = config.channels;
        let z2 = config.zeta * config.zeta;
        let s = config.seed;
        PolicyValueNet {
            config,
            conv1: Conv2d::new(1, f, 3, s.wrapping_add(1)),
            bn1: BatchNorm2d::new(f),
            relu1: Relu::new(),
            blocks: (0..config.res_blocks)
                .map(|i| ResBlock::new(f, s.wrapping_add(100 + i as u64)))
                .collect(),
            conv_p: Conv2d::new(f, 2, 1, s.wrapping_add(2)),
            bn_p: BatchNorm2d::new(2),
            relu_p: Relu::new(),
            fc_p: Linear::new(2 * z2, z2, s.wrapping_add(3)),
            conv_v: Conv2d::new(f + 2, 1, 1, s.wrapping_add(4)),
            bn_v: BatchNorm2d::new(1),
            relu_v: Relu::new(),
            lin1: Linear::new(z2, config.zeta, s.wrapping_add(5)),
            relu_l1: Relu::new(),
            lin2: Linear::new(config.zeta, z2, s.wrapping_add(6)),
            relu_l2: Relu::new(),
            lin3: Linear::new(z2, 1, s.wrapping_add(7)),
            cache: None,
        }
    }

    /// The size configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// Evaluates the network on one state.
    ///
    /// # Panics
    ///
    /// Panics when `s_p`/`s_a` are not ζ² long.
    pub fn forward(
        &mut self,
        s_p: &[f32],
        s_a: &[f32],
        t: usize,
        total: usize,
        train: bool,
    ) -> NetOutput {
        let z = self.config.zeta;
        let z2 = z * z;
        assert_eq!(s_p.len(), z2, "s_p length mismatch");
        assert_eq!(s_a.len(), z2, "s_a length mismatch");

        let input = Tensor::from_vec(&[1, 1, z, z], s_p.to_vec());
        let mut h = self.conv1.forward(&input, train);
        h = self.bn1.forward(&h, train);
        h = self.relu1.forward(&h, train);
        for b in &mut self.blocks {
            h = b.forward(&h, train);
        }
        let tower_out = h;

        // --- policy head ---------------------------------------------
        let mut p = self.conv_p.forward(&tower_out, train);
        p = self.bn_p.forward(&p, train);
        p = self.relu_p.forward(&p, train);
        let p_flat = p.reshaped(&[1, 2 * z2]);
        let logits = self.fc_p.forward(&p_flat, train);
        let masked: Vec<f32> = logits
            .as_slice()
            .iter()
            .zip(s_a)
            .map(|(&l, &a)| l + a.max(1e-30).ln())
            .collect();
        let probs = softmax(&masked);

        // --- value head -----------------------------------------------
        let f = self.config.channels;
        let mut v_in = Tensor::zeros(&[1, f + 2, z, z]);
        v_in.as_mut_slice()[..f * z2].copy_from_slice(tower_out.as_slice());
        v_in.as_mut_slice()[f * z2..(f + 1) * z2].copy_from_slice(s_p);
        let embed = if total > 0 {
            t as f32 / total as f32
        } else {
            0.0
        };
        for vslot in &mut v_in.as_mut_slice()[(f + 1) * z2..(f + 2) * z2] {
            *vslot = embed;
        }
        let mut v = self.conv_v.forward(&v_in, train);
        v = self.bn_v.forward(&v, train);
        v = self.relu_v.forward(&v, train);
        let v_flat = v.reshaped(&[1, z2]);
        let mut m = self.lin1.forward(&v_flat, train);
        m = self.relu_l1.forward(&m, train);
        m = self.lin2.forward(&m, train);
        m = self.relu_l2.forward(&m, train);
        let value = self.lin3.forward(&m, train).as_slice()[0];

        if train {
            self.cache = Some(ForwardCache {
                probs: probs.clone(),
                value,
                tower_out,
            });
        } else {
            self.cache = None;
        }
        NetOutput { probs, value }
    }

    /// Backpropagates the A2C losses of Eqs. 5–7 for the cached forward:
    /// policy loss −ln p(a)·A with A = `reward − v` (treated as a
    /// constant), value loss (reward − v)².
    ///
    /// Gradients accumulate; call an optimizer step plus
    /// [`PolicyValueNet::zero_grad`] per update (every 30 episodes in the
    /// paper).
    ///
    /// # Panics
    ///
    /// Panics without a preceding training-mode forward.
    pub fn backward(&mut self, action: usize, reward: f32) {
        self.backward_with_entropy(action, reward, 0.0);
    }

    /// [`PolicyValueNet::backward`] with an entropy bonus −β·H(π) added to
    /// the loss (β = 0 reproduces the paper's plain A2C; positive β keeps
    /// the policy from collapsing early — an ablatable extension).
    ///
    /// # Panics
    ///
    /// Panics without a preceding training-mode forward.
    pub fn backward_with_entropy(&mut self, action: usize, reward: f32, beta: f32) {
        let cache = self
            .cache
            .take()
            .expect("backward without training forward");
        let z = self.config.zeta;
        let z2 = z * z;
        let f = self.config.channels;
        let advantage = reward - cache.value;

        // --- policy head gradient -------------------------------------
        // d(−ln p_a · A)/d logits_j = A · (p_j − 1[j = a]); the s_a mask is
        // an additive constant and vanishes from the gradient. The entropy
        // term −β·H adds β·p_j·(ln p_j + H).
        let entropy: f32 = cache
            .probs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.ln())
            .sum();
        let mut dlogits = vec![0.0f32; z2];
        for (j, d) in dlogits.iter_mut().enumerate() {
            let p = cache.probs[j];
            *d = advantage * (p - if j == action { 1.0 } else { 0.0 });
            if beta > 0.0 && p > 0.0 {
                *d += beta * p * (p.ln() + entropy);
            }
        }
        let g = self.fc_p.backward(&Tensor::from_vec(&[1, z2], dlogits));
        let g = g.reshaped(&[1, 2, z, z]);
        let g = self.relu_p.backward(&g);
        let g = self.bn_p.backward(&g);
        let mut tower_grad = self.conv_p.backward(&g);

        // --- value head gradient ---------------------------------------
        // d(R − v)²/dv = −2(R − v) = −2A.
        let dv = -2.0 * advantage;
        let g = self.lin3.backward(&Tensor::from_vec(&[1, 1], vec![dv]));
        let g = self.relu_l2.backward(&g);
        let g = self.lin2.backward(&g);
        let g = self.relu_l1.backward(&g);
        let g = self.lin1.backward(&g);
        let g = g.reshaped(&[1, 1, z, z]);
        let g = self.relu_v.backward(&g);
        let g = self.bn_v.backward(&g);
        let g = self.conv_v.backward(&g);
        // Route only the tower channels of the concat input back.
        let mut v_tower_grad = Tensor::zeros(&[1, f, z, z]);
        v_tower_grad
            .as_mut_slice()
            .copy_from_slice(&g.as_slice()[..f * z2]);
        tower_grad.add_assign(&v_tower_grad);

        // --- trunk -------------------------------------------------------
        let mut g = tower_grad;
        for b in self.blocks.iter_mut().rev() {
            g = b.backward(&g);
        }
        let g = self.relu1.backward(&g);
        let g = self.bn1.backward(&g);
        let _ = self.conv1.backward(&g);
        let _ = cache.tower_out;
    }

    /// Visits every trainable parameter (optimizer + checkpoint hook).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.conv_p.visit_params(f);
        self.bn_p.visit_params(f);
        self.fc_p.visit_params(f);
        self.conv_v.visit_params(f);
        self.bn_v.visit_params(f);
        self.lin1.visit_params(f);
        self.lin2.visit_params(f);
        self.lin3.visit_params(f);
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net() -> PolicyValueNet {
        PolicyValueNet::new(AgentConfig {
            zeta: 4,
            channels: 4,
            res_blocks: 1,
            seed: 7,
        })
    }

    fn uniform_state(z2: usize) -> (Vec<f32>, Vec<f32>) {
        (vec![0.3; z2], vec![1.0; z2])
    }

    #[test]
    fn forward_produces_distribution() {
        let mut net = tiny_net();
        let (s_p, s_a) = uniform_state(16);
        let out = net.forward(&s_p, &s_a, 0, 5, false);
        let sum: f32 = out.probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(out.probs.iter().all(|&p| p >= 0.0));
        assert!(out.value.is_finite());
    }

    #[test]
    fn mask_zeroes_unavailable_cells() {
        let mut net = tiny_net();
        let s_p = vec![0.3; 16];
        let mut s_a = vec![1.0; 16];
        s_a[3] = 0.0;
        s_a[9] = 0.0;
        let out = net.forward(&s_p, &s_a, 0, 5, false);
        assert!(out.probs[3] < 1e-12);
        assert!(out.probs[9] < 1e-12);
        let sum: f32 = out.probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn availability_scales_probabilities() {
        // Identical logits: probs must be proportional to s_a.
        let mut net = tiny_net();
        let s_p = vec![0.0; 16];
        let mut s_a = vec![0.5; 16];
        s_a[0] = 1.0;
        let out = net.forward(&s_p, &s_a, 0, 5, false);
        // p_0 / p_j for equal logits should approach s_a ratio 2.0 —
        // logits are not exactly equal, so just check the direction
        // strongly holds on average.
        let rest_avg: f32 = out.probs[1..].iter().sum::<f32>() / 15.0;
        assert!(out.probs[0] > rest_avg, "{} vs {}", out.probs[0], rest_avg);
    }

    #[test]
    fn value_depends_on_position_embedding() {
        let mut net = tiny_net();
        let (s_p, s_a) = uniform_state(16);
        let v0 = net.forward(&s_p, &s_a, 0, 10, false).value;
        let v9 = net.forward(&s_p, &s_a, 9, 10, false).value;
        assert_ne!(v0, v9, "t-embedding must reach the value head");
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = tiny_net();
        let mut b = tiny_net();
        let (s_p, s_a) = uniform_state(16);
        assert_eq!(
            a.forward(&s_p, &s_a, 1, 5, false),
            b.forward(&s_p, &s_a, 1, 5, false)
        );
    }

    #[test]
    fn training_step_increases_chosen_action_probability() {
        // One-state bandit: positive advantage on action 5 must raise p[5].
        let mut net = tiny_net();
        let (s_p, s_a) = uniform_state(16);
        let mut opt = mmp_nn::Sgd::new(0.005, 0.0);
        let before = net.forward(&s_p, &s_a, 0, 5, false).probs[5];
        for _ in 0..25 {
            let out = net.forward(&s_p, &s_a, 0, 5, true);
            // reward chosen so the advantage is clearly positive
            net.backward(5, out.value + 1.0);
            use mmp_nn::Optimizer;
            opt.begin_step();
            net.visit_params(&mut |p| opt.update(p));
            net.zero_grad();
        }
        let after = net.forward(&s_p, &s_a, 0, 5, false).probs[5];
        assert!(
            after > before,
            "p[5] should grow: before {before}, after {after}"
        );
    }

    #[test]
    fn value_regresses_toward_reward() {
        let mut net = tiny_net();
        let (s_p, s_a) = uniform_state(16);
        let mut opt = mmp_nn::Adam::new(0.01);
        let target = 0.8f32;
        for _ in 0..60 {
            let out = net.forward(&s_p, &s_a, 2, 5, true);
            // Use a never-chosen action irrelevant for value learning.
            net.backward(0, target);
            use mmp_nn::Optimizer;
            opt.begin_step();
            net.visit_params(&mut |p| opt.update(p));
            net.zero_grad();
            let _ = out;
        }
        let v = net.forward(&s_p, &s_a, 2, 5, false).value;
        assert!(
            (v - target).abs() < 0.3,
            "value {v} should approach {target}"
        );
    }

    #[test]
    fn paper_config_matches_table_i() {
        let cfg = AgentConfig::paper();
        assert_eq!((cfg.zeta, cfg.channels, cfg.res_blocks), (16, 128, 10));
        // The paper-scale network is constructible (forward is exercised at
        // tiny scale to keep tests fast).
        let net = PolicyValueNet::new(AgentConfig::tiny(16));
        assert_eq!(net.config().zeta, 16);
    }

    #[test]
    #[should_panic(expected = "backward without training forward")]
    fn backward_needs_training_forward() {
        let mut net = tiny_net();
        let (s_p, s_a) = uniform_state(16);
        let _ = net.forward(&s_p, &s_a, 0, 5, false);
        net.backward(0, 1.0);
    }

    #[test]
    fn entropy_bonus_keeps_the_policy_flatter() {
        // Controlled comparison at zero advantage (reward == value): the
        // only weight-gradient is the entropy term, so a larger beta must
        // end with a flatter (higher-entropy) policy. BatchNorm running
        // stats drift identically in both runs, so the comparison isolates
        // the entropy gradient.
        let entropy_of = |probs: &[f32]| -> f32 {
            probs
                .iter()
                .filter(|&&p| p > 0.0)
                .map(|&p| -p * p.ln())
                .sum()
        };
        let run = |beta: f32| -> f32 {
            use mmp_nn::Optimizer;
            let mut net = tiny_net();
            let (s_p, s_a) = uniform_state(16);
            let mut opt = mmp_nn::Sgd::new(0.01, 0.0);
            for _ in 0..60 {
                let out = net.forward(&s_p, &s_a, 0, 5, true);
                net.backward_with_entropy(5, out.value, beta); // advantage 0
                opt.begin_step();
                net.visit_params(&mut |p| opt.update(p));
                net.zero_grad();
            }
            entropy_of(&net.forward(&s_p, &s_a, 0, 5, false).probs)
        };
        let plain = run(0.0);
        let regularized = run(0.5);
        assert!(
            regularized > plain,
            "entropy bonus should flatten the policy: {regularized} vs {plain}"
        );
    }

    #[test]
    fn parameter_count_scales_with_config() {
        let mut small = PolicyValueNet::new(AgentConfig {
            zeta: 4,
            channels: 4,
            res_blocks: 1,
            seed: 0,
        });
        let mut big = PolicyValueNet::new(AgentConfig {
            zeta: 4,
            channels: 8,
            res_blocks: 2,
            seed: 0,
        });
        let count = |n: &mut PolicyValueNet| {
            let mut c = 0usize;
            n.visit_params(&mut |p| c += p.value.len());
            c
        };
        assert!(count(&mut big) > count(&mut small));
    }
}
