//! ReLU and softmax.

use crate::infer::InferenceCtx;
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// ReLU as a layer (caches the activation mask for backward).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Relu {
    #[serde(skip)]
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// A fresh ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let mut out = input.clone();
        let mask: Vec<bool> = input.as_slice().iter().map(|&v| v > 0.0).collect();
        for (v, &m) in out.as_mut_slice().iter_mut().zip(&mask) {
            if !m {
                *v = 0.0;
            }
        }
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("backward without forward");
        let mut grad_in = grad_out.clone();
        for (g, m) in grad_in.as_mut_slice().iter_mut().zip(mask) {
            if !m {
                *g = 0.0;
            }
        }
        grad_in
    }

    fn infer(&self, input: &Tensor, ctx: &mut InferenceCtx) -> Tensor {
        let mut out = ctx.take_tensor(input.shape());
        for (o, &v) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
            *o = if v > 0.0 { v } else { 0.0 };
        }
        out
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Elementwise ReLU of a slice (functional form).
pub fn relu(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| v.max(0.0)).collect()
}

/// Gradient of [`relu`]: passes `grad` where the forward input was positive.
pub fn relu_backward(x: &[f32], grad: &[f32]) -> Vec<f32> {
    x.iter()
        .zip(grad)
        .map(|(&v, &g)| if v > 0.0 { g } else { 0.0 })
        .collect()
}

/// Numerically stable softmax of a slice.
///
/// An all-`-inf` input yields the uniform distribution rather than NaNs
/// (every action masked ⇒ no information).
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return vec![1.0 / logits.len() as f32; logits.len()];
    }
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relu_layer_masks_negatives() {
        let mut layer = Relu::new();
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -3.0]);
        let y = layer.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let g = layer.backward(&Tensor::from_vec(&[4], vec![1.0; 4]));
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn functional_relu_matches_layer() {
        let x = vec![-2.0, 5.0, 0.0];
        assert_eq!(relu(&x), vec![0.0, 5.0, 0.0]);
        assert_eq!(relu_backward(&x, &[1.0, 1.0, 1.0]), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn softmax_known_values() {
        let p = softmax(&[0.0, 0.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
        let p = softmax(&[1000.0, 0.0]);
        assert!(p[0] > 0.999);
    }

    #[test]
    fn softmax_handles_all_masked() {
        let p = softmax(&[f32::NEG_INFINITY, f32::NEG_INFINITY]);
        assert_eq!(p, vec![0.5, 0.5]);
        assert!(softmax(&[]).is_empty());
    }

    proptest! {
        #[test]
        fn softmax_is_a_distribution(
            logits in proptest::collection::vec(-20.0f32..20.0, 1..64),
        ) {
            let p = softmax(&logits);
            let sum: f32 = p.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }

        #[test]
        fn softmax_is_shift_invariant(
            logits in proptest::collection::vec(-10.0f32..10.0, 2..16),
            shift in -5.0f32..5.0,
        ) {
            let a = softmax(&logits);
            let shifted: Vec<f32> = logits.iter().map(|l| l + shift).collect();
            let b = softmax(&shifted);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}
