//! End-to-end CLI checks for `mmp place --checkpoint-dir DIR [--resume]`:
//! the stage ladder persists across processes, resumes are reported, and
//! malformed flag combinations are usage errors (exit code 2).

use mmp_core::RunReport;
use std::path::PathBuf;
use std::process::Command;

fn mmp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mmp"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mmp_cli_ckpt_{}_{name}", std::process::id()))
}

fn generate(path: &PathBuf) {
    let out = mmp()
        .args(["generate", "--spec", "5,0,8,40,70", "--seed", "3", "--out"])
        .arg(path)
        .output()
        .expect("spawn mmp generate");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn place(design: &PathBuf, extra: &dyn Fn(&mut Command)) -> std::process::Output {
    let mut cmd = mmp();
    cmd.args([
        "place",
        "--zeta",
        "4",
        "--episodes",
        "3",
        "--explorations",
        "4",
    ])
    .arg("--in")
    .arg(design);
    extra(&mut cmd);
    cmd.output().expect("spawn mmp place")
}

#[test]
fn checkpointed_place_then_resume_skips_completed_stages() {
    let design = tmp("resume.bks");
    let dir = tmp("resume.ckpt.d");
    let report = tmp("resume.report.json");
    let _ = std::fs::remove_dir_all(&dir);
    generate(&design);

    // First process: runs to completion, leaving done-markers behind.
    let first = place(&design, &|c| {
        c.arg("--checkpoint-dir").arg(&dir);
    });
    assert!(
        first.status.success(),
        "checkpointed place failed: {}",
        String::from_utf8_lossy(&first.stderr)
    );
    assert!(dir.join("train-done.ckpt").exists());
    assert!(dir.join("search-done.ckpt").exists());
    let first_stdout = String::from_utf8_lossy(&first.stdout).to_string();
    assert!(!first_stdout.contains("resumed from checkpoint"));

    // Second process: resumes past both stages and says so.
    let second = place(&design, &|c| {
        c.arg("--checkpoint-dir").arg(&dir).arg("--resume");
        c.arg("--report-json").arg(&report);
    });
    assert!(
        second.status.success(),
        "resumed place failed: {}",
        String::from_utf8_lossy(&second.stderr)
    );
    let stdout = String::from_utf8_lossy(&second.stdout);
    assert!(
        stdout.contains("resumed from checkpoint: train-done, search-done"),
        "stdout: {stdout}"
    );

    // Both processes print the same final HPWL value (timings differ, so
    // compare only up to the first comma of the `HPWL = …` line).
    let hpwl = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("HPWL = "))
            .and_then(|l| l.split(',').next())
            .map(str::to_owned)
            .expect("HPWL line")
    };
    assert_eq!(hpwl(&stdout), hpwl(&first_stdout));

    // The resume is recorded in the machine-readable run report.
    let parsed = RunReport::from_json(&std::fs::read_to_string(&report).expect("report file"))
        .expect("report parses");
    assert!(parsed.checkpoint.enabled);
    assert_eq!(parsed.checkpoint.resumes, vec!["train-done", "search-done"]);
    assert_eq!(parsed.checkpoint.writes, 0);

    std::fs::remove_file(&design).ok();
    std::fs::remove_file(&report).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_without_a_checkpoint_dir_is_a_usage_error() {
    let design = tmp("orphan_resume.bks");
    generate(&design);
    let out = place(&design, &|c| {
        c.arg("--resume");
    });
    assert_eq!(out.status.code(), Some(2), "expected usage exit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--resume needs --checkpoint-dir"),
        "stderr: {stderr}"
    );
    std::fs::remove_file(&design).ok();
}

#[test]
fn bare_checkpoint_dir_flag_is_a_usage_error() {
    let design = tmp("bare_ckpt.bks");
    generate(&design);
    // `--checkpoint-dir` immediately followed by another flag parses as a
    // bare toggle, which the CLI rejects (it wants a directory path).
    let out = place(&design, &|c| {
        c.args(["--checkpoint-dir", "--seed", "5"]);
    });
    assert_eq!(out.status.code(), Some(2), "expected usage exit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--checkpoint-dir wants a directory path"),
        "stderr: {stderr}"
    );
    std::fs::remove_file(&design).ok();
}
