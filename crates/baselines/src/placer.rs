//! The shared baseline interface and the random reference placer.

use mmp_analytic::{GlobalPlacer, GlobalPlacerConfig};
use mmp_cluster::{ClusterParams, Coarsener};
use mmp_geom::Grid;
use mmp_legal::MacroLegalizer;
use mmp_netlist::{Design, Placement};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A macro placer under comparison: produces a legal macro placement for a
/// design. Object-safe so benchmark tables can iterate over a
/// heterogeneous list.
pub trait MacroPlacer {
    /// Short name for report rows (e.g. `"MaskPlace-like"`).
    fn name(&self) -> &str;

    /// Produces a placement whose macros are legal (no overlaps, inside the
    /// region for feasible designs). Cell coordinates in the result are
    /// advisory; scoring re-places them.
    fn place_macros(&self, design: &Design) -> Placement;
}

/// Scores any macro placement the same way the paper scores every
/// contender: cells placed by the analytical mixed-size placer (macros
/// fixed), full-netlist HPWL returned.
pub fn score_hpwl(design: &Design, macro_placement: &Placement) -> f64 {
    GlobalPlacer::new(GlobalPlacerConfig::fast())
        .place_cells(design, macro_placement)
        .hpwl
}

/// The availability-weighted random policy (also the paper's reward
/// calibration policy), pushed through the shared legalizer.
#[derive(Debug, Clone)]
pub struct RandomPlacer {
    /// RNG seed.
    pub seed: u64,
    /// Allocation grid resolution ζ.
    pub zeta: usize,
}

impl RandomPlacer {
    /// A random placer over a ζ×ζ grid.
    pub fn new(seed: u64, zeta: usize) -> Self {
        RandomPlacer { seed, zeta }
    }
}

impl MacroPlacer for RandomPlacer {
    fn name(&self) -> &str {
        "Random"
    }

    fn place_macros(&self, design: &Design) -> Placement {
        let grid = Grid::new(*design.region(), self.zeta);
        let coarse = Coarsener::new(&ClusterParams::paper(grid.cell_area()))
            .coarsen(design, &Placement::initial(design));
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xa2d0);
        let assignment: Vec<_> = coarse
            .macro_groups()
            .iter()
            .map(|_| grid.unflatten(rng.gen_range(0..grid.cell_count())))
            .collect();
        MacroLegalizer::new()
            .legalize(design, &coarse, &assignment, &grid)
            .expect("assignment matches group count")
            .placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_netlist::SyntheticSpec;

    #[test]
    fn random_placer_is_legal_and_deterministic() {
        let d = SyntheticSpec::small("rp", 8, 2, 8, 60, 100, true, 1).generate();
        let p = RandomPlacer::new(7, 8);
        let a = p.place_macros(&d);
        let b = p.place_macros(&d);
        assert_eq!(a, b);
        assert!(a.macro_overlap_area(&d) < 1e-6);
        assert!(score_hpwl(&d, &a) > 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        let d = SyntheticSpec::small("rp2", 8, 0, 8, 60, 100, false, 2).generate();
        let a = RandomPlacer::new(1, 8).place_macros(&d);
        let b = RandomPlacer::new(2, 8).place_macros(&d);
        assert_ne!(a, b);
    }

    #[test]
    fn trait_objects_compose() {
        let placers: Vec<Box<dyn MacroPlacer>> = vec![Box::new(RandomPlacer::new(0, 8))];
        assert_eq!(placers[0].name(), "Random");
    }
}
