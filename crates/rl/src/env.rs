//! The macro-group allocation environment (the MDP of Sec. III-A).

use crate::state::{availability, Footprint, Occupancy};
use mmp_cluster::CoarsenedNetlist;
use mmp_geom::{Grid, GridIndex, Rect};
use mmp_netlist::{Design, Placement};

/// One observation ⟨s_p, s_a, t⟩ handed to the agent.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    /// Flat ζ×ζ occupancy map (row-major from the bottom).
    pub s_p: Vec<f32>,
    /// Flat ζ×ζ availability map for the next macro group (Eq. 4).
    pub s_a: Vec<f32>,
    /// Index of the macro group to place (the position-embedding input).
    pub t: usize,
    /// Episode length (total macro groups).
    pub total: usize,
}

/// The allocation environment: place macro groups (largest first, the order
/// of Algorithm 1) onto a ζ×ζ grid.
///
/// The environment itself is cheap — it tracks occupancy and availability.
/// Scoring a finished episode (legalization + cell placement + HPWL) is the
/// expensive part and lives in [`crate::eval`].
///
/// # Example
///
/// ```
/// use mmp_cluster::{ClusterParams, Coarsener};
/// use mmp_geom::Grid;
/// use mmp_netlist::{Placement, SyntheticSpec};
/// use mmp_rl::PlacementEnv;
///
/// let design = SyntheticSpec::small("env", 6, 0, 8, 40, 70, false, 3).generate();
/// let grid = Grid::new(*design.region(), 8);
/// let coarse = Coarsener::new(&ClusterParams::paper(grid.cell_area()))
///     .coarsen(&design, &Placement::initial(&design));
/// let mut env = PlacementEnv::new(&design, &coarse, grid.clone());
/// while !env.is_terminal() {
///     let state = env.state();
///     let action = state.s_a.iter().enumerate()
///         .max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap();
///     env.step(action);
/// }
/// assert_eq!(env.assignment().len(), coarse.macro_groups().len());
/// ```
#[derive(Debug, Clone)]
pub struct PlacementEnv<'d> {
    design: &'d Design,
    coarse: &'d CoarsenedNetlist,
    grid: Grid,
    footprints: Vec<Footprint>,
    base_occupancy: Occupancy,
    occupancy: Occupancy,
    assignment: Vec<GridIndex>,
    t: usize,
}

impl<'d> PlacementEnv<'d> {
    /// Creates the environment. Preplaced macros are burned into the base
    /// occupancy so the agent sees them as blocked area from step 0.
    pub fn new(design: &'d Design, coarse: &'d CoarsenedNetlist, grid: Grid) -> Self {
        let mut base = Occupancy::new(grid.zeta());
        for id in design.preplaced_macros() {
            let m = design.macro_(id);
            // why: invariant, not input: `preplaced_macros()` yields exactly the
            // macros constructed with a fixed center.
            #[allow(clippy::expect_used)]
            let c = m.fixed_center.expect("preplaced macro has a center");
            base.add_rect(&grid, &Rect::centered_at(c, m.width, m.height));
        }
        let footprints = coarse
            .macro_groups()
            .iter()
            .map(|g| Footprint::new(&grid, g.width, g.height))
            .collect();
        PlacementEnv {
            design,
            coarse,
            grid,
            footprints,
            occupancy: base.clone(),
            base_occupancy: base,
            assignment: Vec::new(),
            t: 0,
        }
    }

    /// The design being placed.
    pub fn design(&self) -> &Design {
        self.design
    }

    /// The coarsened netlist being allocated.
    pub fn coarse(&self) -> &CoarsenedNetlist {
        self.coarse
    }

    /// The allocation grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Episode length: number of macro groups.
    pub fn episode_len(&self) -> usize {
        self.footprints.len()
    }

    /// Resets to the empty placement (keeping preplaced occupancy).
    pub fn reset(&mut self) {
        self.occupancy = self.base_occupancy.clone();
        self.assignment.clear();
        self.t = 0;
    }

    /// `true` once every macro group has been allocated.
    pub fn is_terminal(&self) -> bool {
        self.t >= self.footprints.len()
    }

    /// The current observation.
    ///
    /// # Panics
    ///
    /// Panics when called on a terminal state (there is no next group).
    pub fn state(&self) -> State {
        assert!(!self.is_terminal(), "no state after the final step");
        State {
            s_p: self.occupancy.as_slice().to_vec(),
            s_a: availability(&self.occupancy, &self.footprints[self.t]),
            t: self.t,
            total: self.footprints.len(),
        }
    }

    /// Allocates the current macro group to the cell with flat index
    /// `action` and advances the episode.
    ///
    /// # Panics
    ///
    /// Panics on terminal states or out-of-range actions.
    pub fn step(&mut self, action: usize) {
        assert!(!self.is_terminal(), "step on terminal state");
        let idx = self.grid.unflatten(action);
        self.occupancy.place(&self.footprints[self.t], idx);
        self.assignment.push(idx);
        self.t += 1;
    }

    /// The grid assignment accumulated so far (one entry per placed group).
    pub fn assignment(&self) -> &[GridIndex] {
        &self.assignment
    }

    /// Centers of the assigned groups' footprints (anchored lower-left, as
    /// s_p assumes) — used by the coarse evaluator.
    pub fn group_centers(&self) -> Vec<mmp_geom::Point> {
        self.assignment
            .iter()
            .enumerate()
            .map(|(g, idx)| {
                let cell = self.grid.cell_at(*idx);
                let grp = &self.coarse.macro_groups()[g];
                mmp_geom::Point::new(
                    cell.x + grp.width.min(self.grid.cell_width() * 4.0) / 2.0,
                    cell.y + grp.height.min(self.grid.cell_height() * 4.0) / 2.0,
                )
            })
            .collect()
    }

    /// Convenience: the macro placement induced by fixing each group at its
    /// assigned cell (groups' members at the group footprint center) —
    /// the *unlegalized* placement some baselines and tests use.
    pub fn rough_placement(&self) -> Placement {
        let mut pl = Placement::initial(self.design);
        let centers = self.group_centers();
        for (g, grp) in self
            .coarse
            .macro_groups()
            .iter()
            .enumerate()
            .take(self.assignment.len())
        {
            for &m in &grp.members {
                pl.set_macro_center(m, centers[g]);
            }
        }
        pl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_cluster::{ClusterParams, Coarsener};
    use mmp_netlist::SyntheticSpec;

    fn setup(macros: usize, preplaced: usize, seed: u64) -> (Design, CoarsenedNetlist, Grid) {
        let d = SyntheticSpec::small("env", macros, preplaced, 8, 60, 100, true, seed).generate();
        let grid = Grid::new(*d.region(), 8);
        let coarse = Coarsener::new(&ClusterParams::paper(grid.cell_area()))
            .coarsen(&d, &Placement::initial(&d));
        (d, coarse, grid)
    }

    #[test]
    fn episode_walks_through_all_groups() {
        let (d, coarse, grid) = setup(8, 0, 1);
        let mut env = PlacementEnv::new(&d, &coarse, grid);
        let total = env.episode_len();
        assert_eq!(total, coarse.macro_groups().len());
        let mut steps = 0;
        while !env.is_terminal() {
            let s = env.state();
            assert_eq!(s.t, steps);
            assert_eq!(s.total, total);
            env.step(0);
            steps += 1;
        }
        assert_eq!(steps, total);
        assert_eq!(env.assignment().len(), total);
    }

    #[test]
    fn reset_restores_initial_state() {
        let (d, coarse, grid) = setup(6, 0, 2);
        let mut env = PlacementEnv::new(&d, &coarse, grid);
        let s0 = env.state();
        env.step(3);
        env.reset();
        assert_eq!(env.state(), s0);
        assert!(env.assignment().is_empty());
    }

    #[test]
    fn occupancy_grows_monotonically_along_episode() {
        let (d, coarse, grid) = setup(8, 0, 3);
        let mut env = PlacementEnv::new(&d, &coarse, grid);
        let mut prev_sum = -1.0f32;
        while !env.is_terminal() {
            let s = env.state();
            let sum: f32 = s.s_p.iter().sum();
            assert!(sum >= prev_sum);
            prev_sum = sum;
            env.step(s.t % 64);
        }
    }

    #[test]
    fn preplaced_macros_block_cells_from_step_zero() {
        let (d, coarse, grid) = setup(4, 4, 4);
        let env = PlacementEnv::new(&d, &coarse, grid);
        let s = env.state();
        // The generator packs preplaced macros along the bottom boundary,
        // so the bottom row must show occupancy.
        let bottom: f32 = s.s_p[0..8].iter().sum();
        assert!(bottom > 0.0, "preplaced occupancy missing");
    }

    #[test]
    fn repeated_actions_fill_a_cell() {
        let (d, coarse, grid) = setup(8, 0, 5);
        let mut env = PlacementEnv::new(&d, &coarse, grid);
        // Hammer the same cell; its availability must shrink.
        let first = env.state().s_a[27];
        for _ in 0..env.episode_len().min(4) {
            env.step(27);
        }
        if !env.is_terminal() {
            let later = env.state().s_a[27];
            assert!(later <= first);
        }
    }

    #[test]
    #[should_panic(expected = "terminal")]
    fn step_after_terminal_panics() {
        let (d, coarse, grid) = setup(4, 0, 6);
        let mut env = PlacementEnv::new(&d, &coarse, grid);
        while !env.is_terminal() {
            env.step(0);
        }
        env.step(0);
    }

    #[test]
    fn rough_placement_moves_members_to_cells() {
        let (d, coarse, grid) = setup(6, 0, 7);
        let mut env = PlacementEnv::new(&d, &coarse, grid);
        while !env.is_terminal() {
            env.step(9);
        }
        let pl = env.rough_placement();
        let cell = env.grid().cell_at(GridIndex::new(1, 1));
        // Every movable macro's center lies near the cell (anchored there).
        for id in d.movable_macros() {
            let c = pl.macro_center(id);
            assert!(c.x >= cell.x && c.y >= cell.y, "{c}");
        }
    }
}
