//! Typed indices into a [`Design`](crate::Design).
//!
//! Macros, cells, pads and nets live in dense `Vec`s inside the design; the
//! newtypes here keep the index spaces statically apart (C-NEWTYPE) so a
//! macro index can never be used to address a cell.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The dense vector index this id addresses.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// The raw `u32` payload, for `u32`-keyed dense caches. Unlike
            /// `id.index() as u32` at call sites, this cannot truncate.
            #[inline]
            pub fn raw(self) -> u32 {
                self.0
            }

            /// Builds an id from a dense vector index.
            ///
            /// # Panics
            ///
            /// Panics if `index` exceeds `u32::MAX`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect("id index exceeds u32 range"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_newtype!(
    /// Identifies a macro (movable or preplaced) within a design.
    MacroId, "M"
);
id_newtype!(
    /// Identifies a standard cell within a design.
    CellId, "C"
);
id_newtype!(
    /// Identifies a fixed I/O pad within a design.
    PadId, "P"
);
id_newtype!(
    /// Identifies a net within a design.
    NetId, "N"
);

/// A reference to any placeable or fixed node a net pin can attach to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeRef {
    /// A macro (movable or preplaced).
    Macro(MacroId),
    /// A standard cell.
    Cell(CellId),
    /// A fixed I/O pad.
    Pad(PadId),
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Macro(id) => write!(f, "{id}"),
            NodeRef::Cell(id) => write!(f, "{id}"),
            NodeRef::Pad(id) => write!(f, "{id}"),
        }
    }
}

impl From<MacroId> for NodeRef {
    fn from(id: MacroId) -> Self {
        NodeRef::Macro(id)
    }
}

impl From<CellId> for NodeRef {
    fn from(id: CellId) -> Self {
        NodeRef::Cell(id)
    }
}

impl From<PadId> for NodeRef {
    fn from(id: PadId) -> Self {
        NodeRef::Pad(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_indices() {
        assert_eq!(MacroId::from_index(7).index(), 7);
        assert_eq!(CellId::from_index(0).index(), 0);
        assert_eq!(NetId::from_index(123).index(), 123);
        assert_eq!(usize::from(PadId(9)), 9);
    }

    #[test]
    fn display_tags_distinguish_spaces() {
        assert_eq!(MacroId(3).to_string(), "M3");
        assert_eq!(CellId(3).to_string(), "C3");
        assert_eq!(PadId(3).to_string(), "P3");
        assert_eq!(NetId(3).to_string(), "N3");
        assert_eq!(NodeRef::Macro(MacroId(1)).to_string(), "M1");
    }

    #[test]
    fn node_ref_from_ids() {
        assert_eq!(NodeRef::from(MacroId(1)), NodeRef::Macro(MacroId(1)));
        assert_eq!(NodeRef::from(CellId(2)), NodeRef::Cell(CellId(2)));
        assert_eq!(NodeRef::from(PadId(3)), NodeRef::Pad(PadId(3)));
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        assert!(MacroId(1) < MacroId(2));
        // mmp-lint: allow(hash-order) why: this test exercises the Hash impl itself; the set is never iterated
        let set: HashSet<NodeRef> = [NodeRef::Macro(MacroId(0)), NodeRef::Cell(CellId(0))]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }
}
