//! The project lint rules clippy cannot express (R1–R6).
//!
//! Every rule works on the token stream of [`crate::lexer`], so string
//! literals and comments never produce false positives. Rules are
//! heuristic by design: they match the conventions this workspace
//! actually uses (`HashMap` by that name, `Instant::now` spelled out) —
//! aliasing a banned item through `use ... as` would evade them, and
//! code review owns that residue.

use crate::lexer::{Comment, Lexed, Tok};
use crate::LintConfig;

/// Rule R1: hashed-collection order must not reach placement decisions.
pub const HASH_ORDER: &str = "hash-order";
/// Rule R2: `partial_cmp` on floats panics or lies on NaN; use `total_cmp`.
pub const PARTIAL_CMP: &str = "partial-cmp";
/// Rule R3: wall-clock reads only in the sanctioned budget/obs modules.
pub const WALLCLOCK: &str = "wallclock";
/// Rule R4: randomness only from the vendored seeded RNG.
pub const RNG_SOURCE: &str = "rng-source";
/// Rule R5: every `#[allow(..)]` of a denied lint carries a `why:`.
pub const ALLOW_WHY: &str = "allow-why";
/// Rule R6: machine-derived thread counts never size compute partitions.
pub const PARALLELISM: &str = "parallelism";
/// Rule R7: durable-state crates mutate the filesystem only through the
/// `mmp-vfs` chokepoint, never via bare `std::fs`.
pub const FS_ROUTE: &str = "fs-route";
/// Meta rule: malformed or unused `mmp-lint:` suppression comments.
/// Not suppressible — a broken suppression must never silence itself.
pub const SUPPRESSION: &str = "suppression";

/// Static rule descriptions, used by `mmp-lint rules` and the docs test.
pub const RULES: &[(&str, &str)] = &[
    (
        HASH_ORDER,
        "decision crates must not use HashMap/HashSet (iteration order is \
         seed-dependent); use BTreeMap/BTreeSet or sorted keys, or suppress \
         with a why: proving the collection is never iterated",
    ),
    (
        PARTIAL_CMP,
        "partial_cmp on floats panics or mis-sorts on NaN; use f64::total_cmp",
    ),
    (
        WALLCLOCK,
        "Instant::now/SystemTime::now outside the sanctioned budget/obs \
         timing modules lets wall-clock leak into placement decisions",
    ),
    (
        RNG_SOURCE,
        "thread_rng/rand::random/RandomState are seeded from the OS; all \
         randomness must flow from the vendored seeded RNG",
    ),
    (
        ALLOW_WHY,
        "an #[allow(..)] of a denied lint needs an adjacent comment with a \
         why: justification",
    ),
    (
        PARALLELISM,
        "available_parallelism outside the pool/bench edges derives work \
         partitions from the machine; worker counts must come from explicit \
         configuration (mmp_pool::ThreadPool)",
    ),
    (
        FS_ROUTE,
        "checkpoint/journal crates must not mutate the filesystem through \
         bare std::fs (write/rename/remove/create_dir/...); every durable \
         write routes through the mmp-vfs chokepoint so fault injection \
         and the crash-consistency torture harness see it",
    ),
    (
        SUPPRESSION,
        "mmp-lint suppression comments must parse, carry a non-empty why:, \
         name known rules, and actually suppress something",
    ),
];

/// `true` when `id` names a real (suppressible or meta) rule.
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == id)
}

/// One rule hit before suppression matching.
#[derive(Debug, Clone)]
pub struct RawFinding {
    pub rule: &'static str,
    pub line: usize,
    pub col: usize,
    pub message: String,
}

/// Runs every rule over one lexed file. `path_rel` is the
/// workspace-relative path with `/` separators (used for crate scoping).
pub fn scan(path_rel: &str, lexed: &Lexed, cfg: &LintConfig) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let toks = &lexed.tokens;
    let decision = cfg.is_decision_crate(path_rel);
    let sanctioned_clock = cfg.is_wallclock_sanctioned(path_rel);
    let sanctioned_parallelism = cfg.is_parallelism_sanctioned(path_rel);
    let fs_routed = cfg.is_fs_route_scoped(path_rel);

    // R7 stops at the unit-test module: tests legitimately tamper with
    // files (torn writes, orphaned temps) to exercise the recovery paths,
    // and the workspace convention keeps `mod tests` last in the file.
    let mut in_tests = false;

    // R1 needs to skip `use` declarations: importing a hashed collection
    // is inert, only construction/annotation sites matter (and they keep
    // the import alive). Track `use ... ;` spans in token order.
    let mut in_use = false;
    // One R1 finding per line, not per token, so a multi-token type like
    // `HashMap<GridIndex, Vec<MacroId>>` reads as one violation.
    let mut last_hash_line = 0usize;

    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("use") {
            in_use = true;
        } else if in_use && t.is_punct(';') {
            in_use = false;
        }

        // R1 — hashed collections in decision crates.
        if decision
            && !in_use
            && (t.is_ident("HashMap") || t.is_ident("HashSet"))
            && t.line != last_hash_line
        {
            last_hash_line = t.line;
            out.push(RawFinding {
                rule: HASH_ORDER,
                line: t.line,
                col: t.col,
                message: format!(
                    "{} in a decision crate: iteration order is seed-dependent; \
                     use BTreeMap/BTreeSet or sorted keys (or suppress with a \
                     why: proving it is never iterated)",
                    t.text
                ),
            });
        }

        // R2 — partial_cmp anywhere.
        if t.is_ident("partial_cmp") {
            out.push(RawFinding {
                rule: PARTIAL_CMP,
                line: t.line,
                col: t.col,
                message: "partial_cmp on floats panics or mis-sorts on NaN; \
                          use f64::total_cmp"
                    .to_owned(),
            });
        }

        // R3 — `Instant::now` / `SystemTime::now` outside sanctioned modules.
        if !sanctioned_clock
            && (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && path_sep(toks, i)
            && toks.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            out.push(RawFinding {
                rule: WALLCLOCK,
                line: t.line,
                col: t.col,
                message: format!(
                    "{}::now outside the sanctioned timing modules: wall-clock \
                     must flow through the budget/obs layers, never into \
                     placement decisions",
                    t.text
                ),
            });
        }

        // R6 — machine-derived parallelism outside the pool/bench edges.
        if !sanctioned_parallelism && t.is_ident("available_parallelism") {
            out.push(RawFinding {
                rule: PARALLELISM,
                line: t.line,
                col: t.col,
                message: "available_parallelism derives a work partition from \
                          the machine, which breaks run-to-run determinism \
                          across hosts; take the worker count from explicit \
                          configuration (mmp_pool::ThreadPool)"
                    .to_owned(),
            });
        }

        // R7 — bare std::fs mutations in the durable-state crates. The
        // `use` skip does not apply: importing `std::fs::write` into a
        // routed file is the same evasion as calling it qualified.
        if t.is_ident("mod") && toks.get(i + 1).is_some_and(|n| n.is_ident("tests")) {
            in_tests = true;
        }
        if fs_routed && !in_tests {
            if t.is_ident("fs")
                && path_sep(toks, i)
                && toks.get(i + 3).is_some_and(|n| is_fs_mutation(&n.text))
            {
                let name = &toks[i + 3].text;
                out.push(RawFinding {
                    rule: FS_ROUTE,
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "fs::{name} bypasses the mmp-vfs chokepoint: durable \
                         mutations here are invisible to fault injection and \
                         the torture harness; route through Vfs instead"
                    ),
                });
            }
            if (t.is_ident("File") || t.is_ident("OpenOptions"))
                && path_sep(toks, i)
                && toks
                    .get(i + 3)
                    .is_some_and(|n| n.is_ident("create") || n.is_ident("new"))
            {
                out.push(RawFinding {
                    rule: FS_ROUTE,
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "{}::{} opens a writable handle outside the mmp-vfs \
                         chokepoint; route durable writes through Vfs instead",
                        t.text,
                        toks[i + 3].text
                    ),
                });
            }
        }

        // R4 — OS-seeded randomness.
        if t.is_ident("thread_rng") || t.is_ident("RandomState") {
            out.push(RawFinding {
                rule: RNG_SOURCE,
                line: t.line,
                col: t.col,
                message: format!(
                    "{} is seeded from the OS; use the vendored seeded RNG",
                    t.text
                ),
            });
        }
        if t.is_ident("rand")
            && path_sep(toks, i)
            && toks.get(i + 3).is_some_and(|n| n.is_ident("random"))
        {
            out.push(RawFinding {
                rule: RNG_SOURCE,
                line: t.line,
                col: t.col,
                message: "rand::random is seeded from the OS; use the vendored \
                          seeded RNG"
                    .to_owned(),
            });
        }
    }

    scan_allow_attrs(lexed, cfg, &mut out);
    out
}

/// Mutating entry points of `std::fs` (R7). Reads (`read`, `read_dir`,
/// `metadata`, `File::open`) are deliberately absent: only mutations
/// need the chokepoint, and reads through `Vfs` stay optional.
fn is_fs_mutation(name: &str) -> bool {
    matches!(
        name,
        "write"
            | "rename"
            | "remove_file"
            | "remove_dir"
            | "remove_dir_all"
            | "create_dir"
            | "create_dir_all"
            | "copy"
            | "hard_link"
            | "set_permissions"
    )
}

/// `toks[i+1..=i+2]` is `::`.
fn path_sep(toks: &[Tok], i: usize) -> bool {
    toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
        && toks.get(i + 2).is_some_and(|b| b.is_punct(':'))
}

/// R5 — walks `#[allow(...)]` / `#![allow(...)]` attributes; any denied
/// lint inside needs a `why:` in an adjacent comment (trailing on the
/// attribute's line, or in the contiguous comment block directly above).
fn scan_allow_attrs(lexed: &Lexed, cfg: &LintConfig, out: &mut Vec<RawFinding>) {
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct('#') {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        let attr_col = toks[i].col;
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('!')) {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        if !toks.get(j + 1).is_some_and(|t| t.is_ident("allow"))
            || !toks.get(j + 2).is_some_and(|t| t.is_punct('('))
        {
            i += 1;
            continue;
        }
        // Collect `::`-joined paths between the matching parentheses.
        let mut depth = 0usize;
        let mut k = j + 2;
        let mut paths: Vec<String> = Vec::new();
        let mut current = String::new();
        while let Some(t) = toks.get(k) {
            match t.kind {
                crate::lexer::TokKind::Punct('(') => depth += 1,
                crate::lexer::TokKind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                crate::lexer::TokKind::Punct(':') => current.push(':'),
                crate::lexer::TokKind::Punct(',') if !current.is_empty() => {
                    paths.push(std::mem::take(&mut current));
                }
                crate::lexer::TokKind::Ident => current.push_str(&t.text),
                _ => {}
            }
            k += 1;
        }
        if !current.is_empty() {
            paths.push(current);
        }
        for p in &paths {
            if cfg.denied_lints.iter().any(|d| d == p)
                && !has_adjacent_why(&lexed.comments, attr_line)
            {
                out.push(RawFinding {
                    rule: ALLOW_WHY,
                    line: attr_line,
                    col: attr_col,
                    message: format!(
                        "#[allow({p})] relaxes a denied lint without a why: \
                         justification; add `// why: ...` on or directly \
                         above the attribute"
                    ),
                });
            }
        }
        i = k.max(i + 1);
    }
}

/// A comment containing `why:` on `attr_line`, or in the contiguous run
/// of comment-bearing lines immediately above it.
fn has_adjacent_why(comments: &[Comment], attr_line: usize) -> bool {
    let has = |line: usize| comments.iter().any(|c| c.line == line);
    let why = |line: usize| {
        comments
            .iter()
            .any(|c| c.line == line && c.text.contains("why:"))
    };
    if why(attr_line) {
        return true;
    }
    let mut line = attr_line;
    while line > 1 && has(line - 1) {
        line -= 1;
        if why(line) {
            return true;
        }
    }
    false
}
