//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored `serde` crate's `Value` model without `syn`/`quote` (neither is
//! available offline): the item is parsed directly from the raw
//! [`proc_macro::TokenStream`] and the impl is generated as a string.
//!
//! Supported shapes: non-generic structs (named, tuple, unit) and enums
//! (unit, tuple and struct variants) with externally tagged encoding, plus
//! the `#[serde(skip)]`, `#[serde(default)]` and
//! `#[serde(default = "path")]` field attributes. Generic
//! items panic with a clear message — nothing in this workspace derives on
//! generics.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default, Clone)]
struct FieldAttrs {
    skip: bool,
    default: bool,
    /// `#[serde(default = "path")]`: call `path()` for a missing field
    /// instead of `Default::default()`.
    default_path: Option<String>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(Vec<FieldAttrs>),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    kind: Kind,
}

fn is_punct(tok: Option<&TokenTree>, ch: char) -> bool {
    matches!(tok, Some(TokenTree::Punct(p)) if p.as_char() == ch)
}

fn ident_of(tok: Option<&TokenTree>) -> Option<String> {
    match tok {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Scans one `#[...]` attribute's bracket-group tokens, folding any
/// `serde(...)` arguments into `attrs`.
fn scan_attr(group_tokens: Vec<TokenTree>, attrs: &mut FieldAttrs) {
    let mut it = group_tokens.into_iter();
    let Some(TokenTree::Ident(head)) = it.next() else {
        return;
    };
    if head.to_string() != "serde" {
        return;
    }
    let Some(TokenTree::Group(args)) = it.next() else {
        return;
    };
    let toks: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        if let TokenTree::Ident(id) = &toks[i] {
            match id.to_string().as_str() {
                "skip" => attrs.skip = true,
                "default" => {
                    attrs.default = true;
                    if is_punct(toks.get(i + 1), '=') {
                        let Some(TokenTree::Literal(lit)) = toks.get(i + 2) else {
                            panic!(
                                "serde_derive stub: #[serde(default = ...)] takes a \
                                 string literal naming a function"
                            );
                        };
                        let path = lit.to_string();
                        let path = path.trim_matches('"');
                        if path.is_empty() {
                            panic!("serde_derive stub: empty path in #[serde(default = ...)]");
                        }
                        attrs.default_path = Some(path.to_string());
                        i += 2;
                    }
                }
                other => panic!("serde_derive stub: unsupported #[serde({other})]"),
            }
        }
        i += 1;
    }
}

/// Advances `i` past `#[...]` attributes (collecting serde args) and a
/// `pub`/`pub(...)` visibility prefix.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize, attrs: &mut FieldAttrs) {
    loop {
        if is_punct(toks.get(*i), '#') {
            if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
                if g.delimiter() == Delimiter::Bracket {
                    scan_attr(g.stream().into_iter().collect(), attrs);
                    *i += 2;
                    continue;
                }
            }
        }
        if ident_of(toks.get(*i)).as_deref() == Some("pub") {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
            continue;
        }
        break;
    }
}

/// Splits `toks` on commas that sit outside any `<...>` type-argument
/// nesting. Groups are atomic token trees, so brackets/braces/parens never
/// leak commas here.
fn split_top_level_commas(toks: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for tok in toks {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tok);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level_commas(stream.into_iter().collect())
        .into_iter()
        .map(|toks| {
            let mut attrs = FieldAttrs::default();
            let mut i = 0;
            skip_attrs_and_vis(&toks, &mut i, &mut attrs);
            let name = ident_of(toks.get(i)).expect("serde_derive stub: expected field name");
            Field { name, attrs }
        })
        .collect()
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<FieldAttrs> {
    split_top_level_commas(stream.into_iter().collect())
        .into_iter()
        .map(|toks| {
            let mut attrs = FieldAttrs::default();
            let mut i = 0;
            skip_attrs_and_vis(&toks, &mut i, &mut attrs);
            attrs
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level_commas(stream.into_iter().collect())
        .into_iter()
        .map(|toks| {
            let mut attrs = FieldAttrs::default();
            let mut i = 0;
            skip_attrs_and_vis(&toks, &mut i, &mut attrs);
            let name = ident_of(toks.get(i)).expect("serde_derive stub: expected variant name");
            i += 1;
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(parse_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Variant { name, fields }
        })
        .collect()
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut outer = FieldAttrs::default();
    skip_attrs_and_vis(&toks, &mut i, &mut outer);
    let kw = ident_of(toks.get(i)).expect("serde_derive stub: expected struct/enum");
    i += 1;
    let name = ident_of(toks.get(i)).expect("serde_derive stub: expected type name");
    i += 1;
    if is_punct(toks.get(i), '<') {
        panic!("serde_derive stub: generic types are not supported (derive on `{name}`)");
    }
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(parse_tuple_fields(g.stream())))
            }
            _ => Kind::Struct(Fields::Unit),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde_derive stub: malformed enum `{name}`"),
        },
        other => panic!("serde_derive stub: cannot derive on `{other}` items"),
    };
    Input { name, kind }
}

fn ser_named_fields(fields: &[Field], access_prefix: &str) -> String {
    let mut body = String::new();
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        body.push_str(&format!(
            "__m.push((\"{0}\".to_string(), ::serde::Serialize::serialize(&{1}{0})));",
            f.name, access_prefix
        ));
    }
    format!(
        "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new(); {body} ::serde::Value::Map(__m)"
    )
}

fn de_named_fields(fields: &[Field], source: &str) -> String {
    fields
        .iter()
        .map(|f| {
            if f.attrs.skip {
                return format!("{}: ::std::default::Default::default(),", f.name);
            }
            let missing = if let Some(path) = &f.attrs.default_path {
                format!("{path}()")
            } else if f.attrs.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!("return Err(::serde::Error::missing_field(\"{}\"))", f.name)
            };
            format!(
                "{0}: match ::serde::map_get({1}, \"{0}\") {{ \
                 Some(__v) => ::serde::Deserialize::deserialize(__v)?, \
                 None => {2}, }},",
                f.name, source, missing
            )
        })
        .collect()
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Named(fields)) => ser_named_fields(fields, "self."),
        Kind::Struct(Fields::Tuple(attrs)) => {
            if attrs.len() == 1 {
                "::serde::Serialize::serialize(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..attrs.len())
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
            }
        }
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),")
                        }
                        Fields::Tuple(attrs) => {
                            let binds: Vec<String> =
                                (0..attrs.len()).map(|i| format!("__f{i}")).collect();
                            let payload = if attrs.len() == 1 {
                                "::serde::Serialize::serialize(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::serialize({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Map(vec![(\
                                 \"{vn}\".to_string(), {payload})]),",
                                binds = binds.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let pat: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                            let inner: String = fields
                                .iter()
                                .filter(|f| !f.attrs.skip)
                                .map(|f| {
                                    format!(
                                        "(\"{0}\".to_string(), \
                                         ::serde::Serialize::serialize({0})),",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {pat} }} => ::serde::Value::Map(vec![(\
                                 \"{vn}\".to_string(), ::serde::Value::Map(vec![{inner}]))]),",
                                pat = pat.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] #[allow(clippy::all)] \
         impl ::serde::Serialize for {name} {{ \
         fn serialize(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Named(fields)) => {
            format!("Ok({name} {{ {} }})", de_named_fields(fields, "__value"))
        }
        Kind::Struct(Fields::Tuple(attrs)) => {
            if attrs.len() == 1 {
                format!("Ok({name}(::serde::Deserialize::deserialize(__value)?))")
            } else {
                let n = attrs.len();
                let items: Vec<String> = (0..n)
                    .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                    .collect();
                format!(
                    "match __value {{ \
                     ::serde::Value::Seq(__items) if __items.len() == {n} => \
                     Ok({name}({items})), \
                     _ => Err(::serde::Error::custom(\
                     \"expected sequence of length {n} for {name}\")), }}",
                    items = items.join(", ")
                )
            }
        }
        Kind::Struct(Fields::Unit) => format!("Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    let build = match &v.fields {
                        Fields::Unit => unreachable!(),
                        Fields::Tuple(attrs) if attrs.len() == 1 => format!(
                            "Ok({name}::{vn}(::serde::Deserialize::deserialize(__payload)?))"
                        ),
                        Fields::Tuple(attrs) => {
                            let n = attrs.len();
                            let items: Vec<String> = (0..n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "match __payload {{ \
                                 ::serde::Value::Seq(__items) if __items.len() == {n} => \
                                 Ok({name}::{vn}({items})), \
                                 _ => Err(::serde::Error::custom(\
                                 \"expected sequence of length {n} for {name}::{vn}\")), }}",
                                items = items.join(", ")
                            )
                        }
                        Fields::Named(fields) => format!(
                            "Ok({name}::{vn} {{ {} }})",
                            de_named_fields(fields, "__payload")
                        ),
                    };
                    format!("\"{vn}\" => {{ {build} }}")
                })
                .collect();
            format!(
                "match __value {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ \
                 {unit_arms} \
                 __other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{__other}}` for {name}\"))), }}, \
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                 let (__tag, __payload) = (&__entries[0].0, &__entries[0].1); \
                 match __tag.as_str() {{ \
                 {tagged_arms} \
                 __other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{__other}}` for {name}\"))), }} }}, \
                 _ => Err(::serde::Error::custom(\"invalid value for enum {name}\")), }}"
            )
        }
    };
    format!(
        "#[automatically_derived] #[allow(clippy::all)] \
         impl ::serde::Deserialize for {name} {{ \
         fn deserialize(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}

/// Derives `serde::Serialize` for non-generic structs and enums.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive stub: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize` for non-generic structs and enums.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive stub: generated Deserialize impl failed to parse")
}
