//! End-to-end exercise of the CLI ratchet on a throwaway mini-workspace:
//! `--update-baseline` writes the grandfather file, `--deny-new` passes
//! on the unchanged tree, fails on an injected panic site, and the plain
//! strict mode still fails on everything unsuppressed.

// why: test scaffolding writing throwaway fixture trees under temp_dir —
// nothing here is state the flow resumes from.
#![allow(clippy::disallowed_methods)]

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

struct Sandbox {
    root: PathBuf,
}

impl Sandbox {
    fn new(tag: &str) -> Sandbox {
        let root =
            std::env::temp_dir().join(format!("mmp-lint-ratchet-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/serve/src")).expect("mkdir");
        Sandbox { root }
    }

    fn write(&self, rel: &str, src: &str) {
        let p = self.root.join(rel);
        fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
        fs::write(p, src).expect("write");
    }

    fn run(&self, args: &[&str]) -> (i32, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_mmp-lint"))
            .args(args)
            .arg("--root")
            .arg(&self.root)
            .output()
            .expect("mmp-lint runs");
        let text = format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        (out.status.code().unwrap_or(-1), text)
    }
}

impl Drop for Sandbox {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn base_tree(sb: &Sandbox) {
    // One grandfathered panic site in library code.
    sb.write(
        "crates/serve/src/lib.rs",
        "pub fn parse(v: &[u8]) -> u8 {\n    v.first().copied().unwrap()\n}\n",
    );
}

#[test]
fn deny_new_passes_on_baselined_tree_and_fails_on_injection() {
    let sb = Sandbox::new("inject");
    base_tree(&sb);

    // Strict mode fails: the unwrap is unsuppressed.
    let (code, _) = sb.run(&["check"]);
    assert_eq!(code, 1, "strict check fails on the unswept tree");

    // Ratchet: grandfather it, then --deny-new is clean.
    let (code, out) = sb.run(&["check", "--update-baseline"]);
    assert_eq!(code, 0, "--update-baseline succeeds: {out}");
    assert!(sb.root.join("lint.baseline.json").is_file());
    let (code, out) = sb.run(&["check", "--deny-new"]);
    assert_eq!(code, 0, "--deny-new clean on baselined tree: {out}");

    // The baselined site may move lines without becoming new.
    sb.write(
        "crates/serve/src/lib.rs",
        "// a comment shifting everything down\n\npub fn parse(v: &[u8]) -> u8 {\n    v.first().copied().unwrap()\n}\n",
    );
    let (code, out) = sb.run(&["check", "--deny-new"]);
    assert_eq!(code, 0, "line moves do not churn the ratchet: {out}");

    // A fresh panic site in a new function IS new.
    sb.write(
        "crates/serve/src/injected.rs",
        "pub fn decode(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n",
    );
    let (code, out) = sb.run(&["check", "--deny-new"]);
    assert_eq!(code, 1, "--deny-new fails on the injected unwrap");
    assert!(
        out.contains("panic-path") && out.contains("injected.rs"),
        "report names the new finding: {out}"
    );

    // Fixing it restores green without touching the baseline.
    fs::remove_file(sb.root.join("crates/serve/src/injected.rs")).expect("rm");
    let (code, _) = sb.run(&["check", "--deny-new"]);
    assert_eq!(code, 0);
}

#[test]
fn deny_new_without_a_baseline_is_a_loud_error() {
    let sb = Sandbox::new("nobase");
    base_tree(&sb);
    let (code, out) = sb.run(&["check", "--deny-new"]);
    assert_eq!(code, 3, "missing baseline is an I/O error, not a pass");
    assert!(out.contains("--update-baseline"), "hint offered: {out}");
}

#[test]
fn a_why_noted_site_needs_no_baseline_slot() {
    let sb = Sandbox::new("whynote");
    sb.write(
        "crates/serve/src/lib.rs",
        "pub fn parse(v: &[u8]) -> u8 {\n    // mmp-lint: allow(panic-path) why: caller checked is_empty on the frame\n    v.first().copied().unwrap()\n}\n",
    );
    let (code, out) = sb.run(&["check"]);
    assert_eq!(code, 0, "suppressed site is strict-clean: {out}");
    let (code, out) = sb.run(&["check", "--update-baseline"]);
    assert_eq!(code, 0, "{out}");
    assert!(
        out.contains("0 finding(s) grandfathered"),
        "nothing to grandfather: {out}"
    );
}

#[test]
fn conflicting_flags_are_a_usage_error() {
    let sb = Sandbox::new("usage");
    base_tree(&sb);
    let (code, _) = sb.run(&["check", "--deny-new", "--update-baseline"]);
    assert_eq!(code, 2);
}

#[test]
fn baseline_flag_overrides_the_default_path() {
    let sb = Sandbox::new("path");
    base_tree(&sb);
    let alt = sb.root.join("ci/alt-baseline.json");
    fs::create_dir_all(alt.parent().expect("parent")).expect("mkdir");
    let alt_s = alt.to_string_lossy().into_owned();
    let (code, out) = sb.run(&["check", "--update-baseline", "--baseline", &alt_s]);
    assert_eq!(code, 0, "{out}");
    assert!(alt.is_file());
    assert!(!sb.root.join("lint.baseline.json").exists());
    let (code, out) = sb.run(&["check", "--deny-new", "--baseline", &alt_s]);
    assert_eq!(code, 0, "{out}");
}

#[test]
fn update_baseline_rewrite_is_deterministic() {
    let sb = Sandbox::new("det");
    base_tree(&sb);
    sb.write(
        "crates/serve/src/extra.rs",
        "pub fn pick(v: &[u8], i: usize) -> u8 {\n    v[i]\n}\n",
    );
    let (code, _) = sb.run(&["check", "--update-baseline"]);
    assert_eq!(code, 0);
    let first = fs::read_to_string(sb.root.join("lint.baseline.json")).expect("read");
    let (code, _) = sb.run(&["check", "--update-baseline"]);
    assert_eq!(code, 0);
    let second = fs::read_to_string(sb.root.join("lint.baseline.json")).expect("read");
    assert_eq!(first, second, "regeneration is byte-stable");
    assert!(Path::new(&sb.root.join("lint.baseline.json")).is_file());
}
