//! Incremental (delta) HPWL evaluation over a [`CoarsenedNetlist`].
//!
//! The coarse-level siblings of `mmp_netlist::IncrementalHpwl`: annealing,
//! evolutionary allocation and the coarse episode evaluator all perturb one
//! macro-group center at a time, and a full
//! [`CoarsenedNetlist::hpwl`] pass is O(all coarse nets) per probe.
//! [`CoarseHpwlCache`] owns the center vectors, caches every net's
//! *weighted* half-perimeter, and per move recomputes only the nets
//! incident to the touched group — with the exact arithmetic of the full
//! pass (same endpoint order, same `weight * half_perimeter` product).
//! [`CoarseHpwlCache::total`] re-sums the cached values in ascending net
//! order from `0.0`, the association [`CoarsenedNetlist::hpwl`] uses, so it
//! is **bitwise-equal** to the full recompute at every point.
//!
//! The cache does not borrow the netlist; mutating methods take it as an
//! argument. All methods assume the *same* netlist the cache was built
//! from.

use crate::coarsen::{CoarsenedNetlist, GroupRef};
use mmp_geom::{BoundingBox, NetValueCache, Point};

/// Journaled per-net weighted-HPWL cache over owned group centers.
///
/// # Example
///
/// ```
/// use mmp_cluster::{ClusterParams, Coarsener, CoarseHpwlCache};
/// use mmp_geom::Point;
/// use mmp_netlist::{Placement, SyntheticSpec};
///
/// let design = SyntheticSpec::small("chc", 8, 0, 8, 60, 90, false, 4).generate();
/// let coarse = Coarsener::new(&ClusterParams::paper(100.0))
///     .coarsen(&design, &Placement::initial(&design));
/// let mc = coarse.macro_group_centers();
/// let cc = coarse.cell_group_centers();
/// let mut cache = CoarseHpwlCache::new(&coarse, mc.clone(), cc.clone());
/// assert_eq!(cache.total().to_bits(), coarse.hpwl(&mc, &cc).to_bits());
///
/// cache.set_group(&coarse, 0, Point::new(1.0, 1.0));
/// cache.revert();
/// assert_eq!(cache.total().to_bits(), coarse.hpwl(&mc, &cc).to_bits());
/// ```
#[derive(Debug, Clone)]
pub struct CoarseHpwlCache {
    /// Net indices touching each macro group, ascending per group.
    nets_of_group: Vec<Vec<u32>>,
    macro_centers: Vec<Point>,
    cell_centers: Vec<Point>,
    cache: NetValueCache,
    undo: Vec<(u32, Point)>,
}

/// One net's weighted half-perimeter, computed exactly as
/// [`CoarsenedNetlist::hpwl`] does per net.
fn net_value(coarse: &CoarsenedNetlist, i: usize, mc: &[Point], cc: &[Point]) -> f64 {
    let net = &coarse.nets()[i];
    let mut bb = BoundingBox::empty();
    for ep in &net.endpoints {
        let p = match *ep {
            GroupRef::MacroGroup(g) => mc[g],
            GroupRef::CellGroup(g) => cc[g],
            GroupRef::Fixed(p) => p,
        };
        bb.extend(p);
    }
    net.weight * bb.half_perimeter()
}

impl CoarseHpwlCache {
    /// Builds the cache, scoring every coarse net once at the given
    /// centers.
    ///
    /// # Panics
    ///
    /// Panics when a center vector is shorter than its group count.
    pub fn new(
        coarse: &CoarsenedNetlist,
        macro_centers: Vec<Point>,
        cell_centers: Vec<Point>,
    ) -> Self {
        assert!(macro_centers.len() >= coarse.macro_groups().len());
        assert!(cell_centers.len() >= coarse.cell_groups().len());
        let mut nets_of_group = vec![Vec::new(); coarse.macro_groups().len()];
        for (i, net) in coarse.nets().iter().enumerate() {
            for ep in &net.endpoints {
                if let GroupRef::MacroGroup(g) = *ep {
                    // Coarsening dedups group endpoints, so each net
                    // appears at most once per group and stays ascending.
                    nets_of_group[g].push(i as u32);
                }
            }
        }
        let values = (0..coarse.nets().len())
            .map(|i| net_value(coarse, i, &macro_centers, &cell_centers))
            .collect();
        CoarseHpwlCache {
            nets_of_group,
            macro_centers,
            cell_centers,
            cache: NetValueCache::new(values),
            undo: Vec::new(),
        }
    }

    /// `true` when the cache's shape matches `coarse` (group and net
    /// counts) — the cheap guard consumers use before reusing a cache.
    pub fn matches(&self, coarse: &CoarsenedNetlist) -> bool {
        self.macro_centers.len() == coarse.macro_groups().len()
            && self.cell_centers.len() == coarse.cell_groups().len()
            && self.cache.len() == coarse.nets().len()
    }

    /// Current macro-group centers.
    #[inline]
    pub fn macro_centers(&self) -> &[Point] {
        &self.macro_centers
    }

    /// Moves macro group `g` to `p`, re-scoring its incident nets; returns
    /// the accumulated raw delta (diagnostic — exact totals come from
    /// [`CoarseHpwlCache::total`]).
    pub fn set_group(&mut self, coarse: &CoarsenedNetlist, g: usize, p: Point) -> f64 {
        self.undo.push((g as u32, self.macro_centers[g]));
        self.macro_centers[g] = p;
        let mut delta = 0.0;
        for k in 0..self.nets_of_group[g].len() {
            let i = self.nets_of_group[g][k];
            let v = net_value(coarse, i as usize, &self.macro_centers, &self.cell_centers);
            delta += self.cache.stage(i, v);
        }
        delta
    }

    /// Sum of group `g`'s incident nets' cached values in ascending net
    /// order, folded from `0.0` — bitwise-equal to a filter-and-sum pass
    /// over the full netlist.
    pub fn group_local(&self, g: usize) -> f64 {
        let mut t = 0.0;
        for &i in &self.nets_of_group[g] {
            t += self.cache.value(i);
        }
        t
    }

    /// Number of speculative (uncommitted) center moves.
    #[inline]
    pub fn pending(&self) -> usize {
        self.undo.len()
    }

    /// Accepts all speculative moves.
    pub fn commit(&mut self) {
        self.undo.clear();
        self.cache.commit();
    }

    /// Rolls back all speculative moves, restoring centers and cached net
    /// values (newest-first, so the oldest state wins).
    pub fn revert(&mut self) {
        while let Some((g, c)) = self.undo.pop() {
            self.macro_centers[g as usize] = c;
        }
        self.cache.revert();
    }

    /// Total weighted HPWL: ascending-net-order sequential sum of the
    /// cached values — bitwise-equal to a fresh
    /// `coarse.hpwl(macro_centers, cell_centers)`.
    #[inline]
    pub fn total(&self) -> f64 {
        self.cache.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ClusterParams;
    use crate::Coarsener;
    use mmp_netlist::{Design, Placement, SyntheticSpec};

    fn setup(seed: u64) -> (Design, CoarsenedNetlist) {
        let d = SyntheticSpec::small("chc", 8, 1, 8, 60, 100, true, seed).generate();
        let coarse =
            Coarsener::new(&ClusterParams::paper(100.0)).coarsen(&d, &Placement::initial(&d));
        (d, coarse)
    }

    #[test]
    fn fresh_cache_matches_full_hpwl_bitwise() {
        for seed in 0..4 {
            let (_, c) = setup(seed);
            let mc = c.macro_group_centers();
            let cc = c.cell_group_centers();
            let cache = CoarseHpwlCache::new(&c, mc.clone(), cc.clone());
            assert!(cache.matches(&c));
            assert_eq!(cache.total().to_bits(), c.hpwl(&mc, &cc).to_bits());
        }
    }

    #[test]
    fn random_group_moves_stay_bitwise_equal_to_full_recompute() {
        let (_, c) = setup(11);
        let cc = c.cell_group_centers();
        let mut cache = CoarseHpwlCache::new(&c, c.macro_group_centers(), cc.clone());
        let groups = c.macro_groups().len();
        let mut s = 99u64;
        for step in 0..200 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let g = (s >> 33) as usize % groups;
            let x = ((s >> 5) % 1000) as f64 / 10.0;
            let y = ((s >> 15) % 1000) as f64 / 10.0;
            cache.set_group(&c, g, Point::new(x, y));
            match step % 3 {
                0 => cache.commit(),
                1 => cache.revert(),
                _ => {}
            }
            let fresh = c.hpwl(cache.macro_centers(), &cc);
            assert_eq!(
                cache.total().to_bits(),
                fresh.to_bits(),
                "step {step}: cache drifted from full recompute"
            );
        }
    }

    #[test]
    fn group_local_matches_filtered_scan_bitwise() {
        let (_, c) = setup(7);
        let mc = c.macro_group_centers();
        let cc = c.cell_group_centers();
        let cache = CoarseHpwlCache::new(&c, mc.clone(), cc.clone());
        for g in 0..c.macro_groups().len() {
            let mut manual = 0.0;
            for net in c.nets() {
                let touches = net
                    .endpoints
                    .iter()
                    .any(|e| matches!(e, GroupRef::MacroGroup(i) if *i == g));
                if touches {
                    let mut bb = BoundingBox::empty();
                    for ep in &net.endpoints {
                        bb.extend(match *ep {
                            GroupRef::MacroGroup(i) => mc[i],
                            GroupRef::CellGroup(i) => cc[i],
                            GroupRef::Fixed(p) => p,
                        });
                    }
                    manual += net.weight * bb.half_perimeter();
                }
            }
            assert_eq!(cache.group_local(g).to_bits(), manual.to_bits());
        }
    }

    #[test]
    fn revert_restores_centers_and_total() {
        let (_, c) = setup(3);
        let mc = c.macro_group_centers();
        let cc = c.cell_group_centers();
        let mut cache = CoarseHpwlCache::new(&c, mc.clone(), cc);
        let t0 = cache.total();
        cache.set_group(&c, 0, Point::new(5.0, 5.0));
        cache.set_group(&c, 0, Point::new(9.0, 9.0));
        assert_eq!(cache.pending(), 2);
        cache.revert();
        assert_eq!(cache.pending(), 0);
        assert_eq!(cache.total().to_bits(), t0.to_bits());
        assert_eq!(cache.macro_centers(), mc.as_slice());
    }
}
