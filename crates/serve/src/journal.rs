//! The daemon's on-disk job journal: the recovery half of the tentpole.
//!
//! Layout under the state directory:
//!
//! ```text
//! state/
//!   jobs/<id>/request.ckpt   accepted request (written BEFORE queueing)
//!   jobs/<id>/ckpt/          the job's mmp-ckpt checkpoint ladder
//!   jobs/<id>/report.ckpt    final response line (written on completion)
//! ```
//!
//! Every file is an `mmp-ckpt` envelope (magic, version, FNV header
//! check, CRC payload check, atomic temp→fsync→rename), so a daemon
//! killed mid-write leaves either the previous state or the new one —
//! never garbage the next life would trip over. On restart,
//! [`scan`] classifies each job directory: a readable `report.ckpt`
//! means the job finished (keep the stored response); a readable
//! `request.ckpt` without one means the job was interrupted and must be
//! re-run — resuming from whatever its `ckpt/` ladder holds, which is
//! what makes recovery bitwise-identical rather than merely eventual.

use crate::error::ServeError;
use crate::protocol::{valid_id, JobRequest};
use mmp_obs::Obs;
use mmp_vfs::Vfs;
use serde::{map_get, Serialize, Value};
use std::fs;
use std::path::{Path, PathBuf};

fn internal(what: &str, path: &Path, detail: impl std::fmt::Display) -> ServeError {
    ServeError::Internal {
        detail: format!("{what} {}: {detail}", path.display()),
    }
}

/// The daemon's state directory handle. Every mutation goes through the
/// injectable [`Vfs`] chokepoint so the disk-fault torture harness can
/// fail any single journal write deterministically.
#[derive(Debug, Clone)]
pub struct Journal {
    root: PathBuf,
    vfs: Vfs,
    obs: Obs,
}

/// One journaled job found by [`Journal::scan`].
#[derive(Debug, Clone)]
pub struct ScannedJob {
    /// The job id (directory name).
    pub id: String,
    /// Admission sequence number (replay order).
    pub seq: u64,
    /// The accepted request.
    pub request: JobRequest,
    /// The stored final response line, when the job finished.
    pub report_line: Option<String>,
}

impl Journal {
    /// Opens (creating if needed) the journal under `root` on the real
    /// filesystem backend.
    pub fn open(root: &Path) -> Result<Self, ServeError> {
        Journal::open_with(root, Vfs::real(), Obs::off())
    }

    /// [`Journal::open`] with an explicit filesystem handle and an obs
    /// registry for the journal's own counters (`ckpt.stale_tmp_removed`,
    /// `ckpt.dir_fsync_failed`).
    pub fn open_with(root: &Path, vfs: Vfs, obs: Obs) -> Result<Self, ServeError> {
        let jobs = root.join("jobs");
        vfs.create_dir_all(&jobs)
            .map_err(|e| internal("create state dir", &jobs, e))?;
        Ok(Journal {
            root: root.to_path_buf(),
            vfs,
            obs,
        })
    }

    /// Counts a dir-fsync failure reported by a write receipt.
    fn note_receipt(&self, receipt: mmp_ckpt::WriteReceipt) {
        if receipt.dir_fsync_failed && self.obs.enabled() {
            self.obs.count("ckpt.dir_fsync_failed", 1);
        }
    }

    /// The directory holding one job's files.
    pub fn job_dir(&self, id: &str) -> PathBuf {
        debug_assert!(valid_id(id), "journal paths require validated ids");
        self.root.join("jobs").join(id)
    }

    /// The job's checkpoint-ladder directory (handed to
    /// `MacroPlacer::with_checkpoints`).
    pub fn ckpt_dir(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("ckpt")
    }

    fn request_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("request.ckpt")
    }

    fn report_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("report.ckpt")
    }

    /// `true` when the journal already holds a job directory for `id`.
    pub fn contains(&self, id: &str) -> bool {
        self.request_path(id).is_file()
    }

    /// Journals an accepted request (with its admission sequence number)
    /// before the job is queued. Crash-atomic: a daemon killed here
    /// either never accepted the job or will replay it on restart.
    pub fn record_request(&self, id: &str, seq: u64, req: &JobRequest) -> Result<(), ServeError> {
        let dir = self.ckpt_dir(id);
        self.vfs
            .create_dir_all(&dir)
            .map_err(|e| internal("create job dir", &dir, e))?;
        let entry = Value::Map(vec![
            ("id".to_owned(), Value::Str(id.to_owned())),
            ("seq".to_owned(), Value::U64(seq)),
            ("request".to_owned(), req.to_value()),
        ]);
        let path = self.request_path(id);
        let receipt =
            mmp_ckpt::write_with(&self.vfs, &path, crate::protocol::render(&entry).as_bytes())
                .map_err(|e| internal("journal request", &path, e))?;
        self.note_receipt(receipt);
        Ok(())
    }

    /// Stores a job's final response line; its presence is what marks the
    /// job complete to future daemon lives.
    pub fn record_report(&self, id: &str, line: &str) -> Result<(), ServeError> {
        let path = self.report_path(id);
        let receipt = mmp_ckpt::write_with(&self.vfs, &path, line.as_bytes())
            .map_err(|e| internal("journal report", &path, e))?;
        self.note_receipt(receipt);
        Ok(())
    }

    /// Reads back a stored final response line, if the job completed.
    pub fn read_report(&self, id: &str) -> Result<Option<String>, ServeError> {
        let path = self.report_path(id);
        match mmp_ckpt::read_opt_with(&self.vfs, &path) {
            Ok(Some(bytes)) => String::from_utf8(bytes)
                .map(Some)
                .map_err(|e| internal("decode report", &path, e)),
            Ok(None) => Ok(None),
            Err(e) => Err(internal("read report", &path, e)),
        }
    }

    /// Removes a job's directory (admission rollback: the queue was full
    /// after the request was journaled, so the job never existed).
    pub fn forget(&self, id: &str) {
        let _ = self.vfs.remove_dir_all(&self.job_dir(id));
    }

    /// Walks the journal and returns every job in admission (`seq`)
    /// order. Jobs whose `request.ckpt` is unreadable or unparsable are
    /// reported in the second list — a robust daemon quarantines damage
    /// and keeps serving rather than refusing to start.
    ///
    /// The scan also sweeps stale `*.tmp` orphans (a daemon killed
    /// between temp-file write and rename) from each job directory,
    /// counting removals via `ckpt.stale_tmp_removed`.
    pub fn scan(&self) -> Result<(Vec<ScannedJob>, Vec<String>), ServeError> {
        let jobs_dir = self.root.join("jobs");
        let mut jobs = Vec::new();
        let mut damaged = Vec::new();
        let entries =
            fs::read_dir(&jobs_dir).map_err(|e| internal("scan state dir", &jobs_dir, e))?;
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort_unstable(); // deterministic scan order before seq sort
        for id in names {
            if !valid_id(&id) {
                damaged.push(id);
                continue;
            }
            self.sweep_stale_tmps(&self.job_dir(&id));
            match self.scan_one(&id) {
                Ok(job) => jobs.push(job),
                Err(_) => damaged.push(id),
            }
        }
        jobs.sort_by_key(|j| j.seq);
        Ok((jobs, damaged))
    }

    /// Best-effort removal of `*.tmp` orphans directly inside `dir` (the
    /// job's own checkpoint ladder sweeps itself when the flow opens it).
    fn sweep_stale_tmps(&self, dir: &Path) {
        let Ok(names) = self.vfs.read_dir_names(dir) else {
            return;
        };
        let mut removed = 0u64;
        for name in names {
            if name.ends_with(".tmp") && self.vfs.remove_file(&dir.join(&name)).is_ok() {
                removed += 1;
            }
        }
        if removed > 0 && self.obs.enabled() {
            self.obs.count("ckpt.stale_tmp_removed", removed);
        }
    }

    /// Total bytes currently stored under the journal root (the
    /// `serve.journal_bytes` gauge). Read-only metadata walk; errors count
    /// as zero rather than failing a status query.
    pub fn total_bytes(&self) -> u64 {
        fn walk(dir: &Path) -> u64 {
            let Ok(entries) = fs::read_dir(dir) else {
                return 0;
            };
            let mut total = 0;
            for entry in entries.filter_map(|e| e.ok()) {
                let path = entry.path();
                if path.is_dir() {
                    total += walk(&path);
                } else if let Ok(meta) = entry.metadata() {
                    total += meta.len();
                }
            }
            total
        }
        walk(&self.root)
    }

    fn scan_one(&self, id: &str) -> Result<ScannedJob, ServeError> {
        let path = self.request_path(id);
        let bytes = mmp_ckpt::read_with(&self.vfs, &path)
            .map_err(|e| internal("read request", &path, e))?;
        let text = String::from_utf8(bytes).map_err(|e| internal("decode request", &path, e))?;
        let entry = serde_json::parse_value(&text)
            .map_err(|e| internal("parse request entry", &path, e))?;
        let seq = map_get(&entry, "seq")
            .and_then(Value::as_u64)
            .ok_or_else(|| internal("parse request entry", &path, "missing seq"))?;
        let req_value = map_get(&entry, "request")
            .ok_or_else(|| internal("parse request entry", &path, "missing request"))?;
        let request = JobRequest::parse(&crate::protocol::render(req_value))?;
        // The stored id must match the directory: a renamed job dir is
        // damage, not a different job.
        match map_get(&entry, "id") {
            Some(Value::Str(s)) if s == id => {}
            _ => return Err(internal("parse request entry", &path, "id mismatch")),
        }
        let report_line = self.read_report(id)?;
        Ok(ScannedJob {
            id: id.to_owned(),
            seq,
            request,
            report_line,
        })
    }

    /// Copies a donor `train-done.ckpt` into a job's ladder so the flow
    /// skips training entirely (the daemon's trained-policy cache). The
    /// copy goes through read→write so the destination is a freshly
    /// checksummed atomic envelope, not a raw byte copy of a file another
    /// job may be rewriting.
    pub fn seed_train_done(&self, donor: &Path, id: &str) -> Result<(), ServeError> {
        let payload = mmp_ckpt::read_with(&self.vfs, donor)
            .map_err(|e| internal("read donor checkpoint", donor, e))?;
        let dir = self.ckpt_dir(id);
        self.vfs
            .create_dir_all(&dir)
            .map_err(|e| internal("create job dir", &dir, e))?;
        let dst = dir.join("train-done.ckpt");
        let receipt = mmp_ckpt::write_with(&self.vfs, &dst, &payload)
            .map_err(|e| internal("seed checkpoint", &dst, e))?;
        self.note_receipt(receipt);
        Ok(())
    }

    /// The path a completed job's reusable trained policy lives at.
    pub fn train_done_path(&self, id: &str) -> PathBuf {
        self.ckpt_dir(id).join("train-done.ckpt")
    }
}

/// Renders the stored-report envelope for [`Journal::record_report`]
/// callers that hold a structured response.
pub fn render_line<T: Serialize>(v: &T) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "null".to_owned())
}

#[cfg(test)]
// why: the damage test plants a deliberately non-envelope file; production
// journal state always goes through the atomic mmp_ckpt writer above.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use crate::protocol::Op;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mmp-serve-journal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn req(id: &str) -> JobRequest {
        JobRequest::parse(&format!(
            r#"{{"op":"submit","id":"{id}","design":{{"spec":[5,0,8,40,70],"seed":1}},"episodes":4}}"#
        ))
        .unwrap()
    }

    #[test]
    fn scan_replays_requests_in_admission_order() {
        let root = tmp("order");
        let j = Journal::open(&root).unwrap();
        // Admission order deliberately disagrees with lexicographic order.
        j.record_request("zz", 1, &req("zz")).unwrap();
        j.record_request("aa", 2, &req("aa")).unwrap();
        j.record_request("mm", 3, &req("mm")).unwrap();
        j.record_report("aa", r#"{"ok":true}"#).unwrap();

        let (jobs, damaged) = j.scan().unwrap();
        assert!(damaged.is_empty());
        let ids: Vec<&str> = jobs.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(ids, ["zz", "aa", "mm"], "seq order, not name order");
        assert!(jobs[0].report_line.is_none(), "zz was interrupted");
        assert_eq!(jobs[1].report_line.as_deref(), Some(r#"{"ok":true}"#));
        assert_eq!(jobs[0].request.op, Op::Submit);
        assert_eq!(jobs[0].request, req("zz"), "request round-trips exactly");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn damaged_entries_are_quarantined_not_fatal() {
        let root = tmp("damage");
        let j = Journal::open(&root).unwrap();
        j.record_request("good", 1, &req("good")).unwrap();
        // A job dir whose request envelope is corrupt.
        let bad = j.job_dir("bad");
        fs::create_dir_all(&bad).unwrap();
        fs::write(bad.join("request.ckpt"), b"not an envelope").unwrap();
        // A job dir with no request at all.
        fs::create_dir_all(j.job_dir("empty")).unwrap();

        let (jobs, mut damaged) = j.scan().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].id, "good");
        damaged.sort();
        assert_eq!(damaged, ["bad", "empty"]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn forget_rolls_back_an_admission() {
        let root = tmp("forget");
        let j = Journal::open(&root).unwrap();
        j.record_request("j1", 1, &req("j1")).unwrap();
        assert!(j.contains("j1"));
        j.forget("j1");
        assert!(!j.contains("j1"));
        let (jobs, damaged) = j.scan().unwrap();
        assert!(jobs.is_empty() && damaged.is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn scan_sweeps_stale_tmp_orphans() {
        let root = tmp("sweep");
        let j = Journal::open(&root).unwrap();
        j.record_request("j1", 1, &req("j1")).unwrap();
        // A torn rename leaves the temp sibling behind.
        fs::write(j.job_dir("j1").join("report.ckpt.tmp"), b"torn").unwrap();
        let (jobs, damaged) = j.scan().unwrap();
        assert_eq!(jobs.len(), 1);
        assert!(damaged.is_empty());
        assert!(
            !j.job_dir("j1").join("report.ckpt.tmp").exists(),
            "scan must sweep the orphan"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn total_bytes_tracks_journal_growth() {
        let root = tmp("bytes");
        let j = Journal::open(&root).unwrap();
        let empty = j.total_bytes();
        j.record_request("j1", 1, &req("j1")).unwrap();
        let with_request = j.total_bytes();
        assert!(with_request > empty);
        j.record_report("j1", r#"{"ok":true}"#).unwrap();
        assert!(j.total_bytes() > with_request);
        j.forget("j1");
        assert_eq!(j.total_bytes(), empty);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_journal_write_fault_is_a_typed_internal_error() {
        use mmp_vfs::{FailPlan, FaultKind, OpKind};
        let root = tmp("fault");
        let vfs = Vfs::with_plan(
            FailPlan::new(FaultKind::PartialWrite(10), 1)
                .on(OpKind::Write)
                .matching("request"),
        );
        let j = Journal::open_with(&root, vfs, Obs::off()).unwrap();
        let err = j.record_request("j1", 1, &req("j1")).unwrap_err();
        assert!(matches!(err, ServeError::Internal { .. }), "{err:?}");
        // The partial temp file never renamed: no request.ckpt, so a
        // rescan quarantines the entry instead of parsing garbage.
        assert!(!j.contains("j1"));
        let j2 = Journal::open(&root).unwrap();
        let (jobs, damaged) = j2.scan().unwrap();
        assert!(jobs.is_empty());
        assert_eq!(damaged, ["j1"]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn seeded_train_done_round_trips_payload_bytes() {
        let root = tmp("seed");
        let j = Journal::open(&root).unwrap();
        let donor = root.join("donor.ckpt");
        mmp_ckpt::write(&donor, b"policy-bytes").unwrap();
        j.record_request("j1", 1, &req("j1")).unwrap();
        j.seed_train_done(&donor, "j1").unwrap();
        let got = mmp_ckpt::read(&j.train_done_path("j1")).unwrap();
        assert_eq!(got, b"policy-bytes");
        let _ = fs::remove_dir_all(&root);
    }
}
