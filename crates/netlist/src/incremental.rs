//! Incremental (delta) HPWL evaluation over a [`Placement`].
//!
//! Trial-move loops — orientation flips, boundary refinement, swap
//! refinement, annealing — repeatedly perturb one or two nodes and ask for
//! the new wirelength. A full `placement.hpwl(design)` pass is O(all nets);
//! [`IncrementalHpwl`] caches every net's half-perimeter and, per move,
//! recomputes only the nets incident to the touched nodes, exactly as the
//! full evaluator would (same pin order, same box arithmetic). Totals come
//! from re-summing the cached per-net values in ascending net order —
//! never from delta accumulation — so [`IncrementalHpwl::total`] is
//! **bitwise-equal** to a fresh `placement.hpwl(design)` at every point.
//!
//! Moves are speculative: apply any number of [`IncrementalHpwl::move_macro`]
//! / [`IncrementalHpwl::swap_macro_centers`] /
//! [`IncrementalHpwl::set_macro_orientation`] / [`IncrementalHpwl::move_cell`]
//! calls, then [`IncrementalHpwl::commit`] to keep them or
//! [`IncrementalHpwl::revert`] to roll the placement and cache back.

use crate::design::Design;
use crate::ids::{CellId, MacroId, NetId};
use crate::orientation::Orientation;
use crate::placement::Placement;
use mmp_geom::{NetValueCache, Point};

/// One journaled placement mutation, undone on revert.
#[derive(Debug, Clone, Copy)]
enum Undo {
    MacroCenter(MacroId, Point),
    MacroOrient(MacroId, Orientation),
    CellCenter(CellId, Point),
}

/// A per-net HPWL cache over an owned [`Placement`] with speculative moves.
///
/// # Example
///
/// ```
/// use mmp_netlist::{IncrementalHpwl, MacroId, Placement, SyntheticSpec};
/// use mmp_geom::Point;
///
/// let design = SyntheticSpec::small("inc", 6, 0, 8, 40, 70, false, 9).generate();
/// let placement = Placement::initial(&design);
/// let mut inc = IncrementalHpwl::new(&design, placement.clone());
/// assert_eq!(inc.total().to_bits(), placement.hpwl(&design).to_bits());
///
/// inc.move_macro(MacroId::from_index(0), Point::new(30.0, 30.0));
/// inc.revert();
/// assert_eq!(inc.total().to_bits(), placement.hpwl(&design).to_bits());
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalHpwl<'d> {
    design: &'d Design,
    placement: Placement,
    cache: NetValueCache,
    undo: Vec<Undo>,
}

impl<'d> IncrementalHpwl<'d> {
    /// Builds the cache by scoring every net of `design` once.
    pub fn new(design: &'d Design, placement: Placement) -> Self {
        let values = (0..design.nets().len())
            .map(|i| placement.net_hpwl(design, NetId::from_index(i)))
            .collect();
        IncrementalHpwl {
            design,
            placement,
            cache: NetValueCache::new(values),
            undo: Vec::new(),
        }
    }

    /// The design being scored.
    #[inline]
    pub fn design(&self) -> &'d Design {
        self.design
    }

    /// The placement in its current (possibly speculative) state.
    #[inline]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Consumes the evaluator, returning the placement (committed and
    /// speculative moves included — call [`IncrementalHpwl::revert`] first
    /// to drop pending ones).
    #[inline]
    pub fn into_placement(self) -> Placement {
        self.placement
    }

    /// Re-scores every net incident to `nets`, staging new values.
    fn restage(&mut self, nets: &[NetId]) -> f64 {
        let mut delta = 0.0;
        for &n in nets {
            let v = self.placement.net_hpwl(self.design, n);
            delta += self.cache.stage(n.raw(), v);
        }
        delta
    }

    /// Moves macro `id` to center `to`; returns the accumulated raw delta
    /// over its nets (diagnostic — exact totals come from
    /// [`IncrementalHpwl::total`]).
    pub fn move_macro(&mut self, id: MacroId, to: Point) -> f64 {
        self.undo
            .push(Undo::MacroCenter(id, self.placement.macro_center(id)));
        self.placement.set_macro_center(id, to);
        let nets = self.design.nets_of_macro(id);
        // why: the incidence slice borrows `design`, not `self`, but the
        // borrow checker cannot see through `&self.design` during `&mut
        // self` calls; a cheap to_vec decouples them.
        let nets = nets.to_vec();
        self.restage(&nets)
    }

    /// Swaps the centers of macros `a` and `b`; returns the accumulated raw
    /// delta over the union of their nets.
    pub fn swap_macro_centers(&mut self, a: MacroId, b: MacroId) -> f64 {
        let ca = self.placement.macro_center(a);
        let cb = self.placement.macro_center(b);
        self.undo.push(Undo::MacroCenter(a, ca));
        self.undo.push(Undo::MacroCenter(b, cb));
        self.placement.set_macro_center(a, cb);
        self.placement.set_macro_center(b, ca);
        let mut nets: Vec<NetId> = self
            .design
            .nets_of_macro(a)
            .iter()
            .chain(self.design.nets_of_macro(b))
            .copied()
            .collect();
        nets.sort_by_key(|n| n.index());
        nets.dedup();
        self.restage(&nets)
    }

    /// Sets macro `id`'s orientation; returns the accumulated raw delta
    /// over its nets.
    pub fn set_macro_orientation(&mut self, id: MacroId, o: Orientation) -> f64 {
        self.undo
            .push(Undo::MacroOrient(id, self.placement.macro_orientation(id)));
        self.placement.set_macro_orientation(id, o);
        let nets = self.design.nets_of_macro(id).to_vec();
        self.restage(&nets)
    }

    /// Moves cell `id` to center `to`; returns the accumulated raw delta
    /// over its nets.
    pub fn move_cell(&mut self, id: CellId, to: Point) -> f64 {
        self.undo
            .push(Undo::CellCenter(id, self.placement.cell_center(id)));
        self.placement.set_cell_center(id, to);
        let nets = self.design.nets_of_cell(id).to_vec();
        self.restage(&nets)
    }

    /// Sum of macro `id`'s nets' cached values in incidence order (which is
    /// ascending), folded from `0.0` — bitwise-equal to the full
    /// evaluator's "local wirelength around one macro" loop.
    pub fn local_of_macro(&self, id: MacroId) -> f64 {
        let mut t = 0.0;
        for &n in self.design.nets_of_macro(id) {
            t += self.cache.value(n.raw());
        }
        t
    }

    /// Number of speculative (uncommitted) placement mutations.
    #[inline]
    pub fn pending(&self) -> usize {
        self.undo.len()
    }

    /// Accepts all speculative moves.
    pub fn commit(&mut self) {
        self.undo.clear();
        self.cache.commit();
    }

    /// Rolls back all speculative moves, restoring both the placement and
    /// the cached net values (newest-first, so the oldest state wins).
    pub fn revert(&mut self) {
        while let Some(u) = self.undo.pop() {
            match u {
                Undo::MacroCenter(id, c) => self.placement.set_macro_center(id, c),
                Undo::MacroOrient(id, o) => self.placement.set_macro_orientation(id, o),
                Undo::CellCenter(id, c) => self.placement.set_cell_center(id, c),
            }
        }
        self.cache.revert();
    }

    /// Total HPWL: ascending-net-order sequential sum of the cached values
    /// — bitwise-equal to a fresh `self.placement().hpwl(design)`.
    #[inline]
    pub fn total(&self) -> f64 {
        self.cache.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SyntheticSpec;

    fn setup(seed: u64) -> (Design, Placement) {
        let d = SyntheticSpec::small("inc", 8, 1, 8, 60, 110, true, seed).generate();
        let p = Placement::initial(&d);
        (d, p)
    }

    /// Deterministic pseudo-random stream for move fuzzing (splitmix64).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn pick(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
        fn coord(&mut self) -> f64 {
            (self.next() % 1000) as f64 / 10.0
        }
    }

    #[test]
    fn fresh_cache_matches_full_hpwl_bitwise() {
        for seed in 0..4 {
            let (d, p) = setup(seed);
            let inc = IncrementalHpwl::new(&d, p.clone());
            assert_eq!(inc.total().to_bits(), p.hpwl(&d).to_bits());
        }
    }

    #[test]
    fn random_move_sequences_stay_bitwise_equal_to_full_recompute() {
        let (d, p) = setup(42);
        let mut inc = IncrementalHpwl::new(&d, p);
        let mut rng = Rng(7);
        let macros = d.macros().len();
        let cells = d.cells().len();
        for step in 0..200 {
            match rng.pick(4) {
                0 => {
                    let id = MacroId::from_index(rng.pick(macros));
                    inc.move_macro(id, Point::new(rng.coord(), rng.coord()));
                }
                1 => {
                    let a = MacroId::from_index(rng.pick(macros));
                    let b = MacroId::from_index(rng.pick(macros));
                    inc.swap_macro_centers(a, b);
                }
                2 => {
                    let id = MacroId::from_index(rng.pick(macros));
                    let o = Orientation::ALL[rng.pick(Orientation::ALL.len())];
                    inc.set_macro_orientation(id, o);
                }
                _ => {
                    let id = CellId::from_index(rng.pick(cells));
                    inc.move_cell(id, Point::new(rng.coord(), rng.coord()));
                }
            }
            if step % 3 == 0 {
                inc.commit();
            } else if step % 3 == 1 {
                inc.revert();
            }
            let fresh = inc.placement().hpwl(&d);
            assert_eq!(
                inc.total().to_bits(),
                fresh.to_bits(),
                "step {step}: cache drifted from full recompute"
            );
        }
    }

    #[test]
    fn revert_restores_placement_and_total() {
        let (d, p) = setup(3);
        let before = p.clone();
        let mut inc = IncrementalHpwl::new(&d, p);
        let t0 = inc.total();
        inc.move_macro(MacroId::from_index(0), Point::new(55.0, 44.0));
        inc.swap_macro_centers(MacroId::from_index(1), MacroId::from_index(2));
        inc.set_macro_orientation(MacroId::from_index(0), Orientation::FS);
        assert_eq!(inc.pending(), 4);
        inc.revert();
        assert_eq!(inc.pending(), 0);
        assert_eq!(inc.total().to_bits(), t0.to_bits());
        assert_eq!(inc.placement(), &before);
    }

    #[test]
    fn local_of_macro_matches_manual_net_sum_bitwise() {
        let (d, p) = setup(5);
        let inc = IncrementalHpwl::new(&d, p.clone());
        for i in 0..d.macros().len() {
            let id = MacroId::from_index(i);
            let manual: f64 = d.nets_of_macro(id).iter().map(|&n| p.net_hpwl(&d, n)).sum();
            assert_eq!(inc.local_of_macro(id).to_bits(), manual.to_bits());
        }
    }

    #[test]
    fn into_placement_returns_committed_state() {
        let (d, p) = setup(6);
        let mut inc = IncrementalHpwl::new(&d, p);
        inc.move_macro(MacroId::from_index(0), Point::new(12.0, 13.0));
        inc.commit();
        let out = inc.into_placement();
        assert_eq!(
            out.macro_center(MacroId::from_index(0)),
            Point::new(12.0, 13.0)
        );
    }
}
