//! Crash-consistency torture: enumerate every write boundary of a run,
//! then replay the run once per boundary with a disk fault injected
//! exactly there.
//!
//! A *write boundary* is one mutation operation through the
//! [`mmp_vfs::Vfs`] chokepoint — a file creation, a payload write, an
//! fsync, a rename, or a removal. The enumeration is exact, not sampled:
//! a clean run under [`Vfs::recording`] counts its boundaries, and the
//! torture loop replays the run `N` times, arming a one-shot
//! [`FailPlan`] at boundary 1, 2, …, N in turn.
//!
//! Two fault flavours are driven at every boundary:
//!
//! * **crash** ([`FaultKind::CrashAfter`]) — the op completes on disk,
//!   then the run is killed by a crash-marked error. The invariant: the
//!   kill surfaces as a typed checkpoint error (exit 16), and a resume
//!   over the surviving on-disk state is **bitwise identical** to the
//!   uninterrupted baseline — HPWL bits, macro coordinate bits, and the
//!   group assignment.
//! * **disk full** ([`FaultKind::Enospc`]) — the op fails cleanly. The
//!   invariant: the run *completes* (checkpointing degrades, the
//!   placement does not), the result is bitwise identical to baseline,
//!   and the degradation report names the checkpoint stage.
//!
//! The daemon variant does the same over one `mmpd` job: every journal
//! and ladder boundary is crashed in turn, the daemon life is ended, and
//! a second life (plus an idempotent resubmission) must deliver the
//! baseline bits — the journal may quarantine, it must never corrupt.

use mmp_core::{
    CheckpointPlan, FailPlan, FaultKind, MacroPlacer, PlacementResult, PlacerConfig, Stage,
    SyntheticSpec, Vfs,
};
use mmp_netlist::{Design, MacroId};
use mmp_serve::{ServeConfig, Server};
use std::path::{Path, PathBuf};

/// What one torture sweep found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TortureReport {
    /// Write boundaries the clean run performed (and the sweep covered).
    pub boundaries: u64,
    /// One human-readable line per violated invariant; empty on success.
    pub failures: Vec<String>,
}

impl TortureReport {
    /// `true` when every boundary upheld every invariant.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The torture fixture: small enough that `2 × boundaries` full flow
/// runs stay in CI-friendly time, checkpointed densely enough that every
/// envelope kind (partial, done, train, search) contributes boundaries.
fn fixture_config() -> PlacerConfig {
    let mut cfg = PlacerConfig::fast(4);
    cfg.trainer.episodes = 2;
    cfg.trainer.calibration_episodes = 2;
    cfg.trainer.update_every = 1;
    cfg.mcts.explorations = 4;
    cfg
}

fn fixture_design() -> Design {
    SyntheticSpec::small("torture", 5, 0, 8, 40, 70, false, 11).generate()
}

/// A per-run scratch directory, wiped before use.
fn scratch(tag: &str, sub: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmp-torture-{tag}-{sub}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `(hpwl_bits, per-macro coordinate bits)` of a flow result — the
/// bitwise identity the resume contract promises.
fn result_bits(design: &Design, r: &PlacementResult) -> (u64, Vec<(u64, u64)>) {
    let macros = (0..design.macros().len())
        .map(|i| {
            let c = r.placement.macro_center(MacroId::from_index(i));
            (c.x.to_bits(), c.y.to_bits())
        })
        .collect();
    (r.hpwl.to_bits(), macros)
}

fn leftover_tmps(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
        .count()
}

/// Tortures one full checkpointed flow run: every write boundary is hit
/// once with a crash (then resumed) and once with a clean disk-full
/// failure. See the module docs for the invariants.
pub fn torture_flow(tag: &str) -> TortureReport {
    let design = fixture_design();

    // Clean recording run: the baseline bits and the boundary count.
    let rec = Vfs::recording();
    let base_dir = scratch(tag, "baseline");
    let baseline = match MacroPlacer::new(fixture_config())
        .with_checkpoints(CheckpointPlan::new(&base_dir))
        .with_vfs(rec.clone())
        .place(&design)
    {
        Ok(r) => r,
        Err(e) => {
            return TortureReport {
                boundaries: 0,
                failures: vec![format!("baseline checkpointed run refused: {e}")],
            }
        }
    };
    let boundaries = rec.mutation_ops();
    let base_bits = result_bits(&design, &baseline);
    let mut failures = Vec::new();
    if boundaries == 0 {
        failures.push("recording run saw zero write boundaries".to_owned());
    }

    for b in 1..=boundaries {
        // Crash at boundary b: the op lands, the run dies right after.
        let dir = scratch(tag, &format!("crash-{b}"));
        let killed = MacroPlacer::new(fixture_config())
            .with_checkpoints(CheckpointPlan::new(&dir))
            .with_vfs(Vfs::with_plan(FailPlan::new(FaultKind::CrashAfter, b)))
            .place(&design);
        match killed {
            Err(e) if e.exit_code() == 16 && e.stage().name() == "checkpoint" => {}
            Err(e) => failures.push(format!(
                "crash at boundary {b}: wrong error shape (stage {}, exit {}): {e}",
                e.stage().name(),
                e.exit_code()
            )),
            Ok(_) => failures.push(format!(
                "crash at boundary {b} did not kill the run (plan never fired?)"
            )),
        }
        // Resume over whatever the crash left on disk.
        match MacroPlacer::new(fixture_config())
            .with_checkpoints(CheckpointPlan::resume(&dir))
            .place(&design)
        {
            Ok(r) => {
                if result_bits(&design, &r) != base_bits || r.assignment != baseline.assignment {
                    failures.push(format!(
                        "resume after crash at boundary {b} diverged from baseline bits"
                    ));
                }
                if leftover_tmps(&dir) != 0 {
                    failures.push(format!(
                        "resume after crash at boundary {b} left a .tmp orphan behind"
                    ));
                }
            }
            Err(e) => failures.push(format!("resume after crash at boundary {b} refused: {e}")),
        }
        let _ = std::fs::remove_dir_all(&dir);

        // Disk full at boundary b: the run must complete and degrade.
        let dir = scratch(tag, &format!("enospc-{b}"));
        match MacroPlacer::new(fixture_config())
            .with_checkpoints(CheckpointPlan::new(&dir))
            .with_vfs(Vfs::with_plan(FailPlan::new(FaultKind::Enospc, b)))
            .place(&design)
        {
            Ok(r) => {
                if result_bits(&design, &r) != base_bits || r.assignment != baseline.assignment {
                    failures.push(format!(
                        "disk-full at boundary {b}: completed run diverged from baseline bits"
                    ));
                }
                if !r.degradation.affects(Stage::Checkpoint) {
                    failures.push(format!(
                        "disk-full at boundary {b}: no checkpoint-stage degradation was recorded"
                    ));
                }
            }
            Err(e) => failures.push(format!(
                "disk-full at boundary {b} aborted the run instead of degrading: {e}"
            )),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base_dir);
    TortureReport {
        boundaries,
        failures,
    }
}

// ----- daemon torture ---------------------------------------------------

/// The torture daemon: one worker, tiny deterministic flow defaults, no
/// policy cache (every life must run the same plain flow).
fn torture_serve_config(state_dir: PathBuf) -> ServeConfig {
    let mut cfg = crate::serve_config(state_dir, 1);
    cfg.defaults.episodes = Some(2);
    cfg.defaults.explorations = Some(4);
    cfg
}

const TORTURE_JOB_ID: &str = "torture-job";

fn torture_job_line() -> String {
    format!(
        r#"{{"op":"submit","id":"{TORTURE_JOB_ID}","design":{{"spec":[5,0,8,40,70],"seed":11}},"zeta":4,"update_every":1}}"#
    )
}

/// Bounded poll for a terminal response (done or typed error). Returns
/// `None` if the job never terminates — which the torture loop reports
/// as a hang, the one shape the contract forbids alongside panics.
fn poll_terminal(server: &Server, id: &str) -> Option<String> {
    for _ in 0..6_000 {
        let resp = server.handle_request(&format!(r#"{{"op":"result","id":"{id}"}}"#));
        if resp.contains(r#""state":"done""#)
            || (resp.contains(r#""ok":false"#) && !resp.contains("unknown-job"))
        {
            return Some(resp);
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    None
}

/// One daemon life against `dir` with fault plan `vfs`: submit the
/// torture job, ride it to a terminal response (or a typed admission
/// rejection), end the life. Returns what the client saw, if anything.
fn daemon_life_one(dir: PathBuf, vfs: Vfs) -> Result<Option<String>, String> {
    let life = match Server::start_with_vfs(torture_serve_config(dir), vfs) {
        Ok(s) => s,
        // A typed startup refusal is a legal outcome of a crash inside
        // the journal-open boundaries; life 2 recovers from it.
        Err(_) => return Ok(None),
    };
    let resp = life.handle_request(&torture_job_line());
    let seen = if resp.contains(r#""ok":false"#) {
        Some(resp)
    } else {
        poll_terminal(&life, TORTURE_JOB_ID)
    };
    life.abort();
    match seen {
        Some(line) => Ok(Some(line)),
        None => Err("job never reached a terminal state in life 1".to_owned()),
    }
}

/// Tortures one daemon job: every journal + ladder write boundary is
/// crashed in turn; a second daemon life (plus an idempotent
/// resubmission) must deliver the baseline bits.
pub fn torture_daemon(tag: &str) -> TortureReport {
    // Clean recording life: baseline bits and the boundary count.
    let dir = scratch(tag, "baseline");
    let rec = Vfs::recording();
    let baseline = (|| -> Result<String, String> {
        let server = Server::start_with_vfs(torture_serve_config(dir.clone()), rec.clone())
            .map_err(|e| format!("baseline daemon failed to start: {e}"))?;
        server.handle_request(&torture_job_line());
        let done = poll_terminal(&server, TORTURE_JOB_ID);
        server.drain();
        done.ok_or_else(|| "baseline job never finished".to_owned())
    })();
    let _ = std::fs::remove_dir_all(&dir);
    let base_line = match baseline {
        Ok(line) if line.contains(r#""state":"done""#) => line,
        Ok(line) => {
            return TortureReport {
                boundaries: 0,
                failures: vec![format!("baseline daemon job ended badly: {line}")],
            }
        }
        Err(e) => {
            return TortureReport {
                boundaries: 0,
                failures: vec![e],
            }
        }
    };
    let boundaries = rec.mutation_ops();
    let base_hpwl = crate::hpwl_bits_of_line(&base_line);
    let base_macros = crate::macro_bits_of_line(&base_line);
    let mut failures = Vec::new();

    for b in 1..=boundaries {
        let dir = scratch(tag, &format!("crash-{b}"));
        let vfs = Vfs::with_plan(FailPlan::new(FaultKind::CrashAfter, b));
        if let Err(e) = daemon_life_one(dir.clone(), vfs) {
            failures.push(format!("crash at boundary {b}: {e}"));
            let _ = std::fs::remove_dir_all(&dir);
            continue;
        }
        // Life 2 over the survived journal: scan (quarantining damage,
        // sweeping orphans), replay, and an idempotent resubmission.
        let life2 = match Server::start(torture_serve_config(dir.clone())) {
            Ok(s) => s,
            Err(e) => {
                failures.push(format!(
                    "crash at boundary {b}: life 2 failed to start: {e}"
                ));
                let _ = std::fs::remove_dir_all(&dir);
                continue;
            }
        };
        life2.handle_request(&torture_job_line());
        let done = poll_terminal(&life2, TORTURE_JOB_ID);
        life2.drain();
        match done {
            Some(line) if line.contains(r#""state":"done""#) => {
                if crate::hpwl_bits_of_line(&line) != base_hpwl
                    || crate::macro_bits_of_line(&line) != base_macros
                {
                    failures.push(format!(
                        "crash at boundary {b}: life 2 answer diverged from baseline bits"
                    ));
                }
            }
            Some(line) => {
                failures.push(format!("crash at boundary {b}: life 2 ended badly: {line}"))
            }
            None => failures.push(format!(
                "crash at boundary {b}: job never terminated in life 2"
            )),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    TortureReport {
        boundaries,
        failures,
    }
}
