//! Table IV — MCTS runtime per ICCAD04-like benchmark.
//!
//! ```sh
//! cargo run --release -p mmp-bench --bin table4_runtime
//! ```
//!
//! Paper expectation: MCTS runtime correlates with the number of macros
//! (ibm10, the largest, takes the longest; ibm06, the smallest, the
//! shortest). Absolute minutes are hardware-bound; the *correlation* is the
//! reproducible shape.

use mmp_bench::{header, iccad_scale, run_ours};
use mmp_core::iccad04_suite;

/// Pearson correlation of two equal-length samples.
fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    cov / (vx.sqrt() * vy.sqrt()).max(1e-300)
}

fn main() {
    header(
        "Table IV — MCTS runtime per benchmark",
        "per circuit: macro count, macro groups, MCTS stage wall-clock",
    );
    let scale = iccad_scale();
    println!("scale factor {scale} (MMP_SCALE to change)\n");

    /// Paper-reported MCTS minutes, aligned with `iccad04_suite()` order
    /// (ibm05 absent).
    const PAPER_MINUTES: &[(&str, f64)] = &[
        ("ibm01", 27.07),
        ("ibm02", 34.8),
        ("ibm03", 28.16),
        ("ibm04", 82.43),
        ("ibm06", 18.29),
        ("ibm07", 66.10),
        ("ibm08", 48.51),
        ("ibm09", 40.33),
        ("ibm10", 91.7),
        ("ibm11", 47.88),
        ("ibm12", 50.02),
        ("ibm13", 36.71),
        ("ibm14", 55.48),
        ("ibm15", 22.07),
        ("ibm16", 25.4),
        ("ibm17", 79.42),
        ("ibm18", 30.01),
    ];

    let mut macros = Vec::new();
    let mut seconds = Vec::new();
    println!(
        "{:>6} | {:>6} {:>7} | {:>12} | {:>10}",
        "Cir.", "#Mac", "#Groups", "MCTS (s)", "paper (m)"
    );
    for spec in iccad04_suite() {
        if spec.movable_macros == 0 {
            continue; // ibm05
        }
        let spec = spec.scaled(scale);
        let result = run_ours(&spec, 16);
        let secs = result.timings.mcts.as_secs_f64();
        let paper = PAPER_MINUTES
            .iter()
            .find(|(n, _)| *n == spec.name)
            .map(|(_, m)| *m)
            .unwrap_or(f64::NAN);
        println!(
            "{:>6} | {:>6} {:>7} | {:>12.3} | {:>10.1}",
            spec.name,
            spec.movable_macros,
            result.assignment.len(),
            secs,
            paper
        );
        macros.push(spec.movable_macros as f64);
        seconds.push(secs);
    }

    let r = pearson(&macros, &seconds);
    println!("\ncorrelation(macro count, MCTS runtime) = {r:.2}");
    println!(
        "paper-vs-measured: the paper's runtimes range 18–92 minutes and track\n\
         the macro count; at bench scale the correlation sign and monotone trend\n\
         are the reproducible shape (expect r > 0)."
    );
}
