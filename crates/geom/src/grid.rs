//! The ζ×ζ grid partition of the placement region (Sec. II-A of the paper).

use crate::{Point, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a grid cell as `(col, row)` with the origin at the lower-left.
///
/// `col` advances along +x, `row` along +y. The linearised index used by the
/// RL action space is `row * zeta + col` (row-major from the bottom), matching
/// the flattened 16×16 policy output of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GridIndex {
    /// Column (x direction), `0..zeta`.
    pub col: usize,
    /// Row (y direction), `0..zeta`.
    pub row: usize,
}

impl GridIndex {
    /// Creates an index; no bounds are enforced here (the [`Grid`] methods
    /// validate against their own ζ).
    #[inline]
    pub const fn new(col: usize, row: usize) -> Self {
        GridIndex { col, row }
    }
}

impl fmt::Display for GridIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g({},{})", self.col, self.row)
    }
}

/// A ζ×ζ uniform partition of a placement region.
///
/// The paper divides the placement area into ζ×ζ grids (ζ = 16) and poses
/// macro placement as the allocation of macro *groups* to these cells. The
/// same grid underlies the RL state tensors and the MCTS action space.
///
/// # Example
///
/// ```
/// use mmp_geom::{Grid, GridIndex, Point, Rect};
///
/// let grid = Grid::new(Rect::new(0.0, 0.0, 160.0, 160.0), 16);
/// assert_eq!(grid.cell_width(), 10.0);
/// let idx = grid.locate(Point::new(25.0, 155.0)).unwrap();
/// assert_eq!(idx, GridIndex::new(2, 15));
/// assert_eq!(grid.flat_index(idx), 15 * 16 + 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    region: Rect,
    zeta: usize,
}

impl Grid {
    /// Creates a ζ×ζ grid over `region`.
    ///
    /// # Panics
    ///
    /// Panics if `zeta == 0` or `region` is empty — a degenerate grid has no
    /// meaningful action space.
    pub fn new(region: Rect, zeta: usize) -> Self {
        assert!(zeta > 0, "grid resolution zeta must be positive");
        assert!(
            !region.is_empty(),
            "placement region must have positive area"
        );
        Grid { region, zeta }
    }

    /// The partitioned region.
    #[inline]
    pub fn region(&self) -> &Rect {
        &self.region
    }

    /// Grid resolution ζ (cells per side).
    #[inline]
    pub fn zeta(&self) -> usize {
        self.zeta
    }

    /// Total number of cells, ζ².
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.zeta * self.zeta
    }

    /// Width of one cell in µm.
    #[inline]
    pub fn cell_width(&self) -> f64 {
        self.region.width / self.zeta as f64
    }

    /// Height of one cell in µm.
    #[inline]
    pub fn cell_height(&self) -> f64 {
        self.region.height / self.zeta as f64
    }

    /// Area of one cell in µm².
    #[inline]
    pub fn cell_area(&self) -> f64 {
        self.cell_width() * self.cell_height()
    }

    /// The rectangle of cell `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics when `col` or `row` is out of `0..zeta`.
    pub fn cell(&self, col: usize, row: usize) -> Rect {
        assert!(
            col < self.zeta && row < self.zeta,
            "grid index out of range"
        );
        Rect::new(
            self.region.x + col as f64 * self.cell_width(),
            self.region.y + row as f64 * self.cell_height(),
            self.cell_width(),
            self.cell_height(),
        )
    }

    /// The rectangle of the cell at `idx`.
    #[inline]
    pub fn cell_at(&self, idx: GridIndex) -> Rect {
        self.cell(idx.col, idx.row)
    }

    /// Maps a point to the cell containing it, or `None` when outside the
    /// region. Points exactly on the upper/right boundary map to the last
    /// cell.
    pub fn locate(&self, p: Point) -> Option<GridIndex> {
        if !self.region.contains_point(p) {
            return None;
        }
        // mmp-lint: allow(cast-truncation) why: operand is finite and non-negative after the contains_point guard; truncation toward zero is the binning rule
        let col = (((p.x - self.region.x) / self.cell_width()) as usize).min(self.zeta - 1);
        // mmp-lint: allow(cast-truncation) why: operand is finite and non-negative after the contains_point guard; truncation toward zero is the binning rule
        let row = (((p.y - self.region.y) / self.cell_height()) as usize).min(self.zeta - 1);
        Some(GridIndex::new(col, row))
    }

    /// Row-major (bottom-up) linear index of a cell, `row * ζ + col`.
    #[inline]
    pub fn flat_index(&self, idx: GridIndex) -> usize {
        idx.row * self.zeta + idx.col
    }

    /// Inverse of [`Grid::flat_index`].
    ///
    /// # Panics
    ///
    /// Panics when `flat >= ζ²`.
    #[inline]
    pub fn unflatten(&self, flat: usize) -> GridIndex {
        assert!(flat < self.cell_count(), "flat index out of range");
        GridIndex::new(flat % self.zeta, flat / self.zeta)
    }

    /// Iterates over all cell indices in flat order.
    pub fn indices(&self) -> impl Iterator<Item = GridIndex> + '_ {
        (0..self.cell_count()).map(|f| self.unflatten(f))
    }

    /// Number of whole-or-partial cells a footprint of size `w`×`h` spans,
    /// per axis: `(cols, rows)`, each at least 1 and at most ζ.
    ///
    /// This is the dimension of the paper's s_m matrix (Fig. 1): an outline
    /// that occupies two grid cells yields a 2×1 window.
    pub fn span_of(&self, w: f64, h: f64) -> (usize, usize) {
        // mmp-lint: allow(cast-truncation) why: ceil().max(1.0) makes the operand an integral f64 of at least 1, and the next line clamps to ζ
        let cols = (w / self.cell_width()).ceil().max(1.0) as usize;
        // mmp-lint: allow(cast-truncation) why: ceil().max(1.0) makes the operand an integral f64 of at least 1, and the next line clamps to ζ
        let rows = (h / self.cell_height()).ceil().max(1.0) as usize;
        (cols.min(self.zeta), rows.min(self.zeta))
    }

    /// Fraction of cell `(col, row)` covered by `r`, in `[0, 1]`.
    pub fn coverage(&self, col: usize, row: usize, r: &Rect) -> f64 {
        let cell = self.cell(col, row);
        cell.overlap_area(r) / cell.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid16() -> Grid {
        Grid::new(Rect::new(0.0, 0.0, 160.0, 160.0), 16)
    }

    #[test]
    fn basic_dimensions() {
        let g = grid16();
        assert_eq!(g.zeta(), 16);
        assert_eq!(g.cell_count(), 256);
        assert_eq!(g.cell_width(), 10.0);
        assert_eq!(g.cell_height(), 10.0);
        assert_eq!(g.cell_area(), 100.0);
    }

    #[test]
    #[should_panic(expected = "zeta must be positive")]
    fn zero_zeta_panics() {
        let _ = Grid::new(Rect::new(0.0, 0.0, 1.0, 1.0), 0);
    }

    #[test]
    #[should_panic(expected = "positive area")]
    fn empty_region_panics() {
        let _ = Grid::new(Rect::new(0.0, 0.0, 0.0, 1.0), 4);
    }

    #[test]
    fn cell_rectangles_tile_the_region() {
        let g = grid16();
        let total: f64 = g.indices().map(|i| g.cell_at(i).area()).sum();
        assert!((total - g.region().area()).abs() < 1e-6);
    }

    #[test]
    fn locate_interior_and_boundary() {
        let g = grid16();
        assert_eq!(g.locate(Point::new(0.0, 0.0)), Some(GridIndex::new(0, 0)));
        assert_eq!(
            g.locate(Point::new(160.0, 160.0)),
            Some(GridIndex::new(15, 15))
        );
        assert_eq!(g.locate(Point::new(-0.1, 5.0)), None);
        assert_eq!(g.locate(Point::new(5.0, 160.1)), None);
        assert_eq!(g.locate(Point::new(15.0, 25.0)), Some(GridIndex::new(1, 2)));
    }

    #[test]
    fn flat_index_roundtrip() {
        let g = grid16();
        for f in 0..g.cell_count() {
            assert_eq!(g.flat_index(g.unflatten(f)), f);
        }
    }

    #[test]
    fn span_matches_paper_example() {
        // Fig. 1: a macro group occupying two grids vertically gives a 2x1
        // window (rows x cols); span_of returns (cols, rows).
        let g = grid16();
        let (cols, rows) = g.span_of(8.0, 18.0);
        assert_eq!((cols, rows), (1, 2));
        // Tiny outlines still take one cell.
        assert_eq!(g.span_of(0.1, 0.1), (1, 1));
        // Exact multiples do not round up an extra cell.
        assert_eq!(g.span_of(20.0, 10.0), (2, 1));
        // Span is clamped to the grid size.
        assert_eq!(g.span_of(1e9, 1e9), (16, 16));
    }

    #[test]
    fn coverage_of_centered_rect() {
        let g = grid16();
        // Rect covering exactly the cell (3, 4).
        let r = g.cell(3, 4);
        assert!((g.coverage(3, 4, &r) - 1.0).abs() < 1e-12);
        assert_eq!(g.coverage(4, 4, &r), 0.0);
        // Half-covering rect.
        let half = Rect::new(r.x, r.y, r.width / 2.0, r.height);
        assert!((g.coverage(3, 4, &half) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn non_square_region() {
        let g = Grid::new(Rect::new(10.0, 20.0, 64.0, 32.0), 8);
        assert_eq!(g.cell_width(), 8.0);
        assert_eq!(g.cell_height(), 4.0);
        assert_eq!(g.cell(0, 0), Rect::new(10.0, 20.0, 8.0, 4.0));
        assert_eq!(g.locate(Point::new(10.0, 20.0)), Some(GridIndex::new(0, 0)));
    }

    proptest! {
        #[test]
        fn locate_agrees_with_cell_rect(x in 0f64..160.0, y in 0f64..160.0) {
            let g = grid16();
            let idx = g.locate(Point::new(x, y)).unwrap();
            let cell = g.cell_at(idx);
            prop_assert!(cell.contains_point(Point::new(x, y)));
        }

        #[test]
        fn coverage_is_in_unit_interval(col in 0usize..16, row in 0usize..16,
                                        rx in -50f64..200.0, ry in -50f64..200.0,
                                        rw in 0f64..100.0, rh in 0f64..100.0) {
            let g = grid16();
            let c = g.coverage(col, row, &Rect::new(rx, ry, rw, rh));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
        }
    }
}
