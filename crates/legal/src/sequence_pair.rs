//! The sequence-pair floorplan representation [Murata et al., ICCAD'95].
//!
//! A sequence pair (S⁺, S⁻) encodes the pairwise geometric relations of a
//! set of blocks: block *a* precedes *b* in **both** sequences ⇔ *a* is left
//! of *b*; *a* precedes *b* in S⁺ but follows it in S⁻ ⇔ *a* is **above**
//! *b*. Any placement maps to a sequence pair, and any sequence pair packs
//! into an overlap-free placement (the paper's Eq. 3 keeps the macro
//! relations of (S⁺, S⁻) while minimising wirelength).

use mmp_geom::Point;
use serde::{Deserialize, Serialize};

/// Pairwise geometric relation encoded by a sequence pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a` must end left of `b`: x_a + w_a ≤ x_b.
    LeftOf,
    /// `a` must end right of `b`.
    RightOf,
    /// `a` must end above `b`: y_b + h_b ≤ y_a.
    Above,
    /// `a` must end below `b`.
    Below,
}

/// A sequence pair over `n` blocks, stored as each block's *position* in
/// S⁺ and S⁻.
///
/// # Example
///
/// ```
/// use mmp_legal::{Relation, SequencePair};
/// use mmp_geom::Point;
///
/// // Block 0 left of block 1.
/// let sp = SequencePair::from_points(&[Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
/// assert_eq!(sp.relation(0, 1), Relation::LeftOf);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequencePair {
    pos_plus: Vec<usize>,
    pos_minus: Vec<usize>,
}

impl SequencePair {
    /// Builds a sequence pair from explicit sequences (each a permutation of
    /// `0..n` listing block indices in order).
    ///
    /// # Panics
    ///
    /// Panics when the two sequences are not permutations of the same
    /// `0..n`.
    pub fn from_sequences(s_plus: &[usize], s_minus: &[usize]) -> Self {
        let n = s_plus.len();
        assert_eq!(s_minus.len(), n, "sequence lengths differ");
        let mut pos_plus = vec![usize::MAX; n];
        let mut pos_minus = vec![usize::MAX; n];
        for (p, &b) in s_plus.iter().enumerate() {
            assert!(b < n && pos_plus[b] == usize::MAX, "S+ not a permutation");
            pos_plus[b] = p;
        }
        for (p, &b) in s_minus.iter().enumerate() {
            assert!(b < n && pos_minus[b] == usize::MAX, "S- not a permutation");
            pos_minus[b] = p;
        }
        SequencePair {
            pos_plus,
            pos_minus,
        }
    }

    /// Derives a sequence pair from block center points: S⁺ orders blocks by
    /// increasing `x − y`, S⁻ by increasing `x + y`. For an overlap-free
    /// placement this recovers relations consistent with the geometry; for
    /// an overlapped one it provides the *nearest* consistent relations —
    /// exactly what the paper's step 3 wants ("horizontal (vertical)
    /// geometric relations between macros are identified and recorded by the
    /// sequence pair").
    pub fn from_points(centers: &[Point]) -> Self {
        let n = centers.len();
        let mut order_plus: Vec<usize> = (0..n).collect();
        // Tie-break on index for determinism.
        order_plus.sort_by(|&a, &b| {
            let ka = centers[a].x - centers[a].y;
            let kb = centers[b].x - centers[b].y;
            // total_cmp: non-finite coordinates (a poisoned upstream solve)
            // still yield a deterministic permutation instead of a panic.
            ka.total_cmp(&kb).then(a.cmp(&b))
        });
        let mut order_minus: Vec<usize> = (0..n).collect();
        order_minus.sort_by(|&a, &b| {
            let ka = centers[a].x + centers[a].y;
            let kb = centers[b].x + centers[b].y;
            ka.total_cmp(&kb).then(a.cmp(&b))
        });
        SequencePair::from_sequences(&order_plus, &order_minus)
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.pos_plus.len()
    }

    /// `true` for the empty sequence pair.
    pub fn is_empty(&self) -> bool {
        self.pos_plus.is_empty()
    }

    /// The geometric relation the pair imposes between blocks `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics when `a == b` or either index is out of range.
    pub fn relation(&self, a: usize, b: usize) -> Relation {
        assert!(a != b, "a block has no relation to itself");
        let plus = self.pos_plus[a] < self.pos_plus[b];
        let minus = self.pos_minus[a] < self.pos_minus[b];
        match (plus, minus) {
            (true, true) => Relation::LeftOf,
            (false, false) => Relation::RightOf,
            (true, false) => Relation::Above,
            (false, true) => Relation::Below,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relations_from_axis_aligned_points() {
        // 0 at origin; 1 to its right; 2 above 0.
        let sp = SequencePair::from_points(&[
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
        ]);
        assert_eq!(sp.relation(0, 1), Relation::LeftOf);
        assert_eq!(sp.relation(1, 0), Relation::RightOf);
        assert_eq!(sp.relation(2, 0), Relation::Above);
        assert_eq!(sp.relation(0, 2), Relation::Below);
    }

    #[test]
    fn diagonal_points_prefer_horizontal_relation() {
        // 1 is up-right of 0 at 45°; the x−y keys tie, index breaks the tie,
        // and x+y orders 0 first ⇒ "0 left of 1" or "0 below 1" are both
        // geometrically sensible; our derivation must pick a *consistent*
        // relation (either LeftOf or Below).
        let sp = SequencePair::from_points(&[Point::new(0.0, 0.0), Point::new(10.0, 10.0)]);
        let r = sp.relation(0, 1);
        assert!(matches!(r, Relation::LeftOf | Relation::Below), "{r:?}");
    }

    #[test]
    fn from_sequences_roundtrip() {
        let sp = SequencePair::from_sequences(&[2, 0, 1], &[0, 2, 1]);
        // S+ = (2,0,1), S- = (0,2,1):
        // 2 before 0 in S+, after in S- ⇒ 2 above 0.
        assert_eq!(sp.relation(2, 0), Relation::Above);
        // 0 before 1 in both ⇒ left.
        assert_eq!(sp.relation(0, 1), Relation::LeftOf);
        // 2 before 1 in both ⇒ left.
        assert_eq!(sp.relation(2, 1), Relation::LeftOf);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_permutation_is_rejected() {
        let _ = SequencePair::from_sequences(&[0, 0], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "no relation to itself")]
    fn self_relation_panics() {
        let sp = SequencePair::from_points(&[Point::ORIGIN, Point::new(1.0, 0.0)]);
        let _ = sp.relation(1, 1);
    }

    #[test]
    fn empty_sequence_pair() {
        let sp = SequencePair::from_points(&[]);
        assert!(sp.is_empty());
        assert_eq!(sp.len(), 0);
    }

    proptest! {
        #[test]
        fn relations_are_antisymmetric(
            pts in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..12),
        ) {
            let centers: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let sp = SequencePair::from_points(&centers);
            for a in 0..centers.len() {
                for b in 0..centers.len() {
                    if a == b { continue; }
                    let r_ab = sp.relation(a, b);
                    let r_ba = sp.relation(b, a);
                    let expected = match r_ab {
                        Relation::LeftOf => Relation::RightOf,
                        Relation::RightOf => Relation::LeftOf,
                        Relation::Above => Relation::Below,
                        Relation::Below => Relation::Above,
                    };
                    prop_assert_eq!(r_ba, expected);
                }
            }
        }

        #[test]
        fn disjoint_horizontal_stacking_is_recovered(
            xs in proptest::collection::vec(0.0f64..1000.0, 2..10),
        ) {
            // Blocks spaced strictly along x at equal y: every pair must be
            // Left/Right related in x order.
            let mut sorted = xs.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            sorted.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
            prop_assume!(sorted.len() >= 2);
            let centers: Vec<Point> = sorted.iter().map(|&x| Point::new(x, 5.0)).collect();
            let sp = SequencePair::from_points(&centers);
            for i in 0..centers.len() {
                for j in (i + 1)..centers.len() {
                    prop_assert_eq!(sp.relation(i, j), Relation::LeftOf);
                }
            }
        }
    }
}
