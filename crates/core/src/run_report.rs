//! The machine-readable run report behind the CLI's `--report-json`.
//!
//! One [`RunReport`] aggregates everything a single [`crate::MacroPlacer`]
//! run produced — final HPWL, per-stage wall-clocks, the RL training
//! summary, the full MCTS [`SearchStats`], the [`DegradationReport`] and a
//! dump of the observability metrics registry — into one serializable
//! struct. Archive it next to benchmark outputs and a run becomes
//! reproducible evidence instead of scrollback.

use crate::checkpoint::CheckpointSummary;
use crate::degrade::DegradationReport;
use crate::flow::{PlacementResult, RefineSummary, StageTimings};
use mmp_mcts::SearchStats;
use mmp_obs::MetricsSnapshot;
use mmp_rl::TrainingHistory;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Per-stage wall-clock in milliseconds (fractional, so sub-millisecond
/// laptop-scale runs still report non-zero stages).
///
/// The vendored serde stub cannot serialize [`Duration`], so the report
/// mirrors [`StageTimings`] as plain numbers — the same convention
/// [`crate::RunBudget`] uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimingsMs {
    /// Preprocessing: prototyping placement + clustering.
    pub preprocess_ms: f64,
    /// RL pre-training.
    pub training_ms: f64,
    /// MCTS placement optimization.
    pub mcts_ms: f64,
    /// Legalization + final cell placement.
    pub finalize_ms: f64,
    /// Optional swap refinement (zero when off; absent in reports written
    /// before the refinement stage existed).
    #[serde(default)]
    pub refine_ms: f64,
    /// End-to-end wall-clock (at least the sum of the stages).
    pub total_ms: f64,
}

impl TimingsMs {
    /// Converts flow timings to report milliseconds.
    pub fn from_timings(t: &StageTimings) -> Self {
        TimingsMs {
            preprocess_ms: ms(t.preprocess),
            training_ms: ms(t.training),
            mcts_ms: ms(t.mcts),
            finalize_ms: ms(t.finalize),
            refine_ms: ms(t.refine),
            total_ms: ms(t.total),
        }
    }

    /// Sum of the per-stage entries (excludes inter-stage overhead).
    pub fn stage_sum_ms(&self) -> f64 {
        self.preprocess_ms + self.training_ms + self.mcts_ms + self.finalize_ms + self.refine_ms
    }
}

/// Compact summary of a [`TrainingHistory`] (the full per-episode curves
/// stay out of the report; they are plottable via the library API).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingSummary {
    /// Episodes that actually ran.
    pub episodes: usize,
    /// Optimizer chunks rejected by the gradient-health guard.
    pub rejected_updates: usize,
    /// `true` when the training deadline expired early.
    pub early_stopped: bool,
    /// Reward of the final episode (0 when no episode ran).
    pub final_reward: f64,
    /// Best (lowest) episode wirelength seen (0 when no episode ran).
    pub best_wirelength: f64,
}

impl TrainingSummary {
    /// Summarizes a training history.
    pub fn from_history(h: &TrainingHistory) -> Self {
        let best = h
            .episode_wirelengths
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        TrainingSummary {
            episodes: h.episode_rewards.len(),
            rejected_updates: h.rejected_updates,
            early_stopped: h.early_stopped,
            final_reward: h.episode_rewards.last().copied().unwrap_or(0.0),
            // INFINITY (empty history) would serialize as null; report 0.
            best_wirelength: if best.is_finite() { best } else { 0.0 },
        }
    }
}

/// Everything one placement run produced, in serializable form.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Design name.
    pub circuit: String,
    /// Final full-netlist HPWL.
    pub hpwl: f64,
    /// Per-stage wall-clock.
    pub timings: TimingsMs,
    /// RL pre-training summary (includes `rejected_updates`).
    pub training: TrainingSummary,
    /// Full MCTS search-effort counters (includes `nan_evaluations`).
    pub search: SearchStats,
    /// Every graceful-degradation event the run took.
    pub degradation: DegradationReport,
    /// What checkpointing did (disabled/default on plain runs; absent in
    /// reports written before the checkpoint subsystem existed).
    #[serde(default)]
    pub checkpoint: CheckpointSummary,
    /// What the optional swap-refinement stage did (`None` when off;
    /// absent in reports written before the stage existed).
    #[serde(default)]
    pub refine: Option<RefineSummary>,
    /// Observability counters (e.g. `analytic.cg_iters`,
    /// `legal.global_rounds`) captured from the run's metrics registry.
    pub counters: BTreeMap<String, u64>,
    /// Observability gauges (e.g. `flow.hpwl`).
    pub gauges: BTreeMap<String, f64>,
    /// Total time per observability span scope in milliseconds (e.g.
    /// `stage.train`), from the duration histograms.
    pub span_ms: BTreeMap<String, f64>,
}

impl RunReport {
    /// Builds the report for one completed run.
    ///
    /// `metrics` is the snapshot of the run's [`mmp_obs::Obs`] handle
    /// (pass a default snapshot when observability was off).
    pub fn new(
        circuit: impl Into<String>,
        result: &PlacementResult,
        metrics: &MetricsSnapshot,
    ) -> Self {
        RunReport {
            circuit: circuit.into(),
            hpwl: result.hpwl,
            timings: TimingsMs::from_timings(&result.timings),
            training: TrainingSummary::from_history(&result.training),
            search: result.mcts_stats,
            degradation: result.degradation.clone(),
            checkpoint: result.checkpoint.clone(),
            refine: result.refine,
            counters: metrics.counters.clone(),
            gauges: metrics.gauges.clone(),
            span_ms: metrics
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), ms(h.total)))
                .collect(),
        }
    }

    /// Serializes to a JSON string.
    ///
    /// # Errors
    ///
    /// Propagates the (practically unreachable) serializer error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserializes from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse/shape error message.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> PlacementResult {
        use crate::flow::{MacroPlacer, PlacerConfig};
        use mmp_netlist::SyntheticSpec;
        let d = SyntheticSpec::small("rr", 5, 0, 8, 40, 70, false, 2).generate();
        let mut cfg = PlacerConfig::fast(4);
        cfg.trainer.episodes = 3;
        cfg.mcts.explorations = 4;
        MacroPlacer::new(cfg).place(&d).unwrap()
    }

    #[test]
    fn report_round_trips_through_json() {
        let result = sample_result();
        let obs = mmp_obs::Obs::metrics_only();
        obs.count("analytic.cg_iters", 12);
        obs.gauge("flow.hpwl", result.hpwl);
        obs.record_duration("stage.train", Duration::from_millis(5));
        let report = RunReport::new("rr", &result, &obs.snapshot());
        let json = report.to_json().unwrap();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.counters.get("analytic.cg_iters"), Some(&12));
        assert!(back.span_ms.contains_key("stage.train"));
        assert!(json.contains("\"nan_evaluations\""));
        assert!(json.contains("\"rejected_updates\""));
        assert!(json.contains("\"degradation\""));
    }

    #[test]
    fn stage_timings_fill_the_total() {
        let result = sample_result();
        let t = TimingsMs::from_timings(&result.timings);
        assert!(t.total_ms > 0.0);
        // Stages never exceed the measured total...
        assert!(t.stage_sum_ms() <= t.total_ms * 1.001 + 0.1);
        // ...and account for nearly all of it (inter-stage glue is cheap).
        assert!(
            t.stage_sum_ms() >= t.total_ms * 0.5,
            "stages {} ms of total {} ms",
            t.stage_sum_ms(),
            t.total_ms
        );
    }

    #[test]
    fn training_summary_compresses_history() {
        let h = TrainingHistory {
            episode_rewards: vec![0.1, 0.9],
            episode_wirelengths: vec![50.0, 30.0],
            rejected_updates: 2,
            early_stopped: true,
        };
        let s = TrainingSummary::from_history(&h);
        assert_eq!(s.episodes, 2);
        assert_eq!(s.rejected_updates, 2);
        assert!(s.early_stopped);
        assert_eq!(s.final_reward, 0.9);
        assert_eq!(s.best_wirelength, 30.0);
        let empty = TrainingSummary::from_history(&TrainingHistory::default());
        assert_eq!(empty.best_wirelength, 0.0);
    }

    #[test]
    fn default_report_is_serializable() {
        // A defaulted report (no run) must still round-trip: the CLI
        // emits one even for the ibm05 path where search never ran.
        let r = RunReport::default();
        let back = RunReport::from_json(&r.to_json().unwrap()).unwrap();
        assert_eq!(back, r);
    }
}
