//! Half-perimeter wirelength (HPWL) — the paper's quality metric.
//!
//! Every experiment in the paper (Tables II & III, the reward of Eq. 9)
//! scores a placement by the sum over nets of the half-perimeter of the
//! bounding box of the net's pins.

use crate::Point;
use serde::{Deserialize, Serialize};

/// An incrementally-built bounding box over a set of points.
///
/// Start [`BoundingBox::empty`], [`BoundingBox::extend`] with each pin
/// position, then read [`BoundingBox::half_perimeter`].
///
/// # Example
///
/// ```
/// use mmp_geom::{BoundingBox, Point};
///
/// let mut bb = BoundingBox::empty();
/// bb.extend(Point::new(0.0, 0.0));
/// bb.extend(Point::new(3.0, 4.0));
/// assert_eq!(bb.half_perimeter(), 7.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
    count: usize,
}

impl BoundingBox {
    /// A bounding box containing no points; its half-perimeter is zero.
    pub fn empty() -> Self {
        BoundingBox {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
            count: 0,
        }
    }

    /// Grows the box to contain `p`.
    #[inline]
    pub fn extend(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
        self.count += 1;
    }

    /// Number of points absorbed so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` when no point has been absorbed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Horizontal extent; zero for fewer than two distinct x's.
    #[inline]
    pub fn width(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max_x - self.min_x
        }
    }

    /// Vertical extent; zero for fewer than two distinct y's.
    #[inline]
    pub fn height(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max_y - self.min_y
        }
    }

    /// Half-perimeter wirelength of the box: width + height.
    ///
    /// Nets with fewer than two pins contribute zero.
    #[inline]
    pub fn half_perimeter(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.width() + self.height()
        }
    }

    /// Minimum corner of the box, or `None` when empty.
    pub fn min(&self) -> Option<Point> {
        (self.count > 0).then(|| Point::new(self.min_x, self.min_y))
    }

    /// Maximum corner of the box, or `None` when empty.
    pub fn max(&self) -> Option<Point> {
        (self.count > 0).then(|| Point::new(self.max_x, self.max_y))
    }
}

impl Default for BoundingBox {
    fn default() -> Self {
        BoundingBox::empty()
    }
}

impl FromIterator<Point> for BoundingBox {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        let mut bb = BoundingBox::empty();
        for p in iter {
            bb.extend(p);
        }
        bb
    }
}

impl Extend<Point> for BoundingBox {
    fn extend<I: IntoIterator<Item = Point>>(&mut self, iter: I) {
        for p in iter {
            BoundingBox::extend(self, p);
        }
    }
}

/// HPWL of a single net given its pin positions.
///
/// # Example
///
/// ```
/// use mmp_geom::{hpwl_of_points, Point};
///
/// let pins = [Point::new(0.0, 0.0), Point::new(2.0, 0.0), Point::new(1.0, 5.0)];
/// assert_eq!(hpwl_of_points(pins.iter().copied()), 7.0);
/// ```
pub fn hpwl_of_points<I: IntoIterator<Item = Point>>(pins: I) -> f64 {
    pins.into_iter().collect::<BoundingBox>().half_perimeter()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_singleton_have_zero_hpwl() {
        assert_eq!(BoundingBox::empty().half_perimeter(), 0.0);
        assert_eq!(hpwl_of_points(std::iter::empty()), 0.0);
        assert_eq!(hpwl_of_points([Point::new(5.0, 5.0)]), 0.0);
    }

    #[test]
    fn two_pin_net_is_manhattan_distance() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 5.0);
        assert_eq!(hpwl_of_points([a, b]), a.manhattan_distance(b));
    }

    #[test]
    fn multi_pin_net_hpwl() {
        let pins = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 2.0),
            Point::new(5.0, 8.0),
            Point::new(3.0, 3.0),
        ];
        assert_eq!(hpwl_of_points(pins), 10.0 + 8.0);
    }

    #[test]
    fn from_iterator_and_extend_agree() {
        let pins = [
            Point::new(0.0, 0.0),
            Point::new(3.0, 7.0),
            Point::new(-1.0, 2.0),
        ];
        let a: BoundingBox = pins.iter().copied().collect();
        let mut b = BoundingBox::empty();
        Extend::extend(&mut b, pins.iter().copied());
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.min(), Some(Point::new(-1.0, 0.0)));
        assert_eq!(a.max(), Some(Point::new(3.0, 7.0)));
    }

    proptest! {
        #[test]
        fn hpwl_invariant_under_translation(
            pts in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..20),
            dx in -1e3f64..1e3, dy in -1e3f64..1e3,
        ) {
            let base: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let shifted: Vec<Point> =
                base.iter().map(|p| Point::new(p.x + dx, p.y + dy)).collect();
            let a = hpwl_of_points(base);
            let b = hpwl_of_points(shifted);
            prop_assert!((a - b).abs() < 1e-6);
        }

        #[test]
        fn hpwl_monotone_under_extension(
            pts in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..20),
            extra_x in -1e3f64..1e3, extra_y in -1e3f64..1e3,
        ) {
            let base: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let before = hpwl_of_points(base.iter().copied());
            let after = hpwl_of_points(base.into_iter().chain([Point::new(extra_x, extra_y)]));
            prop_assert!(after + 1e-9 >= before);
        }

        #[test]
        fn hpwl_nonnegative(
            pts in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 0..20),
        ) {
            let pins = pts.iter().map(|&(x, y)| Point::new(x, y));
            prop_assert!(hpwl_of_points(pins) >= 0.0);
        }
    }
}
