#!/bin/bash
set -x
for exp in fig4_reward fig5_mcts_vs_rl table2_industrial table3_iccad04 table4_runtime ablations; do
  cargo run --release -p mmp-bench --bin $exp > results/$exp.txt 2> results/$exp.time || echo "FAILED $exp" >> results/failures.txt
  echo "done $exp"
done
echo ALL_DONE
