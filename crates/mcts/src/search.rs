//! The exploration loop: selection → expansion → evaluation →
//! backpropagation (Sec. IV-B, Fig. 3).

use crate::tree::SearchTree;
use mmp_geom::GridIndex;
use mmp_rl::{Agent, PlacementEnv, RewardScale, Trainer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// MCTS parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MctsConfig {
    /// PUCT exploration constant c (paper: 1.05).
    pub c_puct: f64,
    /// Explorations γ per macro-group decision.
    pub explorations: usize,
    /// Multiplicative noise amplitude applied to expansion priors
    /// (AlphaZero-style root-diversification). 0 keeps the search fully
    /// deterministic; the [`ensemble`](crate::ensemble) uses small positive
    /// values with distinct seeds per worker.
    pub prior_noise: f32,
    /// Seed for the prior noise (ignored when `prior_noise == 0`).
    pub noise_seed: u64,
}

impl Default for MctsConfig {
    fn default() -> Self {
        MctsConfig {
            c_puct: 1.05,
            explorations: 64,
            prior_noise: 0.0,
            noise_seed: 0,
        }
    }
}

/// Search effort counters — the evidence behind the paper's runtime claim
/// (real placements run only at terminal leaves).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Explorations performed.
    pub explorations: usize,
    /// Leaves evaluated by V_θ (cheap).
    pub value_evaluations: usize,
    /// Leaves evaluated by the real legalize-and-place pipeline
    /// (expensive).
    pub terminal_evaluations: usize,
    /// Nodes allocated in the tree.
    pub nodes: usize,
}

/// Result of one MCTS placement run.
#[derive(Debug, Clone, PartialEq)]
pub struct MctsOutcome {
    /// Grid cell per macro group.
    pub assignment: Vec<GridIndex>,
    /// Wirelength of the final allocation (trainer's evaluator).
    pub wirelength: f64,
    /// Reward 𝔇(W) of the final allocation.
    pub reward: f64,
    /// Search effort counters.
    pub stats: SearchStats,
}

/// The MCTS placement-optimization stage (Algorithm 1, lines 11–16).
#[derive(Debug)]
pub struct MctsPlacer {
    config: MctsConfig,
    noise: RefCell<SmallRng>,
}

impl Default for MctsPlacer {
    fn default() -> Self {
        MctsPlacer::new(MctsConfig::default())
    }
}

impl Clone for MctsPlacer {
    fn clone(&self) -> Self {
        MctsPlacer::new(self.config.clone())
    }
}

impl MctsPlacer {
    /// Creates a placer with the given configuration.
    pub fn new(config: MctsConfig) -> Self {
        let noise = RefCell::new(SmallRng::seed_from_u64(config.noise_seed ^ 0x0153));
        MctsPlacer { config, noise }
    }

    /// The active configuration.
    pub fn config(&self) -> &MctsConfig {
        &self.config
    }

    /// Runs the full search: γ explorations per macro group, committing the
    /// most-visited child each time, then scores the final allocation.
    pub fn place(
        &self,
        trainer: &Trainer<'_>,
        agent: &mut Agent,
        scale: &RewardScale,
    ) -> MctsOutcome {
        let mut env = PlacementEnv::new(trainer.design(), trainer.coarse(), trainer.grid().clone());
        let mut tree = SearchTree::new();
        let mut stats = SearchStats::default();

        let steps = env.episode_len();
        for _ in 0..steps {
            for _ in 0..self.config.explorations.max(1) {
                self.explore(&mut tree, &env, trainer, agent, scale, &mut stats);
            }
            // Commit the most-visited edge (ties: higher Q, then prior).
            let root = tree.root();
            let (edge_idx, action) = {
                let edges = tree
                    .node(root)
                    .edges
                    .as_ref()
                    .expect("root expanded by explorations");
                let best = edges
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        (a.n, a.q(), a.p)
                            .partial_cmp(&(b.n, b.q(), b.p))
                            .expect("finite stats")
                    })
                    .expect("at least one edge");
                (best.0, best.1.action)
            };
            env.step(action);
            let child = tree.child_of(root, edge_idx);
            tree.advance_root(child);
        }

        let wirelength = trainer.wirelength_of(&env);
        stats.nodes = tree.len();
        MctsOutcome {
            assignment: env.assignment().to_vec(),
            wirelength,
            reward: scale.reward(wirelength),
            stats,
        }
    }

    /// One exploration from the current root (Fig. 3).
    fn explore(
        &self,
        tree: &mut SearchTree,
        root_env: &PlacementEnv<'_>,
        trainer: &Trainer<'_>,
        agent: &mut Agent,
        scale: &RewardScale,
        stats: &mut SearchStats,
    ) {
        stats.explorations += 1;
        let mut sim = root_env.clone();
        let mut node = tree.root();
        let mut path: Vec<(usize, usize)> = Vec::new();

        // Selection: descend while the node is expanded.
        while tree.node(node).edges.is_some() && !sim.is_terminal() {
            let sum_n = tree.visit_sum(node) as f64;
            // √ΣN of Eq. 11, floored at 1 so priors break the all-zero tie
            // on a freshly expanded node.
            let sqrt_sum = sum_n.sqrt().max(1.0);
            let (edge_idx, action) = {
                let edges = tree.node(node).edges.as_ref().expect("expanded");
                let best = edges
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        let ua =
                            a.q() + self.config.c_puct * a.p as f64 * sqrt_sum / (1.0 + a.n as f64);
                        let ub =
                            b.q() + self.config.c_puct * b.p as f64 * sqrt_sum / (1.0 + b.n as f64);
                        ua.partial_cmp(&ub).expect("finite PUCT scores")
                    })
                    .expect("edges exist");
                (best.0, best.1.action)
            };
            path.push((node, edge_idx));
            sim.step(action);
            node = tree.child_of(node, edge_idx);
        }

        // Evaluation (and expansion for non-terminal leaves).
        let value = if sim.is_terminal() {
            // Terminal: run the real pipeline once, cache the reward.
            match tree.node(node).terminal_reward {
                Some(r) => r,
                None => {
                    stats.terminal_evaluations += 1;
                    let r = scale.reward(trainer.wirelength_of(&sim));
                    tree.node_mut(node).terminal_reward = Some(r);
                    r
                }
            }
        } else {
            // Non-terminal unexplored leaf: expand with π_θ priors and
            // score it with V_θ instead of a rollout (Sec. IV-B3).
            stats.value_evaluations += 1;
            let state = sim.state();
            let out = agent.policy_value(&state);
            let priors = if self.config.prior_noise > 0.0 {
                let mut rng = self.noise.borrow_mut();
                let amp = self.config.prior_noise;
                out.probs
                    .iter()
                    .map(|&p| p * (1.0 + amp * (rng.gen::<f32>() - 0.5)))
                    .collect()
            } else {
                out.probs
            };
            tree.expand(node, &priors);
            out.value as f64
        };

        tree.backpropagate(&path, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_netlist::SyntheticSpec;
    use mmp_rl::TrainerConfig;

    fn trained(seed: u64, episodes: usize) -> (mmp_netlist::Design, TrainerConfig) {
        let d = SyntheticSpec::small("ms", 6, 0, 8, 40, 70, false, seed).generate();
        let mut cfg = TrainerConfig::tiny(4);
        cfg.episodes = episodes;
        (d, cfg)
    }

    #[test]
    fn mcts_places_every_group() {
        let (d, cfg) = trained(1, 3);
        let trainer = Trainer::new(&d, cfg);
        let mut out = trainer.train();
        let placer = MctsPlacer::new(MctsConfig {
            explorations: 6,
            ..MctsConfig::default()
        });
        let result = placer.place(&trainer, &mut out.agent, &out.scale);
        assert_eq!(
            result.assignment.len(),
            trainer.coarse().macro_groups().len()
        );
        assert!(result.wirelength > 0.0);
        assert!(result.stats.nodes > 1);
        assert_eq!(
            result.stats.explorations,
            6 * trainer.coarse().macro_groups().len()
        );
    }

    #[test]
    fn mcts_is_deterministic() {
        let (d, cfg) = trained(2, 2);
        let trainer = Trainer::new(&d, cfg);
        let mut out = trainer.train();
        let placer = MctsPlacer::new(MctsConfig {
            explorations: 4,
            ..MctsConfig::default()
        });
        let a = placer.place(&trainer, &mut out.agent.clone(), &out.scale);
        let b = placer.place(&trainer, &mut out.agent, &out.scale);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.wirelength, b.wirelength);
    }

    #[test]
    fn value_evaluations_dominate_terminal_evaluations() {
        // The paper's runtime claim: non-terminal leaves are scored by V_θ,
        // so real placements are rare.
        let (d, cfg) = trained(3, 2);
        let trainer = Trainer::new(&d, cfg);
        let mut out = trainer.train();
        let placer = MctsPlacer::new(MctsConfig {
            explorations: 8,
            ..MctsConfig::default()
        });
        let result = placer.place(&trainer, &mut out.agent, &out.scale);
        assert!(
            result.stats.value_evaluations >= result.stats.terminal_evaluations,
            "{:?}",
            result.stats
        );
    }

    #[test]
    fn more_explorations_never_hurt_much() {
        // Not a strict guarantee, but with the same agent a deeper search
        // should not be wildly worse; this guards sign errors in PUCT.
        let (d, cfg) = trained(4, 3);
        let trainer = Trainer::new(&d, cfg);
        let mut out = trainer.train();
        let shallow = MctsPlacer::new(MctsConfig {
            explorations: 2,
            ..MctsConfig::default()
        })
        .place(&trainer, &mut out.agent.clone(), &out.scale);
        let deep = MctsPlacer::new(MctsConfig {
            explorations: 24,
            ..MctsConfig::default()
        })
        .place(&trainer, &mut out.agent, &out.scale);
        assert!(
            deep.wirelength <= shallow.wirelength * 1.5,
            "deep {} vs shallow {}",
            deep.wirelength,
            shallow.wirelength
        );
    }

    #[test]
    fn mcts_beats_or_matches_greedy_rl() {
        // The Fig. 5 claim at miniature scale: MCTS post-optimization is at
        // least as good as the greedy RL rollout of the same agent.
        let (d, cfg) = trained(5, 6);
        let trainer = Trainer::new(&d, cfg);
        let mut out = trainer.train();
        let (_, rl_w) = trainer.greedy_episode(&mut out.agent);
        let mcts = MctsPlacer::new(MctsConfig {
            explorations: 32,
            ..MctsConfig::default()
        })
        .place(&trainer, &mut out.agent, &out.scale);
        assert!(
            mcts.wirelength <= rl_w * 1.05,
            "mcts {} should not lose to greedy RL {} by >5%",
            mcts.wirelength,
            rl_w
        );
    }

    #[test]
    fn default_config_matches_paper_constant() {
        let cfg = MctsConfig::default();
        assert_eq!(cfg.c_puct, 1.05);
    }
}
