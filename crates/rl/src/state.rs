//! State representation (paper Sec. III-B, Fig. 1).
//!
//! * `s_p` — per-cell utilization of the current (partial) placement, with
//!   allocated groups aligned to the lower-left corner of their cells and
//!   values capped at 1.
//! * `s_m` — the footprint matrix of the next macro group: per-cell
//!   utilization of the group's outline anchored at a cell's lower-left
//!   corner.
//! * `s_a` — availability of each anchor cell for the next group, Eq. 4:
//!   the n-th root of Π (1 − s_m(gᵢ))·(1 − s_p(gᵢ)) over the n covered
//!   cells (0 when the footprint would leave the grid).

use mmp_geom::{Grid, GridIndex};

/// Per-cell utilization map `s_p` over a ζ×ζ grid, updated as macro groups
/// are allocated.
#[derive(Debug, Clone, PartialEq)]
pub struct Occupancy {
    zeta: usize,
    util: Vec<f32>,
}

impl Occupancy {
    /// An empty occupancy over a ζ×ζ grid.
    pub fn new(zeta: usize) -> Self {
        Occupancy {
            zeta,
            util: vec![0.0; zeta * zeta],
        }
    }

    /// Grid resolution.
    pub fn zeta(&self) -> usize {
        self.zeta
    }

    /// The flat utilization map (row-major from the bottom), values in
    /// `[0, 1]`.
    pub fn as_slice(&self) -> &[f32] {
        &self.util
    }

    /// Utilization of one cell.
    pub fn at(&self, idx: GridIndex) -> f32 {
        self.util[idx.row * self.zeta + idx.col]
    }

    /// Adds a rectangle's coverage (µm²-accurate) to the map, e.g. a
    /// preplaced macro outline. Values cap at 1.
    pub fn add_rect(&mut self, grid: &Grid, rect: &mmp_geom::Rect) {
        for idx in grid.indices() {
            let cov = grid.coverage(idx.col, idx.row, rect) as f32;
            if cov > 0.0 {
                let u = &mut self.util[idx.row * self.zeta + idx.col];
                *u = (*u + cov).min(1.0);
            }
        }
    }

    /// Allocates a macro-group footprint anchored (lower-left) at `at`:
    /// each covered cell's utilization grows by the footprint's per-cell
    /// utilization, capped at 1. Cells outside the grid are silently
    /// dropped (the availability mask prevents such actions; the RL random
    /// phase may still pick them).
    pub fn place(&mut self, footprint: &Footprint, at: GridIndex) {
        for (dc, dr, u) in footprint.cells() {
            let (c, r) = (at.col + dc, at.row + dr);
            if c < self.zeta && r < self.zeta {
                let cell = &mut self.util[r * self.zeta + c];
                *cell = (*cell + u).min(1.0);
            }
        }
    }
}

/// The footprint matrix `s_m` of one macro group: per-cell utilization of
/// its outline anchored at a lower-left cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Footprint {
    cols: usize,
    rows: usize,
    /// Row-major utilization, `rows × cols`.
    util: Vec<f32>,
}

impl Footprint {
    /// Builds the footprint of a `w × h` µm outline on `grid` (Fig. 1's
    /// s_m: its dimension is the number of cells the outline spans).
    pub fn new(grid: &Grid, w: f64, h: f64) -> Self {
        let (cols, rows) = grid.span_of(w, h);
        let cw = grid.cell_width();
        let ch = grid.cell_height();
        let mut util = Vec::with_capacity(cols * rows);
        for r in 0..rows {
            for c in 0..cols {
                let ox = (w - c as f64 * cw).clamp(0.0, cw);
                let oy = (h - r as f64 * ch).clamp(0.0, ch);
                util.push((ox * oy / (cw * ch)) as f32);
            }
        }
        Footprint { cols, rows, util }
    }

    /// Spanned columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Spanned rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Iterates `(dcol, drow, utilization)` over the footprint's cells.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.rows)
            .flat_map(move |r| (0..self.cols).map(move |c| (c, r, self.util[r * self.cols + c])))
    }

    /// Number of covered cells n (the root order of Eq. 4).
    pub fn cell_count(&self) -> usize {
        self.cols * self.rows
    }
}

/// The availability map `s_a` of Eq. 4 for anchoring `footprint` on every
/// grid cell given the occupancy `s_p`.
///
/// # Example
///
/// ```
/// use mmp_geom::{Grid, Rect};
/// use mmp_rl::state::{availability, Footprint, Occupancy};
///
/// let grid = Grid::new(Rect::new(0.0, 0.0, 20.0, 20.0), 2);
/// let occ = Occupancy::new(2);
/// // A group exactly one cell large: on an empty grid only anchors whose
/// // footprint fits are (slightly) available.
/// let fp = Footprint::new(&grid, 10.0, 10.0);
/// let sa = availability(&occ, &fp);
/// assert_eq!(sa.len(), 4);
/// ```
///
/// See the unit tests for the literal Fig. 1 computation (V(g) = 0.32).
pub fn availability(occupancy: &Occupancy, footprint: &Footprint) -> Vec<f32> {
    let zeta = occupancy.zeta();
    let mut out = vec![0.0f32; zeta * zeta];
    let n = footprint.cell_count() as f32;
    for row in 0..zeta {
        for col in 0..zeta {
            // The footprint must fit inside the grid.
            if col + footprint.cols() > zeta || row + footprint.rows() > zeta {
                continue;
            }
            let mut product = 1.0f64;
            for (dc, dr, u_m) in footprint.cells() {
                // A group fully demanding a cell would read (1 − s_m) = 0 and
                // zero every anchor; cap the demand term so availability
                // remains driven by the occupancy of the covered cells.
                let u_m = u_m.min(0.99);
                let u_p = occupancy.at(GridIndex::new(col + dc, row + dr));
                product *= ((1.0 - u_m) as f64).max(0.0) * ((1.0 - u_p) as f64).max(0.0);
            }
            let v = product.powf(1.0 / n as f64) as f32;
            out[row * zeta + col] = v.max(0.0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_geom::Rect;

    fn grid(zeta: usize) -> Grid {
        Grid::new(
            Rect::new(0.0, 0.0, zeta as f64 * 10.0, zeta as f64 * 10.0),
            zeta,
        )
    }

    #[test]
    fn footprint_of_subcell_outline() {
        let g = grid(4);
        let fp = Footprint::new(&g, 5.0, 5.0);
        assert_eq!((fp.cols(), fp.rows()), (1, 1));
        assert_eq!(fp.cell_count(), 1);
        let cells: Vec<_> = fp.cells().collect();
        assert_eq!(cells, vec![(0, 0, 0.25)]);
    }

    #[test]
    fn footprint_spanning_two_cells_vertically() {
        let g = grid(4);
        // 8 wide, 13 tall: cols 1, rows 2; bottom cell 8*10/100 = 0.8,
        // top cell 8*3/100 = 0.24.
        let fp = Footprint::new(&g, 8.0, 13.0);
        assert_eq!((fp.cols(), fp.rows()), (1, 2));
        let cells: Vec<_> = fp.cells().collect();
        assert_eq!(cells[0], (0, 0, 0.8));
        assert!((cells[1].2 - 0.24).abs() < 1e-6);
    }

    /// The literal worked example of Fig. 1: V = 0.32.
    #[test]
    fn fig1_availability_example() {
        let _ = grid(2);
        let mut occ = Occupancy::new(2);
        // Anchor cell (0,0) has s_p = 0.5; the cell above it 0.25.
        occ.util[0] = 0.5;
        occ.util[2] = 0.25;
        // Footprint: 1 col × 2 rows with utilizations 0.6 (bottom), 0.3 (top).
        let fp = Footprint {
            cols: 1,
            rows: 2,
            util: vec![0.6, 0.3],
        };
        let sa = availability(&occ, &fp);
        let expected = ((1.0 - 0.6f64) * (1.0 - 0.5) * (1.0 - 0.3) * (1.0 - 0.25)).sqrt();
        assert!(
            (sa[0] as f64 - expected).abs() < 1e-6,
            "got {}, want {expected}",
            sa[0]
        );
        assert!((expected - 0.324).abs() < 1e-3, "paper rounds to 0.32");
    }

    #[test]
    fn availability_is_zero_outside_grid() {
        let g = grid(4);
        let fp = Footprint::new(&g, 25.0, 10.0); // 3 cols × 1 row
        let occ = Occupancy::new(4);
        let sa = availability(&occ, &fp);
        // Anchors in the last two columns cannot fit.
        for row in 0..4 {
            assert_eq!(sa[row * 4 + 2], 0.0);
            assert_eq!(sa[row * 4 + 3], 0.0);
            assert!(sa[row * 4] > 0.0);
        }
    }

    #[test]
    fn full_cell_blocks_availability() {
        let g = grid(2);
        let mut occ = Occupancy::new(2);
        occ.util[0] = 1.0;
        let fp = Footprint::new(&g, 10.0, 10.0); // exactly one cell, util 1
        let sa = availability(&occ, &fp);
        assert_eq!(sa[0], 0.0, "fully-occupied cell is unavailable");
        // Other (empty) cells stay slightly available: the demand term is
        // capped below 1 so a grid-sized group can still be anchored.
        assert!(sa[3] > 0.0 && sa[3] < 0.05);
        // A half-size group still sees availability elsewhere.
        let fp_half = Footprint::new(&g, 5.0, 10.0);
        let sa2 = availability(&occ, &fp_half);
        assert_eq!(sa2[0], 0.0);
        assert!(sa2[1] > 0.0);
    }

    #[test]
    fn occupancy_place_caps_at_one() {
        let g = grid(2);
        let fp = Footprint::new(&g, 9.0, 9.0); // util 0.81 per anchor cell
        let mut occ = Occupancy::new(2);
        occ.place(&fp, GridIndex::new(0, 0));
        assert!((occ.at(GridIndex::new(0, 0)) - 0.81).abs() < 1e-6);
        occ.place(&fp, GridIndex::new(0, 0));
        assert_eq!(occ.at(GridIndex::new(0, 0)), 1.0, "capped at 1");
    }

    #[test]
    fn occupancy_place_clips_out_of_grid_cells() {
        let g = grid(2);
        let fp = Footprint::new(&g, 15.0, 10.0); // 2 cols
        let mut occ = Occupancy::new(2);
        // Anchor at the right edge: second column falls off the grid.
        occ.place(&fp, GridIndex::new(1, 0));
        assert!(occ.at(GridIndex::new(1, 0)) > 0.0);
        assert_eq!(occ.at(GridIndex::new(0, 0)), 0.0);
    }

    #[test]
    fn add_rect_tracks_preplaced_coverage() {
        let g = grid(2);
        let mut occ = Occupancy::new(2);
        // A rect covering the entire lower-left cell and half of the
        // lower-right one.
        occ.add_rect(&g, &Rect::new(0.0, 0.0, 15.0, 10.0));
        assert_eq!(occ.at(GridIndex::new(0, 0)), 1.0);
        assert_eq!(occ.at(GridIndex::new(1, 0)), 0.5);
        assert_eq!(occ.at(GridIndex::new(0, 1)), 0.0);
    }

    #[test]
    fn availability_values_are_in_unit_interval() {
        let g = grid(4);
        let mut occ = Occupancy::new(4);
        occ.util.iter_mut().enumerate().for_each(|(i, u)| {
            *u = (i as f32 * 0.07) % 1.0;
        });
        let fp = Footprint::new(&g, 17.0, 12.0);
        for v in availability(&occ, &fp) {
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
