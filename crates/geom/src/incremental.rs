//! Journaled per-net value cache — the storage layer of the incremental
//! HPWL evaluators.
//!
//! Holds one `f64` per net and supports speculative updates: [`stage`] a
//! new value (journaling the old one), then either [`commit`] or
//! [`revert`]. [`total`] re-sums the flat array in ascending net order with
//! a sequential fold from `0.0` — exactly the association a full
//! `(0..n).map(net_hpwl).sum()` pass uses — so a cache whose entries match
//! the full evaluator's per-net values reproduces the full total **bit for
//! bit**, never via delta arithmetic on stale spans.
//!
//! [`stage`]: NetValueCache::stage
//! [`commit`]: NetValueCache::commit
//! [`revert`]: NetValueCache::revert
//! [`total`]: NetValueCache::total

/// Per-net cached values with an undo journal for speculative moves.
///
/// # Example
///
/// ```
/// use mmp_geom::NetValueCache;
///
/// let mut cache = NetValueCache::new(vec![1.0, 2.0, 3.0]);
/// assert_eq!(cache.total(), 6.0);
/// let delta = cache.stage(1, 5.0);
/// assert_eq!(delta, 3.0);
/// assert_eq!(cache.total(), 9.0);
/// cache.revert();
/// assert_eq!(cache.total(), 6.0);
/// ```
#[derive(Debug, Clone)]
pub struct NetValueCache {
    values: Vec<f64>,
    journal: Vec<(u32, f64)>,
}

impl NetValueCache {
    /// Wraps per-net values (index = net index).
    pub fn new(values: Vec<f64>) -> Self {
        NetValueCache {
            values,
            journal: Vec::new(),
        }
    }

    /// Number of nets tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no nets are tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current value of net `i`.
    #[inline]
    pub fn value(&self, i: u32) -> f64 {
        // mmp-lint: allow(cast-truncation) why: u32 to usize is widening on every supported target
        self.values[i as usize]
    }

    /// Stages `v` as net `i`'s value, journaling the old one, and returns
    /// the raw difference `v - old` (diagnostic only — totals must come
    /// from [`NetValueCache::total`], not accumulated deltas).
    #[inline]
    pub fn stage(&mut self, i: u32, v: f64) -> f64 {
        // mmp-lint: allow(cast-truncation) why: u32 to usize is widening on every supported target
        let old = self.values[i as usize];
        self.journal.push((i, old));
        // mmp-lint: allow(cast-truncation) why: u32 to usize is widening on every supported target
        self.values[i as usize] = v;
        v - old
    }

    /// Number of staged-but-uncommitted updates.
    #[inline]
    pub fn pending(&self) -> usize {
        self.journal.len()
    }

    /// Accepts all staged updates.
    #[inline]
    pub fn commit(&mut self) {
        self.journal.clear();
    }

    /// Rolls back all staged updates. Entries are undone newest-first so
    /// that when one net was staged twice, the oldest journaled value wins.
    pub fn revert(&mut self) {
        while let Some((i, old)) = self.journal.pop() {
            // mmp-lint: allow(cast-truncation) why: u32 to usize is widening on every supported target
            self.values[i as usize] = old;
        }
    }

    /// Sum of all net values in ascending net order, folded sequentially
    /// from `0.0` — the same association as a fresh full-evaluation pass,
    /// so equal per-net values give a bitwise-equal total.
    pub fn total(&self) -> f64 {
        let mut t = 0.0;
        for &v in &self.values {
            t += v;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_commit_keeps_new_values() {
        let mut c = NetValueCache::new(vec![1.0, 2.0]);
        c.stage(0, 10.0);
        c.commit();
        assert_eq!(c.value(0), 10.0);
        assert_eq!(c.pending(), 0);
        assert_eq!(c.total(), 12.0);
    }

    #[test]
    fn revert_restores_oldest_value_on_double_stage() {
        let mut c = NetValueCache::new(vec![1.0, 2.0, 3.0]);
        c.stage(1, 7.0);
        c.stage(1, 9.0);
        assert_eq!(c.pending(), 2);
        c.revert();
        assert_eq!(c.value(1), 2.0);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn total_matches_sequential_sum_bitwise() {
        // Values chosen so that re-association would change the result.
        let values = vec![1e16, 1.0, -1e16, 3.5, 0.1, 7e-3];
        let expected: f64 = values.iter().fold(0.0, |a, &b| a + b);
        let c = NetValueCache::new(values);
        assert_eq!(c.total().to_bits(), expected.to_bits());
    }

    #[test]
    fn stage_returns_raw_difference() {
        let mut c = NetValueCache::new(vec![4.0]);
        assert_eq!(c.stage(0, 6.5), 2.5);
    }

    #[test]
    fn empty_cache_totals_zero() {
        let c = NetValueCache::new(Vec::new());
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.total(), 0.0);
    }
}
