//! Compressed-sparse-row matrices for the quadratic placement systems.

use serde::{Deserialize, Serialize};

/// A coordinate-format accumulator for building sparse systems.
///
/// Duplicate `(row, col)` entries are summed on conversion to CSR — exactly
/// what net-model assembly wants.
///
/// # Example
///
/// ```
/// use mmp_analytic::Triplets;
///
/// let mut t = Triplets::new(2);
/// t.add(0, 0, 2.0);
/// t.add(0, 1, -1.0);
/// t.add(1, 0, -1.0);
/// t.add(1, 1, 2.0);
/// t.add(0, 0, 1.0); // accumulates onto (0,0)
/// let m = t.to_csr();
/// assert_eq!(m.multiply(&[1.0, 1.0]), vec![2.0, 1.0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Triplets {
    n: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl Triplets {
    /// An empty accumulator for an `n`×`n` system.
    pub fn new(n: usize) -> Self {
        Triplets {
            n,
            entries: Vec::new(),
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Adds `value` at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "triplet index out of range");
        self.entries.push((row as u32, col as u32, value));
    }

    /// Number of raw (pre-merge) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The accumulated diagonal of the matrix (zeros where absent).
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n];
        for &(r, c, v) in &self.entries {
            if r == c {
                d[r as usize] += v;
            }
        }
        d
    }

    /// `true` when no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Converts to CSR, summing duplicates and dropping exact zeros.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = Vec::with_capacity(self.n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0usize);
        let mut k = 0usize;
        for row in 0..self.n as u32 {
            while k < sorted.len() && sorted[k].0 == row {
                let col = sorted[k].1;
                let mut v = 0.0;
                while k < sorted.len() && sorted[k].0 == row && sorted[k].1 == col {
                    v += sorted[k].2;
                    k += 1;
                }
                if v != 0.0 {
                    col_idx.push(col);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            n: self.n,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// An `n`×`n` sparse matrix in compressed-sparse-row layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Matrix dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y = A·x` as a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != dim()`.
    pub fn multiply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.multiply_into(x, &mut y);
        y
    }

    /// `y = A·x` into a caller-provided buffer (hot path of CG).
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths differ from `dim()`.
    pub fn multiply_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(y.len(), self.n, "output length mismatch");
        self.multiply_rows_into(x, 0, y);
    }

    /// `y[i] = (A·x)[row0 + i]` for the contiguous row block starting at
    /// `row0` — the unit of work a row-partitioned parallel SpMV hands to
    /// each worker. Every output row accumulates its non-zeros in stored
    /// (ascending-column) order exactly as [`CsrMatrix::multiply_into`]
    /// does, so any row partition reproduces the serial result bitwise.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != dim()` or the block reaches past the last
    /// row.
    pub fn multiply_rows_into(&self, x: &[f64], row0: usize, y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "input length mismatch");
        assert!(row0 + y.len() <= self.n, "row block out of range");
        for (i, out) in y.iter_mut().enumerate() {
            let row = row0 + i;
            let mut acc = 0.0;
            for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *out = acc;
        }
    }

    /// The diagonal of the matrix (zeros where absent) — the Jacobi
    /// preconditioner.
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n];
        for (row, dv) in d.iter_mut().enumerate() {
            for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                if self.col_idx[k] as usize == row {
                    *dv = self.values[k];
                }
            }
        }
        d
    }

    /// `true` when the stored pattern and values are exactly symmetric.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for row in 0..self.n {
            for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                let col = self.col_idx[k] as usize;
                let v = self.values[k];
                let mirrored = self.get(col, row);
                if (v - mirrored).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// The entry at `(row, col)` (zero when absent).
    pub fn get(&self, row: usize, col: usize) -> f64 {
        for k in self.row_ptr[row]..self.row_ptr[row + 1] {
            if self.col_idx[k] as usize == col {
                return self.values[k];
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_matrix_multiplies_to_zero() {
        let m = Triplets::new(3).to_csr();
        assert_eq!(m.multiply(&[1.0, 2.0, 3.0]), vec![0.0; 3]);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn duplicates_accumulate() {
        let mut t = Triplets::new(2);
        t.add(1, 1, 1.0);
        t.add(1, 1, 2.5);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(1, 1), 3.5);
    }

    #[test]
    fn exact_zero_entries_are_dropped() {
        let mut t = Triplets::new(2);
        t.add(0, 1, 1.0);
        t.add(0, 1, -1.0);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn multiply_matches_dense() {
        // [[2, -1], [-1, 2]] * [3, 4] = [2, 5]
        let mut t = Triplets::new(2);
        t.add(0, 0, 2.0);
        t.add(0, 1, -1.0);
        t.add(1, 0, -1.0);
        t.add(1, 1, 2.0);
        let m = t.to_csr();
        assert_eq!(m.multiply(&[3.0, 4.0]), vec![2.0, 5.0]);
        assert!(m.is_symmetric(0.0));
        assert_eq!(m.diagonal(), vec![2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_add_panics() {
        let mut t = Triplets::new(2);
        t.add(2, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn multiply_length_mismatch_panics() {
        let m = Triplets::new(2).to_csr();
        let _ = m.multiply(&[1.0]);
    }

    proptest! {
        #[test]
        fn csr_multiply_matches_naive(
            entries in proptest::collection::vec((0usize..6, 0usize..6, -5.0f64..5.0), 0..40),
            x in proptest::collection::vec(-3.0f64..3.0, 6),
        ) {
            let mut t = Triplets::new(6);
            let mut dense = vec![vec![0.0; 6]; 6];
            for &(r, c, v) in &entries {
                t.add(r, c, v);
                dense[r][c] += v;
            }
            let m = t.to_csr();
            let got = m.multiply(&x);
            for r in 0..6 {
                let want: f64 = (0..6).map(|c| dense[r][c] * x[c]).sum();
                prop_assert!((got[r] - want).abs() < 1e-9);
            }
        }
    }
}
