//! The immutable design: nodes, nets and the placement region.

use crate::ids::{CellId, MacroId, NetId, NodeRef, PadId};
use mmp_geom::{Point, Rect};
use serde::{Deserialize, Serialize};

/// A macro block. `preplaced` macros are fixed obstacles (the industrial
/// benchmarks of Table II contain them); movable macros are what the placer
/// allocates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Macro {
    /// Instance name, unique among macros.
    pub name: String,
    /// Outline width in µm.
    pub width: f64,
    /// Outline height in µm.
    pub height: f64,
    /// Design-hierarchy path, e.g. `"top/cpu/alu"`. Empty when the benchmark
    /// carries no hierarchy (the ICCAD04 suite).
    pub hierarchy: String,
    /// `Some(center)` when the macro is preplaced (fixed), `None` when
    /// movable.
    pub fixed_center: Option<Point>,
}

impl Macro {
    /// Outline area in µm².
    #[inline]
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// `true` when the macro cannot be moved by the placer.
    #[inline]
    pub fn is_preplaced(&self) -> bool {
        self.fixed_center.is_some()
    }
}

/// A standard cell: small, movable, placed by the analytical cell placer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Instance name, unique among cells.
    pub name: String,
    /// Outline width in µm.
    pub width: f64,
    /// Outline height in µm.
    pub height: f64,
    /// Design-hierarchy path (may be empty).
    pub hierarchy: String,
}

impl Cell {
    /// Outline area in µm².
    #[inline]
    pub fn area(&self) -> f64 {
        self.width * self.height
    }
}

/// A fixed I/O pad on (or near) the chip boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pad {
    /// Instance name, unique among pads.
    pub name: String,
    /// Fixed position (µm).
    pub position: Point,
}

/// One connection point of a net.
///
/// `offset` is relative to the owning node's **center**; pins of pads ignore
/// the offset (pads are points).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pin {
    /// The node this pin belongs to.
    pub node: NodeRef,
    /// Offset from the node center (µm).
    pub offset: Point,
}

/// A net: a weighted hyper-edge over pins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    /// Net name, unique among nets.
    pub name: String,
    /// The net's pins (at least 1; single-pin nets contribute zero HPWL).
    pub pins: Vec<Pin>,
    /// Net weight λ_n used by weighted-wirelength objectives (Eq. 3).
    pub weight: f64,
}

impl Net {
    /// Number of pins.
    #[inline]
    pub fn degree(&self) -> usize {
        self.pins.len()
    }
}

/// An immutable mixed-size design.
///
/// Construct with [`DesignBuilder`](crate::DesignBuilder) (which validates
/// invariants) or read one with [`bookshelf::read`](crate::bookshelf::read).
/// Node and net collections are dense and addressed by the typed ids of
/// [`crate::ids`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Design {
    pub(crate) name: String,
    pub(crate) region: Rect,
    pub(crate) macros: Vec<Macro>,
    pub(crate) cells: Vec<Cell>,
    pub(crate) pads: Vec<Pad>,
    pub(crate) nets: Vec<Net>,
    /// For each macro, the nets touching it (derived, kept in sync by the
    /// builder).
    pub(crate) macro_nets: Vec<Vec<NetId>>,
    /// For each cell, the nets touching it.
    pub(crate) cell_nets: Vec<Vec<NetId>>,
}

impl Design {
    /// Design name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Placement region.
    #[inline]
    pub fn region(&self) -> &Rect {
        &self.region
    }

    /// All macros (movable and preplaced), indexable by [`MacroId`].
    #[inline]
    pub fn macros(&self) -> &[Macro] {
        &self.macros
    }

    /// All standard cells, indexable by [`CellId`].
    #[inline]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// All I/O pads, indexable by [`PadId`].
    #[inline]
    pub fn pads(&self) -> &[Pad] {
        &self.pads
    }

    /// All nets, indexable by [`NetId`].
    #[inline]
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The macro addressed by `id`.
    #[inline]
    pub fn macro_(&self, id: MacroId) -> &Macro {
        &self.macros[id.index()]
    }

    /// The cell addressed by `id`.
    #[inline]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// The pad addressed by `id`.
    #[inline]
    pub fn pad(&self, id: PadId) -> &Pad {
        &self.pads[id.index()]
    }

    /// The net addressed by `id`.
    #[inline]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Ids of the movable (non-preplaced) macros.
    pub fn movable_macros(&self) -> Vec<MacroId> {
        self.macros
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.is_preplaced())
            .map(|(i, _)| MacroId::from_index(i))
            .collect()
    }

    /// Ids of the preplaced macros.
    pub fn preplaced_macros(&self) -> Vec<MacroId> {
        self.macros
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_preplaced())
            .map(|(i, _)| MacroId::from_index(i))
            .collect()
    }

    /// Nets incident to macro `id`.
    #[inline]
    pub fn nets_of_macro(&self, id: MacroId) -> &[NetId] {
        &self.macro_nets[id.index()]
    }

    /// Nets incident to cell `id`.
    #[inline]
    pub fn nets_of_cell(&self, id: CellId) -> &[NetId] {
        &self.cell_nets[id.index()]
    }

    /// Direct macro-to-macro connectivity: total weight of nets shared by
    /// macros `a` and `b` (the w(·,·) term of Eq. 1, at macro granularity).
    pub fn macro_connectivity(&self, a: MacroId, b: MacroId) -> f64 {
        let (small, large) = if self.macro_nets[a.index()].len() <= self.macro_nets[b.index()].len()
        {
            (a, b)
        } else {
            (b, a)
        };
        let large_set = &self.macro_nets[large.index()];
        self.macro_nets[small.index()]
            .iter()
            .filter(|n| large_set.contains(n))
            .map(|n| self.net(*n).weight)
            .sum()
    }

    /// Sum of macro areas (movable + preplaced) in µm².
    pub fn total_macro_area(&self) -> f64 {
        self.macros.iter().map(Macro::area).sum()
    }

    /// Sum of cell areas in µm².
    pub fn total_cell_area(&self) -> f64 {
        self.cells.iter().map(Cell::area).sum()
    }

    /// Area utilization: (macro + cell area) / region area.
    pub fn utilization(&self) -> f64 {
        (self.total_macro_area() + self.total_cell_area()) / self.region.area()
    }

    /// The width/height of the outline of node `node`; pads have zero size.
    pub fn node_size(&self, node: NodeRef) -> (f64, f64) {
        match node {
            NodeRef::Macro(id) => {
                let m = self.macro_(id);
                (m.width, m.height)
            }
            NodeRef::Cell(id) => {
                let c = self.cell(id);
                (c.width, c.height)
            }
            NodeRef::Pad(_) => (0.0, 0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DesignBuilder;

    fn tiny() -> Design {
        let mut b = DesignBuilder::new("tiny", Rect::new(0.0, 0.0, 100.0, 100.0));
        let m0 = b.add_macro("m0", 10.0, 10.0, "top/a");
        let m1 = b.add_macro("m1", 20.0, 5.0, "top/b");
        let m2 = b.add_preplaced_macro("m2", 5.0, 5.0, "top/b", Point::new(50.0, 50.0));
        let c0 = b.add_cell("c0", 1.0, 1.0, "top/a");
        let p0 = b.add_pad("p0", Point::new(0.0, 50.0));
        b.add_net(
            "n0",
            [
                (NodeRef::Macro(m0), Point::ORIGIN),
                (NodeRef::Macro(m1), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        b.add_net(
            "n1",
            [
                (NodeRef::Macro(m0), Point::ORIGIN),
                (NodeRef::Cell(c0), Point::ORIGIN),
                (NodeRef::Pad(p0), Point::ORIGIN),
            ],
            2.0,
        )
        .unwrap();
        b.add_net(
            "n2",
            [
                (NodeRef::Macro(m1), Point::ORIGIN),
                (NodeRef::Macro(m2), Point::ORIGIN),
            ],
            0.5,
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn movable_and_preplaced_partition() {
        let d = tiny();
        assert_eq!(d.movable_macros(), vec![MacroId(0), MacroId(1)]);
        assert_eq!(d.preplaced_macros(), vec![MacroId(2)]);
        assert!(d.macro_(MacroId(2)).is_preplaced());
    }

    #[test]
    fn incidence_lists_are_correct() {
        let d = tiny();
        assert_eq!(d.nets_of_macro(MacroId(0)), &[NetId(0), NetId(1)]);
        assert_eq!(d.nets_of_macro(MacroId(1)), &[NetId(0), NetId(2)]);
        assert_eq!(d.nets_of_cell(CellId(0)), &[NetId(1)]);
    }

    #[test]
    fn macro_connectivity_sums_shared_net_weights() {
        let d = tiny();
        assert_eq!(d.macro_connectivity(MacroId(0), MacroId(1)), 1.0);
        assert_eq!(d.macro_connectivity(MacroId(1), MacroId(2)), 0.5);
        assert_eq!(d.macro_connectivity(MacroId(0), MacroId(2)), 0.0);
        // symmetric
        assert_eq!(
            d.macro_connectivity(MacroId(1), MacroId(0)),
            d.macro_connectivity(MacroId(0), MacroId(1))
        );
    }

    #[test]
    fn areas_and_utilization() {
        let d = tiny();
        assert_eq!(d.total_macro_area(), 100.0 + 100.0 + 25.0);
        assert_eq!(d.total_cell_area(), 1.0);
        assert!((d.utilization() - 226.0 / 10_000.0).abs() < 1e-12);
    }

    #[test]
    fn node_size_covers_all_variants() {
        let d = tiny();
        assert_eq!(d.node_size(NodeRef::Macro(MacroId(1))), (20.0, 5.0));
        assert_eq!(d.node_size(NodeRef::Cell(CellId(0))), (1.0, 1.0));
        assert_eq!(d.node_size(NodeRef::Pad(PadId(0))), (0.0, 0.0));
    }

    #[test]
    fn net_degree() {
        let d = tiny();
        assert_eq!(d.net(NetId(0)).degree(), 2);
        assert_eq!(d.net(NetId(1)).degree(), 3);
    }
}
