//! Row-based standard-cell legalization (Abacus-style).
//!
//! The analytical cell placer emits real-valued positions with residual
//! overlap; real flows then snap cells into site rows. This module
//! implements the classic Abacus recipe (Spindler et al.): cells are sorted
//! by x, greedily assigned to their best row, and placed by *cluster
//! collapsing* — abutting cells merge into clusters whose optimal position
//! is the weighted mean of their members, clamped to the row, which
//! minimises total squared displacement within the row.
//!
//! Macros (movable and preplaced) are obstacles: they split rows into
//! segments and cells are only legalized into free segments.

use mmp_geom::{Point, Rect};
use mmp_netlist::{CellId, Design, MacroId, Placement};

/// One free segment of a row: `[x_min, x_max)` at height `y`.
#[derive(Debug, Clone, PartialEq)]
struct Segment {
    x_min: f64,
    x_max: f64,
    /// Clusters already committed to this segment, kept packed.
    clusters: Vec<Cluster>,
}

/// An Abacus cluster: a maximal run of abutting cells.
#[derive(Debug, Clone, PartialEq)]
struct Cluster {
    /// Leftmost x of the cluster.
    x: f64,
    /// Total width.
    width: f64,
    /// Σ weight (cell count here; displacement weighting is uniform).
    weight: f64,
    /// Σ weight · (desired x − offset within cluster).
    q: f64,
    /// Member cells with their offset from the cluster's left edge.
    members: Vec<(CellId, f64)>,
}

impl Cluster {
    fn optimal_x(&self) -> f64 {
        self.q / self.weight
    }
}

/// Result of row legalization.
#[derive(Debug, Clone, PartialEq)]
pub struct RowLegalizeOutcome {
    /// The legalized placement (macros untouched).
    pub placement: Placement,
    /// Cells that did not fit any row segment and were left at their input
    /// position (0 for sanely-sized designs).
    pub unplaced: usize,
    /// Mean displacement of legalized cells (µm).
    pub mean_displacement: f64,
}

/// Legalizes standard cells into uniform rows of height `row_height`,
/// avoiding macro outlines.
///
/// Cells wider than the widest free segment, or designs with zero free
/// area, leave those cells unplaced (counted in the outcome).
///
/// # Panics
///
/// Panics when `row_height` is not positive.
pub fn legalize_cells_into_rows(
    design: &Design,
    placement: &Placement,
    row_height: f64,
) -> RowLegalizeOutcome {
    assert!(row_height > 0.0, "row height must be positive");
    let region = *design.region();
    let rows = ((region.height / row_height).floor() as usize).max(1);

    // Build free segments per row by cutting macro outlines out.
    let obstacles: Vec<Rect> = (0..design.macros().len())
        .map(|i| placement.macro_rect(design, MacroId::from_index(i)))
        .collect();
    let mut row_segments: Vec<Vec<Segment>> = Vec::with_capacity(rows);
    for r in 0..rows {
        let y0 = region.y + r as f64 * row_height;
        let y1 = y0 + row_height;
        // Collect x-intervals blocked in this row band.
        let mut blocked: Vec<(f64, f64)> = obstacles
            .iter()
            .filter(|o| o.y < y1 && o.top() > y0)
            .map(|o| (o.x, o.right()))
            .collect();
        blocked.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut segments = Vec::new();
        let mut cursor = region.x;
        for (bx0, bx1) in blocked {
            if bx0 > cursor {
                segments.push(Segment {
                    x_min: cursor,
                    x_max: bx0,
                    clusters: Vec::new(),
                });
            }
            cursor = cursor.max(bx1);
        }
        if cursor < region.right() {
            segments.push(Segment {
                x_min: cursor,
                x_max: region.right(),
                clusters: Vec::new(),
            });
        }
        row_segments.push(segments);
    }

    // Cells sorted by x (the Abacus processing order).
    let mut order: Vec<CellId> = (0..design.cells().len()).map(CellId::from_index).collect();
    order.sort_by(|&a, &b| {
        placement
            .cell_center(a)
            .x
            .total_cmp(&placement.cell_center(b).x)
    });

    let mut out = placement.clone();
    let mut unplaced = 0usize;
    let mut total_disp = 0.0f64;
    let mut placed = 0usize;

    for id in order {
        let cell = design.cell(id);
        let desired = placement.cell_center(id);
        let desired_left = desired.x - cell.width / 2.0;
        // Candidate rows near the desired y, best (cheapest) insertion wins.
        let desired_row =
            (((desired.y - region.y) / row_height) as isize).clamp(0, rows as isize - 1) as usize;
        let mut best: Option<(usize, usize, f64)> = None; // (row, segment, cost)
        let span = 3usize.max(rows / 8);
        let lo = desired_row.saturating_sub(span);
        let hi = (desired_row + span).min(rows - 1);
        for (r, segments) in row_segments.iter().enumerate().take(hi + 1).skip(lo) {
            let y_cost = {
                let y = region.y + r as f64 * row_height + row_height / 2.0;
                (y - desired.y).abs()
            };
            for (si, seg) in segments.iter().enumerate() {
                let used: f64 = seg.clusters.iter().map(|c| c.width).sum();
                if seg.x_max - seg.x_min - used < cell.width {
                    continue;
                }
                // Approximate x cost: clamped desired position.
                let x = desired_left.clamp(seg.x_min, seg.x_max - cell.width);
                let cost = y_cost + (x - desired_left).abs();
                if best.is_none_or(|(_, _, c)| cost < c) {
                    best = Some((r, si, cost));
                }
            }
        }
        let Some((r, si, _)) = best else {
            unplaced += 1;
            continue;
        };
        // Abacus insert: append as a new cluster, then collapse while the
        // optimal positions overlap.
        let seg = &mut row_segments[r][si];
        let mut cluster = Cluster {
            x: desired_left,
            width: cell.width,
            weight: 1.0,
            q: desired_left,
            members: vec![(id, 0.0)],
        };
        loop {
            let opt = cluster
                .optimal_x()
                .clamp(seg.x_min, seg.x_max - cluster.width);
            cluster.x = opt;
            match seg.clusters.pop() {
                Some(prev) if prev.x + prev.width > cluster.x => {
                    // Collapse with the previous cluster.
                    let prev_width = prev.width;
                    let mut merged = prev;
                    for (m, off) in &cluster.members {
                        merged.members.push((*m, prev_width + off));
                    }
                    merged.q += cluster.q - cluster.weight * prev_width;
                    merged.weight += cluster.weight;
                    merged.width += cluster.width;
                    cluster = merged;
                }
                Some(prev) => {
                    seg.clusters.push(prev);
                    break;
                }
                None => break,
            }
        }
        seg.clusters.push(cluster);
        placed += 1;
        let _ = placed;
    }

    // Write back final coordinates.
    for (r, segments) in row_segments.iter().enumerate() {
        let y = region.y + r as f64 * row_height + row_height / 2.0;
        for seg in segments {
            for cluster in &seg.clusters {
                for &(id, off) in &cluster.members {
                    let cell = design.cell(id);
                    let c = Point::new(cluster.x + off + cell.width / 2.0, y);
                    total_disp += placement.cell_center(id).manhattan_distance(c);
                    out.set_cell_center(id, c);
                }
            }
        }
    }

    let legal_count = design.cells().len() - unplaced;
    RowLegalizeOutcome {
        placement: out,
        unplaced,
        mean_displacement: if legal_count == 0 {
            0.0
        } else {
            total_disp / legal_count as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_netlist::{DesignBuilder, SyntheticSpec};

    fn cell_rects(design: &Design, pl: &Placement) -> Vec<Rect> {
        (0..design.cells().len())
            .map(|i| {
                let id = CellId::from_index(i);
                let c = design.cell(id);
                Rect::centered_at(pl.cell_center(id), c.width, c.height)
            })
            .collect()
    }

    #[test]
    fn legalized_cells_do_not_overlap_each_other() {
        let d = SyntheticSpec::small("rows", 4, 0, 8, 120, 200, false, 3).generate();
        let pl = mmp_analytic_place(&d);
        let out = legalize_cells_into_rows(&d, &pl, 1.0);
        assert_eq!(out.unplaced, 0);
        let rects = cell_rects(&d, &out.placement);
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                // Abutting cells reconstructed from centers (x + w/2 ± w/2)
                // can overlap by half an ulp; only real overlaps count.
                assert!(
                    rects[i].overlap_area(&rects[j]) < 1e-9,
                    "cells {i} and {j} overlap: {} vs {}",
                    rects[i],
                    rects[j]
                );
            }
        }
    }

    fn mmp_analytic_place(d: &Design) -> Placement {
        crate::GlobalPlacer::new(crate::GlobalPlacerConfig::fast()).place_mixed(d)
    }

    #[test]
    fn legalized_cells_avoid_macros() {
        let d = SyntheticSpec::small("rows2", 6, 1, 8, 100, 170, false, 4).generate();
        let pl = mmp_analytic_place(&d);
        let out = legalize_cells_into_rows(&d, &pl, 1.0);
        let macro_rects: Vec<Rect> = (0..d.macros().len())
            .map(|i| out.placement.macro_rect(&d, MacroId::from_index(i)))
            .collect();
        for (i, cr) in cell_rects(&d, &out.placement).iter().enumerate() {
            if out.unplaced > 0 {
                // Unplaced cells stay wherever they were — skip strictness.
                break;
            }
            for mr in &macro_rects {
                assert!(
                    cr.overlap_area(mr) < 1e-9,
                    "cell {i} lands on a macro: {cr} vs {mr}"
                );
            }
        }
    }

    #[test]
    fn cells_snap_to_row_centers() {
        let d = SyntheticSpec::small("rows3", 4, 0, 8, 60, 100, false, 5).generate();
        let pl = mmp_analytic_place(&d);
        let out = legalize_cells_into_rows(&d, &pl, 1.0);
        let region = d.region();
        for i in 0..d.cells().len() {
            let y = out.placement.cell_center(CellId::from_index(i)).y;
            let rel = (y - region.y) / 1.0 - 0.5;
            assert!(
                (rel - rel.round()).abs() < 1e-9,
                "cell {i} not on a row center: y = {y}"
            );
        }
    }

    #[test]
    fn displacement_is_reported_and_modest() {
        let d = SyntheticSpec::small("rows4", 4, 0, 8, 100, 160, false, 6).generate();
        let pl = mmp_analytic_place(&d);
        let out = legalize_cells_into_rows(&d, &pl, 1.0);
        assert!(out.mean_displacement >= 0.0);
        assert!(
            out.mean_displacement < d.region().width / 2.0,
            "mean displacement {} too large",
            out.mean_displacement
        );
    }

    #[test]
    fn oversized_cell_is_left_unplaced_not_crashed() {
        let mut b = DesignBuilder::new("big", Rect::new(0.0, 0.0, 10.0, 10.0));
        b.add_cell("huge", 50.0, 1.0, "");
        let d = b.build().unwrap();
        let pl = Placement::initial(&d);
        let out = legalize_cells_into_rows(&d, &pl, 1.0);
        assert_eq!(out.unplaced, 1);
    }

    #[test]
    #[should_panic(expected = "row height")]
    fn zero_row_height_panics() {
        let d = SyntheticSpec::small("rows5", 2, 0, 4, 10, 20, false, 7).generate();
        let pl = Placement::initial(&d);
        let _ = legalize_cells_into_rows(&d, &pl, 0.0);
    }
}
