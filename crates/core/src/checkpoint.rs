//! Crash-safe checkpoint/resume for the placement flow.
//!
//! When a [`crate::MacroPlacer`] carries a [`CheckpointPlan`], the flow
//! persists its progress into the plan's directory through the `mmp-ckpt`
//! envelope (atomic temp-file-then-rename writes, CRC-checked reads):
//!
//! | file                | contents                                        |
//! |---------------------|-------------------------------------------------|
//! | `train.ckpt`        | in-progress RL training ([`mmp_rl::TrainCheckpoint`]) |
//! | `train-done.ckpt`   | the finished training outcome                   |
//! | `search.ckpt`       | in-progress MCTS search ([`mmp_mcts::SearchCheckpoint`], single-search runs) |
//! | `search-done.ckpt`  | the committed final allocation                   |
//!
//! Resume (`CheckpointPlan::resume`) walks the same ladder backwards:
//! completed stages are skipped from their `*-done` marker, an interrupted
//! stage continues from its partial checkpoint **bitwise-identically** to
//! an uninterrupted run, and anything absent simply runs fresh. Every
//! checkpoint carries a fingerprint of the design and configuration so a
//! checkpoint directory can never be replayed against a different problem
//! — a mismatch is a typed [`CkptError::Invalid`], never a garbage
//! placement.

use crate::budget::RunBudget;
use crate::flow::PlacerConfig;
use mmp_ckpt::{fnv1a64, CkptError};
use mmp_geom::GridIndex;
use mmp_mcts::SearchStats;
use mmp_netlist::Design;
use mmp_obs::Obs;
use mmp_rl::{Agent, RewardScale, TrainingHistory};
use mmp_vfs::Vfs;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::path::PathBuf;

/// In-progress RL training checkpoint file.
pub(crate) const TRAIN_PARTIAL: &str = "train.ckpt";
/// Completed-training stage marker.
pub(crate) const TRAIN_DONE: &str = "train-done.ckpt";
/// In-progress MCTS search checkpoint file (single-search runs only).
pub(crate) const SEARCH_PARTIAL: &str = "search.ckpt";
/// Completed-search stage marker.
pub(crate) const SEARCH_DONE: &str = "search-done.ckpt";

/// Where (and whether) the flow persists and resumes checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPlan {
    /// Directory holding the run's checkpoint files (created on demand).
    pub dir: PathBuf,
    /// `true` to consult existing checkpoints in `dir` before each stage;
    /// `false` to start fresh (existing files are overwritten as the run
    /// progresses).
    pub resume: bool,
}

impl CheckpointPlan {
    /// A fresh checkpointed run: write checkpoints into `dir`, ignore any
    /// already there.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointPlan {
            dir: dir.into(),
            resume: false,
        }
    }

    /// A resuming run: pick up from whatever checkpoints `dir` holds (a
    /// completely empty directory degenerates to a fresh run).
    pub fn resume(dir: impl Into<PathBuf>) -> Self {
        CheckpointPlan {
            dir: dir.into(),
            resume: true,
        }
    }
}

/// Which stage's checkpoint writes a [`CrashPoint`] counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashStage {
    /// Writes of `train.ckpt` / `train-done.ckpt`.
    Train,
    /// Writes of `search.ckpt` / `search-done.ckpt`.
    Search,
}

/// Fault-injection knob simulating a process kill: the run fails with a
/// typed [`CkptError`] immediately *after* the n-th checkpoint write of
/// the chosen stage completes — exactly the on-disk state a real crash at
/// that moment would leave behind. Test harness only; `None` in
/// production.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashPoint {
    /// The stage whose checkpoint writes are counted.
    pub stage: CrashStage,
    /// Crash after this many completed writes of that stage (1-based).
    pub after_writes: usize,
}

impl CrashPoint {
    /// Crash after `n` completed training-stage checkpoint writes.
    pub fn after_train_writes(n: usize) -> Self {
        CrashPoint {
            stage: CrashStage::Train,
            after_writes: n,
        }
    }

    /// Crash after `n` completed search-stage checkpoint writes.
    pub fn after_search_writes(n: usize) -> Self {
        CrashPoint {
            stage: CrashStage::Search,
            after_writes: n,
        }
    }
}

/// What checkpointing did during one run — part of
/// [`crate::PlacementResult`] and the JSON [`crate::RunReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointSummary {
    /// `true` when the run carried a [`CheckpointPlan`].
    #[serde(default)]
    pub enabled: bool,
    /// Every resume the stage ladder took, in order (e.g. `"train-done"`
    /// for a skipped completed stage, `"train"` for a mid-stage
    /// continuation). Empty for fresh runs.
    #[serde(default)]
    pub resumes: Vec<String>,
    /// Checkpoint files written (including stage-done markers).
    #[serde(default)]
    pub writes: usize,
    /// `true` when checkpointing was disabled mid-run because writes
    /// started failing (e.g. disk full): the placement finished, but no
    /// further checkpoints were persisted. Details are in the run's
    /// degradation report under the `checkpoint` stage.
    #[serde(default)]
    pub disabled: bool,
    /// Stale `*.tmp` orphans (left by a crash between temp-file write and
    /// rename) swept from the checkpoint directory when it was opened.
    #[serde(default)]
    pub stale_tmp_removed: usize,
}

/// Completed-training marker payload: everything stage 3 and later need
/// from the RL stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct TrainDoneCkpt {
    /// The trained agent.
    pub agent: Agent,
    /// Per-episode curves.
    pub history: TrainingHistory,
    /// The calibrated reward scale.
    pub scale: RewardScale,
    /// `(episode, agent-snapshot)` pairs when snapshotting was enabled.
    pub snapshots: Vec<(usize, Agent)>,
}

/// Completed-search marker payload: the committed final allocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct SearchDoneCkpt {
    /// Grid cell per macro group.
    pub assignment: Vec<GridIndex>,
    /// Wirelength of the final allocation.
    pub wirelength: f64,
    /// Reward of the final allocation.
    pub reward: f64,
    /// Search effort counters.
    pub stats: SearchStats,
}

/// Fingerprint binding a checkpoint directory to one (design,
/// configuration) pair. Budgets, the worker count and the fault-injection
/// knobs are deliberately excluded: a run killed by a wall-clock budget
/// (or by the fault harness) may legitimately resume with a different
/// allowance, and the compute pool is bitwise-neutral — any worker count
/// reproduces the same placement, so it must not split checkpoint
/// identities.
///
/// Public so serving layers can key caches of reusable checkpoint state
/// (e.g. `mmpd`'s trained-policy cache) on exactly the identity the resume
/// ladder itself enforces.
pub fn fingerprint(design: &Design, cfg: &PlacerConfig) -> u64 {
    let mut canon = cfg.clone();
    canon.budget = RunBudget::default();
    canon.fault_crash = None;
    canon.workers = 1;
    canon.fault_pool_panic = None;
    let cfg_json = serde_json::to_string(&canon).unwrap_or_default();
    let id = format!(
        "{}|{}m|{}c|{}n|{:?}|{}",
        design.name(),
        design.macros().len(),
        design.cells().len(),
        design.nets().len(),
        design.region(),
        cfg_json
    );
    fnv1a64(id.as_bytes())
}

/// The flow's live checkpoint context: directory + fingerprint + write
/// counters + crash injection + graceful degradation when the disk turns
/// against the run.
pub(crate) struct CkptCtx {
    dir: PathBuf,
    resume: bool,
    fingerprint: u64,
    crash: Option<CrashPoint>,
    writes: Cell<usize>,
    train_writes: Cell<usize>,
    search_writes: Cell<usize>,
    obs: Obs,
    vfs: Vfs,
    /// Set when a non-crash write failure disabled further checkpointing.
    disabled: Cell<bool>,
    /// One-shot guard for the dir-fsync operator note.
    dir_fsync_noted: Cell<bool>,
    /// Stale `*.tmp` orphans removed when the directory was opened.
    stale_tmp_removed: Cell<usize>,
    /// Operator-facing notes, drained into the degradation report under
    /// `Stage::Checkpoint` when the run finishes.
    notes: RefCell<Vec<String>>,
}

impl CkptCtx {
    /// Opens (creating if needed) the checkpoint directory and sweeps
    /// stale `*.tmp` orphans left by an earlier crash between temp-file
    /// write and rename.
    ///
    /// A non-crash-marked failure to create the directory does not abort
    /// the run: the context comes up with checkpointing disabled and a
    /// degradation note, mirroring the mid-run disk-full policy.
    pub(crate) fn new(
        plan: &CheckpointPlan,
        fingerprint: u64,
        crash: Option<CrashPoint>,
        obs: Obs,
        vfs: Vfs,
    ) -> Result<Self, CkptError> {
        let ctx = CkptCtx {
            dir: plan.dir.clone(),
            resume: plan.resume,
            fingerprint,
            crash,
            writes: Cell::new(0),
            train_writes: Cell::new(0),
            search_writes: Cell::new(0),
            obs,
            vfs,
            disabled: Cell::new(false),
            dir_fsync_noted: Cell::new(false),
            stale_tmp_removed: Cell::new(0),
            notes: RefCell::new(Vec::new()),
        };
        if let Err(e) = ctx.vfs.create_dir_all(&plan.dir) {
            if mmp_vfs::is_crash(&e) {
                return Err(CkptError::Io {
                    path: plan.dir.display().to_string(),
                    detail: format!("create checkpoint directory: {e}"),
                });
            }
            ctx.disable(format!(
                "checkpoint directory {} unusable ({e}); checkpointing disabled",
                plan.dir.display()
            ));
            return Ok(ctx);
        }
        ctx.sweep_stale_tmps()?;
        Ok(ctx)
    }

    /// Removes `*.tmp` orphans from the checkpoint directory. Best-effort:
    /// listing or removal failures are ignored unless crash-marked (the
    /// torture driver's "process died here").
    fn sweep_stale_tmps(&self) -> Result<(), CkptError> {
        let names = match self.vfs.read_dir_names(&self.dir) {
            Ok(names) => names,
            Err(_) => return Ok(()),
        };
        let mut removed = 0usize;
        for name in names {
            if !name.ends_with(".tmp") {
                continue;
            }
            let path = self.dir.join(&name);
            match self.vfs.remove_file(&path) {
                Ok(()) => removed += 1,
                Err(e) if mmp_vfs::is_crash(&e) => {
                    return Err(CkptError::Io {
                        path: path.display().to_string(),
                        detail: format!("sweep stale temp file: {e}"),
                    });
                }
                Err(_) => {}
            }
        }
        if removed > 0 {
            self.stale_tmp_removed.set(removed);
            if self.obs.enabled() {
                self.obs.count("ckpt.stale_tmp_removed", removed as u64);
            }
            self.notes.borrow_mut().push(format!(
                "swept {removed} stale checkpoint temp file(s) from {}",
                self.dir.display()
            ));
        }
        Ok(())
    }

    fn disable(&self, note: String) {
        self.disabled.set(true);
        if self.obs.enabled() {
            self.obs.count("ckpt.disabled", 1);
        }
        self.notes.borrow_mut().push(note);
    }

    /// `true` when existing checkpoints should be consulted.
    pub(crate) fn resume(&self) -> bool {
        self.resume
    }

    /// Checkpoint files written so far (including stage-done markers).
    pub(crate) fn writes(&self) -> usize {
        self.writes.get()
    }

    /// `true` when a write failure disabled further checkpointing.
    pub(crate) fn disabled(&self) -> bool {
        self.disabled.get()
    }

    /// Stale `*.tmp` orphans swept when the directory was opened.
    pub(crate) fn stale_tmp_removed(&self) -> usize {
        self.stale_tmp_removed.get()
    }

    /// Drains the operator-facing notes accumulated so far (degradation
    /// report material, `Stage::Checkpoint`).
    pub(crate) fn take_notes(&self) -> Vec<String> {
        std::mem::take(&mut self.notes.borrow_mut())
    }

    fn path(&self, file: &str) -> PathBuf {
        self.dir.join(file)
    }

    /// Writes `value` as a fingerprint-prefixed JSON payload inside the
    /// `mmp-ckpt` envelope, then applies crash injection: when the
    /// configured [`CrashPoint`] matches this (stage, write-count), the
    /// write *completes on disk* and the call returns a typed error —
    /// the state a real mid-run kill would leave.
    ///
    /// A plain I/O failure (disk full, EIO — anything not crash-marked)
    /// does **not** abort the run: checkpointing is disabled, the failure
    /// is recorded as a degradation note + obs counter, and the placement
    /// carries on without persistence. Crash-marked failures propagate;
    /// the torture driver treats them as process death.
    pub(crate) fn save<T: Serialize>(
        &self,
        stage: CrashStage,
        file: &str,
        value: &T,
    ) -> Result<(), CkptError> {
        if self.disabled.get() {
            return Ok(());
        }
        let json = serde_json::to_string(value).map_err(|e| CkptError::Invalid {
            detail: format!("serialize {file}: {e}"),
        })?;
        let mut payload = Vec::with_capacity(8 + json.len());
        payload.extend_from_slice(&self.fingerprint.to_le_bytes());
        payload.extend_from_slice(json.as_bytes());
        let path = self.path(file);
        match mmp_ckpt::write_with(&self.vfs, &path, &payload) {
            Ok(receipt) => {
                if receipt.dir_fsync_failed {
                    if self.obs.enabled() {
                        self.obs.count("ckpt.dir_fsync_failed", 1);
                    }
                    if !self.dir_fsync_noted.replace(true) {
                        self.notes.borrow_mut().push(format!(
                            "directory fsync failed after writing {file}; \
                             checkpoint data is durable but its directory entry \
                             may not survive a power loss (flaky storage?)"
                        ));
                    }
                }
            }
            Err(CkptError::Io { detail, .. }) if !mmp_vfs::is_crash_detail(&detail) => {
                if self.obs.enabled() {
                    self.obs.count("ckpt.write_failed", 1);
                }
                self.disable(format!(
                    "checkpoint write of {file} failed ({detail}); \
                     further checkpointing disabled, run continues without persistence"
                ));
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        self.writes.set(self.writes.get() + 1);
        if self.obs.enabled() {
            self.obs.count("ckpt.writes", 1);
        }
        let counter = match stage {
            CrashStage::Train => &self.train_writes,
            CrashStage::Search => &self.search_writes,
        };
        counter.set(counter.get() + 1);
        if let Some(cp) = self.crash {
            if cp.stage == stage && counter.get() == cp.after_writes {
                return Err(CkptError::Io {
                    path: path.display().to_string(),
                    detail: "injected crash after checkpoint write".to_owned(),
                });
            }
        }
        Ok(())
    }

    /// Loads a checkpoint file, or `None` when it does not exist.
    ///
    /// Verifies the envelope (magic, version, CRC) via [`mmp_ckpt::read`]
    /// and then the design/configuration fingerprint before
    /// deserializing.
    pub(crate) fn load<T: Deserialize>(&self, file: &str) -> Result<Option<T>, CkptError> {
        let path = self.path(file);
        let Some(payload) = mmp_ckpt::read_opt_with(&self.vfs, &path)? else {
            return Ok(None);
        };
        let shown = path.display().to_string();
        if payload.len() < 8 {
            return Err(CkptError::Truncated {
                path: shown,
                expected: 8,
                got: payload.len() as u64,
            });
        }
        let mut fp = [0u8; 8];
        fp.copy_from_slice(&payload[..8]);
        if u64::from_le_bytes(fp) != self.fingerprint {
            return Err(CkptError::Invalid {
                detail: format!(
                    "{shown} was written for a different design or configuration; \
                     refusing to resume from it"
                ),
            });
        }
        let value = serde_json::from_slice(&payload[8..]).map_err(|e| CkptError::Corrupt {
            path: shown,
            detail: format!("payload does not deserialize: {e}"),
        })?;
        Ok(Some(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_obs::Obs;
    use std::path::Path;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmp-ckptctx-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn ctx(dir: &Path, fp: u64, crash: Option<CrashPoint>) -> CkptCtx {
        CkptCtx::new(
            &CheckpointPlan::new(dir),
            fp,
            crash,
            Obs::off(),
            Vfs::real(),
        )
        .unwrap()
    }

    fn ctx_with(dir: &Path, vfs: Vfs) -> CkptCtx {
        CkptCtx::new(&CheckpointPlan::new(dir), 7, None, Obs::off(), vfs).unwrap()
    }

    #[test]
    fn save_load_round_trips_with_matching_fingerprint() {
        let dir = tmp("rt");
        let c = ctx(&dir, 42, None);
        let v: Vec<usize> = vec![3, 1, 4, 1, 5];
        c.save(CrashStage::Train, TRAIN_PARTIAL, &v).unwrap();
        assert_eq!(c.writes(), 1);
        let back: Vec<usize> = c.load(TRAIN_PARTIAL).unwrap().unwrap();
        assert_eq!(back, v);
        let missing: Option<Vec<usize>> = c.load(SEARCH_PARTIAL).unwrap();
        assert!(missing.is_none());
    }

    #[test]
    fn fingerprint_mismatch_is_a_typed_error() {
        let dir = tmp("fp");
        let c = ctx(&dir, 1, None);
        c.save(CrashStage::Train, TRAIN_DONE, &7usize).unwrap();
        let other = ctx(&dir, 2, None);
        let err = other.load::<usize>(TRAIN_DONE).unwrap_err();
        assert!(matches!(err, CkptError::Invalid { .. }), "{err:?}");
        assert!(err.to_string().contains("different design"));
    }

    #[test]
    fn crash_point_fires_after_the_nth_stage_write() {
        let dir = tmp("crash");
        let c = ctx(&dir, 9, Some(CrashPoint::after_train_writes(2)));
        c.save(CrashStage::Train, TRAIN_PARTIAL, &1usize).unwrap();
        // Search writes do not advance the train counter.
        c.save(CrashStage::Search, SEARCH_PARTIAL, &1usize).unwrap();
        let err = c
            .save(CrashStage::Train, TRAIN_PARTIAL, &2usize)
            .unwrap_err();
        assert!(matches!(err, CkptError::Io { .. }));
        // The write itself completed before the injected failure: the
        // file on disk holds the *new* value, like a real post-write kill.
        let back: usize = c.load(TRAIN_PARTIAL).unwrap().unwrap();
        assert_eq!(back, 2);
    }

    #[test]
    // why: plants torn .tmp orphans on purpose — the sweep under test
    // exists to clean up exactly such non-envelope debris.
    #[allow(clippy::disallowed_methods)]
    fn stale_tmp_orphans_are_swept_on_open() {
        let dir = tmp("sweep");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("train.ckpt.tmp"), b"torn").unwrap();
        std::fs::write(dir.join("search.ckpt.tmp"), b"torn too").unwrap();
        std::fs::write(dir.join("unrelated.txt"), b"keep me").unwrap();
        let c = ctx(&dir, 5, None);
        assert_eq!(c.stale_tmp_removed(), 2);
        assert!(!dir.join("train.ckpt.tmp").exists());
        assert!(dir.join("unrelated.txt").exists());
        let notes = c.take_notes();
        assert!(notes.iter().any(|n| n.contains("stale")), "{notes:?}");
    }

    #[test]
    fn disk_full_disables_checkpointing_instead_of_failing() {
        use mmp_vfs::{FailPlan, FaultKind, OpKind};
        let dir = tmp("degrade");
        let c = ctx_with(
            &dir,
            Vfs::with_plan(FailPlan::new(FaultKind::Enospc, 1).on(OpKind::Write)),
        );
        assert!(!c.disabled());
        // The failing write degrades instead of erroring...
        c.save(CrashStage::Train, TRAIN_PARTIAL, &1usize).unwrap();
        assert!(c.disabled());
        assert_eq!(c.writes(), 0);
        // ...and later saves become silent no-ops (plan is spent, but the
        // context stays disabled: one failure means the disk is suspect).
        c.save(CrashStage::Train, TRAIN_DONE, &2usize).unwrap();
        assert_eq!(c.writes(), 0);
        assert!(!dir.join(TRAIN_DONE).exists());
        let notes = c.take_notes();
        assert!(
            notes.iter().any(|n| n.contains("disabled")),
            "expected a disable note, got {notes:?}"
        );
    }

    #[test]
    fn crash_marked_write_fault_still_propagates() {
        use mmp_vfs::{FailPlan, FaultKind, OpKind};
        let dir = tmp("crashfault");
        let c = ctx_with(
            &dir,
            Vfs::with_plan(FailPlan::new(FaultKind::CrashAfter, 1).on(OpKind::Rename)),
        );
        let err = c
            .save(CrashStage::Train, TRAIN_PARTIAL, &1usize)
            .unwrap_err();
        assert!(matches!(err, CkptError::Io { .. }), "{err:?}");
        assert!(mmp_vfs::is_crash_detail(&err.to_string()));
        assert!(!c.disabled(), "a crash is death, not degradation");
    }

    #[test]
    fn dir_fsync_failure_is_counted_once_and_not_fatal() {
        use mmp_vfs::{FailPlan, FaultKind, OpKind};
        let dir = tmp("dirfsync");
        // Fsync ops per save: temp file (odd), directory (even). Fail the
        // first directory fsync.
        let c = ctx_with(
            &dir,
            Vfs::with_plan(FailPlan::new(FaultKind::Eio, 2).on(OpKind::Fsync)),
        );
        c.save(CrashStage::Train, TRAIN_PARTIAL, &1usize).unwrap();
        assert!(!c.disabled());
        assert_eq!(c.writes(), 1, "the write itself is durable and counted");
        let notes = c.take_notes();
        assert!(
            notes.iter().any(|n| n.contains("fsync")),
            "expected a dir-fsync note, got {notes:?}"
        );
    }

    #[test]
    fn fingerprint_ignores_budget_and_crash_knob_but_not_config() {
        use std::time::Duration;
        let d = mmp_netlist::SyntheticSpec::small("fp", 5, 0, 8, 40, 70, false, 2).generate();
        let cfg = PlacerConfig::fast(4);
        let base = fingerprint(&d, &cfg);
        let mut budgeted = cfg.clone();
        budgeted.budget = RunBudget::with_total(Duration::ZERO);
        budgeted.fault_crash = Some(CrashPoint::after_train_writes(1));
        budgeted.workers = 4;
        budgeted.fault_pool_panic = Some(0);
        assert_eq!(fingerprint(&d, &budgeted), base);
        let mut different = cfg.clone();
        different.trainer.episodes += 1;
        assert_ne!(fingerprint(&d, &different), base);
        let other = mmp_netlist::SyntheticSpec::small("fp2", 5, 0, 8, 40, 70, false, 2).generate();
        assert_ne!(fingerprint(&other, &cfg), base);
    }
}
