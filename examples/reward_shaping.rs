//! Reward-shaping study (the Fig. 4 experiment in miniature): train the
//! same agent under the paper's reward (Eq. 9 with α), Eq. 9 without α,
//! and the intuitive −W, and print the convergence of each.
//!
//! ```sh
//! cargo run --release -p mmp-examples --bin reward_shaping
//! ```

use mmp_core::{RewardKind, Trainer, TrainerConfig};

fn main() {
    // An ibm10-like circuit, heavily scaled down (the paper runs Fig. 4 on
    // ibm10 itself).
    let design = mmp_core::iccad04_suite()[9].scaled(0.004).generate();
    println!(
        "circuit: {} ({} movable macros, {} cells)",
        design.name(),
        design.movable_macros().len(),
        design.cells().len()
    );

    let kinds = [
        ("Eq.9 with alpha  ", RewardKind::Paper { alpha: 0.75 }),
        ("Eq.9 without alpha", RewardKind::PaperNoAlpha),
        ("intuitive -W      ", RewardKind::NegWirelength),
    ];
    for (label, kind) in kinds {
        let mut cfg = TrainerConfig::tiny(8);
        cfg.episodes = 40;
        cfg.calibration_episodes = 10;
        cfg.reward = kind;
        let outcome = Trainer::new(&design, cfg).train();
        // Report the mean wirelength of the first and last quarter of
        // training: convergence shows as a drop.
        let w = &outcome.history.episode_wirelengths;
        let quarter = (w.len() / 4).max(1);
        let early: f64 = w[..quarter].iter().sum::<f64>() / quarter as f64;
        let late: f64 = w[w.len() - quarter..].iter().sum::<f64>() / quarter as f64;
        let r = &outcome.history.episode_rewards;
        let avg_r: f64 = r.iter().sum::<f64>() / r.len() as f64;
        println!(
            "{label}: wirelength early {early:.0} -> late {late:.0} ({:+.1}%), avg reward {avg_r:.3}",
            (late / early - 1.0) * 100.0
        );
    }
    println!(
        "\nThe paper's observation: rewards slightly above zero (Eq. 9 + alpha)\n\
         converge fastest; raw -W rewards keep the agent from converging."
    );
}
