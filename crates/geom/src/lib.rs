#![warn(missing_docs)]
// Structured output goes through mmp_obs; stray prints are denied in CI
// (the obs sinks and bin/ targets are the sanctioned exits).
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

//! Geometry kernel for the MMP macro placer.
//!
//! This crate provides the low-level geometric vocabulary shared by every
//! other crate in the workspace:
//!
//! * [`Point`] — a 2-D position in micrometres.
//! * [`Rect`] — an axis-aligned rectangle (macro outlines, the chip region,
//!   grid cells).
//! * [`Grid`] — the ζ×ζ partition of the placement region used by both the
//!   RL agent and MCTS (Sec. II-A of the paper; ζ = 16 in the experiments).
//! * [`hpwl`] — half-perimeter wirelength estimation, the paper's quality
//!   metric everywhere (Tables II and III report HPWL).
//!
//! # Example
//!
//! ```
//! use mmp_geom::{Grid, Point, Rect};
//!
//! let region = Rect::new(0.0, 0.0, 1600.0, 1600.0);
//! let grid = Grid::new(region, 16);
//! assert_eq!(grid.cell_count(), 256);
//! let cell = grid.cell(3, 5);
//! assert!(region.contains_rect(&cell));
//! ```

pub mod grid;
pub mod hpwl;
pub mod incremental;
pub mod point;
pub mod rect;

pub use grid::{Grid, GridIndex};
pub use hpwl::{hpwl_of_points, BoundingBox};
pub use incremental::NetValueCache;
pub use point::Point;
pub use rect::Rect;
