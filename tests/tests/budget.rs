//! Wall-clock budget enforcement across the whole flow.
//!
//! Two angles: a zero budget must degrade every budgeted stage
//! deterministically while still placing legally, and a real budget `T`
//! must keep the run's wall clock within `1.25·T` plus the cost of the
//! unbudgeted bookends (preprocessing and final cell placement, which
//! cannot be skipped without losing the placement itself).

use mmp_core::{MacroPlacer, PlacerConfig, RunBudget, Stage, SyntheticSpec};
use std::time::{Duration, Instant};

#[test]
fn zero_budget_names_every_degraded_stage_and_stays_legal() {
    let design = SyntheticSpec::small("it_zb", 7, 1, 10, 60, 100, true, 21).generate();
    let mut cfg = PlacerConfig::fast(6);
    cfg.trainer.episodes = 50;
    cfg.trainer.calibration_episodes = 3;
    cfg.mcts.explorations = 80;
    cfg.budget = RunBudget::with_total(Duration::ZERO);

    let result = MacroPlacer::new(cfg).place(&design).unwrap();
    let stages = result.degradation.degraded_stages();
    assert!(stages.contains(&Stage::Train), "stages: {stages:?}");
    assert!(stages.contains(&Stage::Search), "stages: {stages:?}");
    assert!(stages.contains(&Stage::Legalize), "stages: {stages:?}");
    assert!(result.placement.macro_overlap_area(&design) < 1e-6);
    assert!(result.placement.macros_inside_region(&design));
    assert!(result.hpwl.is_finite() && result.hpwl > 0.0);
}

#[test]
fn zero_budget_degradation_is_deterministic() {
    let design = SyntheticSpec::small("it_zbd", 6, 0, 8, 50, 80, false, 22).generate();
    let mut cfg = PlacerConfig::fast(4);
    cfg.trainer.episodes = 30;
    cfg.trainer.calibration_episodes = 2;
    cfg.mcts.explorations = 40;
    cfg.budget = RunBudget::with_total(Duration::ZERO);

    let placer = MacroPlacer::new(cfg);
    let a = placer.place(&design).unwrap();
    let b = placer.place(&design).unwrap();
    assert_eq!(a.hpwl, b.hpwl);
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.placement, b.placement);
    assert_eq!(
        a.degradation.degraded_stages(),
        b.degradation.degraded_stages()
    );
}

#[test]
fn total_budget_is_enforced_within_tolerance() {
    let design = SyntheticSpec::small("it_tb", 8, 0, 10, 60, 100, false, 23).generate();
    // Work sized to take far longer than the budget if it ran to
    // completion: the budget, not the workload, must bound the wall clock.
    let mut cfg = PlacerConfig::fast(4);
    cfg.trainer.episodes = 100_000;
    cfg.trainer.calibration_episodes = 2;
    cfg.mcts.explorations = 100_000;

    // The budget does not cover preprocessing and final cell placement
    // (they cannot degrade away without losing the result), so measure
    // that fixed bookend cost once with a zero budget.
    let mut warm = cfg.clone();
    warm.budget = RunBudget::with_total(Duration::ZERO);
    let t0 = Instant::now();
    let _ = MacroPlacer::new(warm).place(&design).unwrap();
    let bookends = t0.elapsed();

    let budget = Duration::from_millis(800);
    cfg.budget = RunBudget::with_total(budget);
    let t1 = Instant::now();
    let result = MacroPlacer::new(cfg).place(&design).unwrap();
    let elapsed = t1.elapsed();

    assert!(
        elapsed <= budget.mul_f64(1.25) + bookends * 2,
        "run took {elapsed:?} against a {budget:?} budget (bookends {bookends:?})"
    );
    // Degraded under pressure, but still a complete legal placement.
    assert!(!result.degradation.is_empty());
    assert!(result.placement.macro_overlap_area(&design) < 1e-6);
    assert!(result.placement.macros_inside_region(&design));
    assert!(result.hpwl.is_finite() && result.hpwl > 0.0);
}
