//! Bitwise serde round-trips for network weights and optimizer state.
//!
//! The checkpoint subsystem stores trainer state as JSON inside the
//! `mmp-ckpt` envelope, and its bitwise-resume guarantee only holds if
//! every weight and every optimizer moment survives
//! serialize→deserialize exactly. The vendored `serde_json` formats f32/f64
//! round-trip-exactly (shortest-representation printing), so equality here
//! is `==`, not "within epsilon". `#[serde(skip)]` scratch fields (forward
//! caches) are dropped on save and must rebuild transparently on first use
//! after load.

use mmp_nn::{
    Adam, BatchNorm2d, Conv2d, InferenceCtx, Layer, Linear, Optimizer, Param, Sgd, Tensor,
};

/// Deterministic, non-trivial tensor values (no RNG dependency needed).
fn filled(shape: &[usize]) -> Tensor {
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n)
        .map(|i| ((i * 2654435761 % 1000) as f32 / 333.0) - 1.5)
        .collect();
    Tensor::from_vec(shape, data)
}

fn round_trip<T: serde::Serialize + serde::Deserialize>(value: &T) -> T {
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn fresh_layers_round_trip_bitwise() {
    let lin = Linear::new(6, 4, 3);
    assert_eq!(round_trip(&lin), lin);
    let conv = Conv2d::new(2, 3, 3, 5);
    assert_eq!(round_trip(&conv), conv);
    let bn = BatchNorm2d::new(4);
    assert_eq!(round_trip(&bn), bn);
}

#[test]
fn trained_linear_round_trips_and_its_cache_rebuilds() {
    let mut lin = Linear::new(5, 3, 7);
    let x = filled(&[2, 5]);
    // Forward in train mode leaves a cached input behind; the skip field
    // must vanish on save, not poison the payload.
    let _ = lin.forward(&x, true);
    let mut back = round_trip(&lin);
    // Inference outputs are bitwise identical...
    let mut ctx_a = InferenceCtx::new();
    let mut ctx_b = InferenceCtx::new();
    assert_eq!(
        lin.infer(&x, &mut ctx_a).as_slice(),
        back.infer(&x, &mut ctx_b).as_slice()
    );
    // ...and the restored layer trains: its cache rebuilds on the first
    // forward, so backward produces the exact gradients of the original.
    let g = filled(&[2, 3]);
    let _ = lin.forward(&x, true);
    let grad_orig = lin.backward(&g);
    let _ = back.forward(&x, true);
    let grad_back = back.backward(&g);
    assert_eq!(grad_orig.as_slice(), grad_back.as_slice());
}

#[test]
fn batchnorm_running_statistics_survive_the_round_trip() {
    let mut bn = BatchNorm2d::new(2);
    // Two training passes move the running mean/var away from init.
    let _ = bn.forward(&filled(&[2, 2, 3, 3]), true);
    let _ = bn.forward(&filled(&[2, 2, 3, 3]), true);
    let back = round_trip(&bn);
    let x = filled(&[1, 2, 3, 3]);
    let mut ctx_a = InferenceCtx::new();
    let mut ctx_b = InferenceCtx::new();
    assert_eq!(
        bn.infer(&x, &mut ctx_a).as_slice(),
        back.infer(&x, &mut ctx_b).as_slice()
    );
}

#[test]
fn conv_round_trip_preserves_inference_bitwise() {
    let conv = Conv2d::new(2, 3, 3, 11);
    let back = round_trip(&conv);
    let x = filled(&[1, 2, 4, 4]);
    let mut ctx_a = InferenceCtx::new();
    let mut ctx_b = InferenceCtx::new();
    assert_eq!(
        conv.infer(&x, &mut ctx_a).as_slice(),
        back.infer(&x, &mut ctx_b).as_slice()
    );
}

/// Drives `opt` for `steps` steps over two params with deterministic
/// synthetic gradients, returning the final param values.
fn drive<O: Optimizer>(opt: &mut O, a: &mut Param, b: &mut Param, steps: usize) {
    for s in 0..steps {
        for (k, p) in [&mut *a, &mut *b].into_iter().enumerate() {
            for (i, g) in p.grad.as_mut_slice().iter_mut().enumerate() {
                *g = ((s + k + i) as f32 * 0.37).sin();
            }
        }
        opt.begin_step();
        opt.update(a);
        opt.update(b);
    }
}

#[test]
fn adam_state_round_trips_bitwise_and_continues_identically() {
    let mut a = Param::new(filled(&[4]));
    let mut b = Param::new(filled(&[2, 3]));
    let mut opt = Adam::new(0.01);
    drive(&mut opt, &mut a, &mut b, 3);
    // Moments, timestep and slot counter all survive exactly.
    let mut restored = round_trip(&opt);
    assert_eq!(restored, opt);
    // A restored optimizer continues the run bitwise-identically.
    let (mut a2, mut b2) = (a.clone(), b.clone());
    drive(&mut opt, &mut a, &mut b, 2);
    drive(&mut restored, &mut a2, &mut b2, 2);
    assert_eq!(a.value.as_slice(), a2.value.as_slice());
    assert_eq!(b.value.as_slice(), b2.value.as_slice());
    assert_eq!(restored, opt);
}

#[test]
fn sgd_momentum_state_round_trips_bitwise() {
    let mut a = Param::new(filled(&[3]));
    let mut b = Param::new(filled(&[2, 2]));
    let mut opt = Sgd::new(0.05, 0.9);
    drive(&mut opt, &mut a, &mut b, 3);
    let mut restored = round_trip(&opt);
    assert_eq!(restored, opt);
    let (mut a2, mut b2) = (a.clone(), b.clone());
    drive(&mut opt, &mut a, &mut b, 2);
    drive(&mut restored, &mut a2, &mut b2, 2);
    assert_eq!(a.value.as_slice(), a2.value.as_slice());
}
