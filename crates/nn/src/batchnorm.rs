//! 2-D batch normalisation (per-channel over N·H·W).

use crate::infer::InferenceCtx;
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

const EPS: f32 = 1e-5;
const MOMENTUM: f32 = 0.1;

/// `BatchNorm2d`: per-channel normalisation with learnable scale/shift, the
/// "BN" of every Conv2D + BN block in Table I.
///
/// Training mode uses batch statistics and updates exponential running
/// stats; evaluation mode (MCTS inference) uses the running stats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchNorm2d {
    channels: usize,
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    #[serde(skip)]
    cache: Option<BnCache>,
}

#[derive(Debug, Clone, PartialEq)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    shape: [usize; 4],
}

impl BatchNorm2d {
    /// A batch-norm layer over `channels` feature maps (γ = 1, β = 0).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            channels,
            gamma: Param::new(Tensor::from_vec(&[channels], vec![1.0; channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cache: None,
        }
    }

    /// The running (inference) mean per channel.
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// The running (inference) variance per channel.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let [n, c, h, w]: [usize; 4] = input.shape().try_into().expect("bn input is NCHW");
        assert_eq!(c, self.channels, "channel mismatch");
        let hw = h * w;
        let count = (n * hw) as f32;
        let mut out = Tensor::zeros(&[n, c, h, w]);
        let mut x_hat = Tensor::zeros(&[n, c, h, w]);
        let mut inv_stds = vec![0.0f32; c];
        for (ch, inv_std_slot) in inv_stds.iter_mut().enumerate() {
            let (mean, var) = if train {
                let mut mean = 0.0f32;
                for s in 0..n {
                    let base = (s * c + ch) * hw;
                    // mmp-lint: allow(float-reduction) why: sequential sum over a contiguous channel slice, order fixed by layout
                    mean += input.as_slice()[base..base + hw].iter().sum::<f32>();
                }
                mean /= count;
                let mut var = 0.0f32;
                for s in 0..n {
                    let base = (s * c + ch) * hw;
                    var += input.as_slice()[base..base + hw]
                        .iter()
                        .map(|x| (x - mean).powi(2))
                        // mmp-lint: allow(float-reduction) why: sequential sum over a contiguous channel slice, order fixed by layout
                        .sum::<f32>();
                }
                var /= count;
                self.running_mean[ch] = (1.0 - MOMENTUM) * self.running_mean[ch] + MOMENTUM * mean;
                self.running_var[ch] = (1.0 - MOMENTUM) * self.running_var[ch] + MOMENTUM * var;
                (mean, var)
            } else {
                (self.running_mean[ch], self.running_var[ch])
            };
            let inv_std = 1.0 / (var + EPS).sqrt();
            *inv_std_slot = inv_std;
            let g = self.gamma.value.as_slice()[ch];
            let b = self.beta.value.as_slice()[ch];
            for s in 0..n {
                let base = (s * c + ch) * hw;
                for i in base..base + hw {
                    let xh = (input.as_slice()[i] - mean) * inv_std;
                    x_hat.as_mut_slice()[i] = xh;
                    out.as_mut_slice()[i] = g * xh + b;
                }
            }
        }
        if train {
            self.cache = Some(BnCache {
                x_hat,
                inv_std: inv_stds,
                shape: [n, c, h, w],
            });
        } else {
            self.cache = None;
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("backward without training forward");
        let [n, c, h, w] = cache.shape;
        let hw = h * w;
        let count = (n * hw) as f32;
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        for ch in 0..c {
            let g = self.gamma.value.as_slice()[ch];
            let inv_std = cache.inv_std[ch];
            // Reductions over the channel.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for s in 0..n {
                let base = (s * c + ch) * hw;
                for i in base..base + hw {
                    let dy = grad_out.as_slice()[i];
                    sum_dy += dy;
                    sum_dy_xhat += dy * cache.x_hat.as_slice()[i];
                }
            }
            self.beta.grad.as_mut_slice()[ch] += sum_dy;
            self.gamma.grad.as_mut_slice()[ch] += sum_dy_xhat;
            let mean_dy = sum_dy / count;
            let mean_dy_xhat = sum_dy_xhat / count;
            for s in 0..n {
                let base = (s * c + ch) * hw;
                for i in base..base + hw {
                    let dy = grad_out.as_slice()[i];
                    let xh = cache.x_hat.as_slice()[i];
                    grad_in.as_mut_slice()[i] = g * inv_std * (dy - mean_dy - xh * mean_dy_xhat);
                }
            }
        }
        grad_in
    }

    fn infer(&self, input: &Tensor, ctx: &mut InferenceCtx) -> Tensor {
        let [n, c, h, w]: [usize; 4] = input.shape().try_into().expect("bn input is NCHW");
        assert_eq!(c, self.channels, "channel mismatch");
        let hw = h * w;
        let mut out = ctx.take_tensor(&[n, c, h, w]);
        for ch in 0..c {
            let mean = self.running_mean[ch];
            let inv_std = 1.0 / (self.running_var[ch] + EPS).sqrt();
            let g = self.gamma.value.as_slice()[ch];
            let b = self.beta.value.as_slice()[ch];
            for s in 0..n {
                let base = (s * c + ch) * hw;
                for i in base..base + hw {
                    let xh = (input.as_slice()[i] - mean) * inv_std;
                    out.as_mut_slice()[i] = g * xh + b;
                }
            }
        }
        out
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_input(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = SmallRng::seed_from_u64(seed);
        Tensor::from_vec(
            shape,
            (0..shape.iter().product::<usize>())
                .map(|_| rng.gen::<f32>() * 4.0 - 2.0)
                .collect(),
        )
    }

    #[test]
    fn training_output_is_normalized() {
        let mut bn = BatchNorm2d::new(2);
        let input = random_input(&[2, 2, 4, 4], 1);
        let out = bn.forward(&input, true);
        // Per channel: mean ≈ 0, var ≈ 1.
        for ch in 0..2 {
            let mut vals = Vec::new();
            for s in 0..2 {
                for y in 0..4 {
                    for x in 0..4 {
                        vals.push(out.get(&[s, ch, y, x]));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let input = random_input(&[1, 1, 4, 4], 2);
        // Train a few times to move running stats.
        for _ in 0..20 {
            let _ = bn.forward(&input, true);
        }
        let train_out = bn.forward(&input, true);
        let eval_out = bn.forward(&input, false);
        // After convergence of running stats on a constant batch the two
        // agree closely.
        for (a, b) in train_out.as_slice().iter().zip(eval_out.as_slice()) {
            assert!((a - b).abs() < 0.2, "{a} vs {b}");
        }
        assert!(bn.running_var()[0] > 0.0);
        assert!(bn.running_mean()[0].abs() < 2.0);
    }

    #[test]
    fn gamma_beta_apply() {
        let mut bn = BatchNorm2d::new(1);
        bn.gamma.value.as_mut_slice()[0] = 3.0;
        bn.beta.value.as_mut_slice()[0] = -1.0;
        let input = random_input(&[1, 1, 4, 4], 3);
        let out = bn.forward(&input, true);
        let mean = out.mean();
        assert!((mean + 1.0).abs() < 1e-4, "beta shift missing: mean {mean}");
    }

    #[test]
    fn gradient_check() {
        let mut bn = BatchNorm2d::new(2);
        bn.gamma.value.as_mut_slice()[0] = 1.3;
        bn.gamma.value.as_mut_slice()[1] = 0.7;
        let input = random_input(&[1, 2, 3, 3], 4);
        let coefs: Vec<f32> = {
            let mut rng = SmallRng::seed_from_u64(5);
            (0..18).map(|_| rng.gen::<f32>() - 0.5).collect()
        };
        let loss = |bn: &mut BatchNorm2d, x: &Tensor| -> f32 {
            bn.forward(x, true)
                .as_slice()
                .iter()
                .zip(&coefs)
                .map(|(o, c)| o * c)
                .sum()
        };
        bn.zero_grad();
        let _ = bn.forward(&input, true);
        let grad_in = bn.backward(&Tensor::from_vec(&[1, 2, 3, 3], coefs.clone()));
        let eps = 1e-2;
        for idx in [0usize, 5, 12, 17] {
            let analytic = grad_in.as_slice()[idx];
            let mut ip = input.clone();
            ip.as_mut_slice()[idx] += eps;
            let lp = loss(&mut bn, &ip);
            let mut im = input.clone();
            im.as_mut_slice()[idx] -= eps;
            let lm = loss(&mut bn, &im);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 3e-2,
                "input[{idx}]: analytic {analytic}, numeric {numeric}"
            );
        }
        // Gamma gradient.
        bn.zero_grad();
        let _ = bn.forward(&input, true);
        let _ = bn.backward(&Tensor::from_vec(&[1, 2, 3, 3], coefs.clone()));
        let analytic = bn.gamma.grad.as_slice()[0];
        let orig = bn.gamma.value.as_slice()[0];
        bn.gamma.value.as_mut_slice()[0] = orig + eps;
        let lp = loss(&mut bn, &input);
        bn.gamma.value.as_mut_slice()[0] = orig - eps;
        let lm = loss(&mut bn, &input);
        bn.gamma.value.as_mut_slice()[0] = orig;
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 3e-2,
            "gamma: analytic {analytic}, numeric {numeric}"
        );
    }

    #[test]
    #[should_panic(expected = "backward without training forward")]
    fn eval_forward_cannot_backward() {
        let mut bn = BatchNorm2d::new(1);
        let input = random_input(&[1, 1, 2, 2], 6);
        let _ = bn.forward(&input, false);
        let _ = bn.backward(&Tensor::zeros(&[1, 1, 2, 2]));
    }
}
