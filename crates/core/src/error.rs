//! The typed error hierarchy of the placement flow.
//!
//! [`PlaceError`] has one variant per stage of Algorithm 1, each wrapping
//! that stage's own error enum, so callers can match on *where* a run
//! failed and on the precise cause — and the `mmp` CLI maps each stage to
//! a distinct exit code (see [`PlaceError::exit_code`]). Transient trouble
//! (deadline expiry, NaN evaluations, LP failures) is **not** an error:
//! those paths degrade gracefully and surface through
//! [`crate::DegradationReport`]. An `Err` from
//! [`crate::MacroPlacer::place`] always means the input or configuration
//! is unusable.

use crate::degrade::Stage;
use crate::report::ReportError;
use mmp_ckpt::CkptError;
use mmp_cluster::ClusterError;
use mmp_legal::LegalizeError;
use mmp_mcts::EnsembleError;
use mmp_pool::PoolError;
use mmp_rl::TrainError;
use std::error::Error;
use std::fmt;

/// Preprocessing failures: the design cannot enter the flow at all.
#[derive(Debug, Clone, PartialEq)]
pub enum PreprocessError {
    /// The design's region cannot host its macros (sum of macro areas
    /// exceeds the region area).
    MacrosExceedRegion {
        /// Total macro area of the design.
        macro_area: f64,
        /// Area of the placement region.
        region_area: f64,
    },
    /// Clustering/coarsening rejected the design.
    Cluster(ClusterError),
    /// The configured compute-pool worker count is unusable (zero, or past
    /// the pool's hard cap). Caught before any stage runs.
    Pool(PoolError),
}

impl fmt::Display for PreprocessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PreprocessError::MacrosExceedRegion {
                macro_area,
                region_area,
            } => write!(
                f,
                "total macro area exceeds the placement region ({macro_area:.1} > {region_area:.1})"
            ),
            PreprocessError::Cluster(e) => write!(f, "{e}"),
            PreprocessError::Pool(e) => write!(f, "compute pool configuration: {e}"),
        }
    }
}

impl Error for PreprocessError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PreprocessError::Cluster(e) => Some(e),
            PreprocessError::Pool(e) => Some(e),
            PreprocessError::MacrosExceedRegion { .. } => None,
        }
    }
}

/// Search-stage failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// `ensemble_runs` was configured as 0 — no search can run.
    NoRuns,
    /// Every ensemble worker panicked; there is no surviving run to take a
    /// result from. (A *partial* loss degrades gracefully instead — see
    /// [`crate::DegradationReport`].)
    AllWorkersPanicked {
        /// Workers launched (and lost).
        runs: usize,
    },
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::NoRuns => write!(f, "ensemble_runs is 0: no search would run"),
            SearchError::AllWorkersPanicked { runs } => {
                write!(f, "all {runs} ensemble workers panicked; no surviving run")
            }
        }
    }
}

impl Error for SearchError {}

impl From<EnsembleError> for SearchError {
    fn from(e: EnsembleError) -> Self {
        match e {
            EnsembleError::NoRuns => SearchError::NoRuns,
            EnsembleError::AllWorkersPanicked { runs } => SearchError::AllWorkersPanicked { runs },
        }
    }
}

/// Final-cell-placement failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FinalPlaceError {
    /// The cell placer returned non-finite coordinates — the numerical
    /// guards upstream should make this unreachable, so reaching it means
    /// the placement cannot be trusted and is refused rather than written
    /// out.
    NonFinitePlacement {
        /// Number of nodes with a non-finite coordinate.
        nodes: usize,
    },
}

impl fmt::Display for FinalPlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FinalPlaceError::NonFinitePlacement { nodes } => {
                write!(
                    f,
                    "final placement has {nodes} nodes at non-finite coordinates"
                )
            }
        }
    }
}

impl Error for FinalPlaceError {}

/// Flow-level failure: which stage failed, and why.
#[derive(Debug, Clone, PartialEq)]
pub enum PlaceError {
    /// Preprocessing (feasibility, clustering) failed.
    Preprocess(PreprocessError),
    /// RL pre-training failed.
    Train(TrainError),
    /// MCTS placement optimization failed.
    Search(SearchError),
    /// Macro legalization failed.
    Legalize(LegalizeError),
    /// Final cell placement failed.
    FinalPlace(FinalPlaceError),
    /// Result aggregation / report emission failed (malformed table
    /// input or an unwritable report).
    Report(ReportError),
    /// Checkpoint persistence or resume failed: unwritable checkpoint
    /// directory, or a corrupt/truncated/stale-version/mismatched resume
    /// checkpoint. Never raised when checkpointing is not requested.
    Checkpoint(CkptError),
}

impl PlaceError {
    /// The stage the error belongs to.
    pub fn stage(&self) -> Stage {
        match self {
            PlaceError::Preprocess(_) => Stage::Preprocess,
            PlaceError::Train(_) => Stage::Train,
            PlaceError::Search(_) => Stage::Search,
            PlaceError::Legalize(_) => Stage::Legalize,
            PlaceError::FinalPlace(_) => Stage::FinalPlace,
            PlaceError::Report(_) => Stage::Report,
            PlaceError::Checkpoint(_) => Stage::Checkpoint,
        }
    }

    /// `true` when retrying the same job may legitimately succeed.
    ///
    /// The placer is deterministic: for almost every failure, re-running
    /// the identical input reproduces the identical error, so retrying is
    /// pure waste — those are **permanent** (bad design, bad config,
    /// numerical refusal). Two classes are **transient**, because their
    /// cause lives outside the computation:
    ///
    /// - [`CkptError::Io`] under [`PlaceError::Checkpoint`] (directly or
    ///   surfaced through [`TrainError::Checkpoint`]): the filesystem
    ///   refused a read or write — disk pressure, a yanked volume, or an
    ///   injected mid-run kill. The checkpoints already on disk make the
    ///   retry cheaper than the first attempt, not just possible.
    /// - [`SearchError::AllWorkersPanicked`]: every ensemble worker died,
    ///   which the deterministic search itself cannot cause — it signals
    ///   environmental pressure (e.g. OOM kills) on the worker threads.
    ///
    /// Every other variant — including non-`Io` checkpoint damage such as
    /// a corrupt or version-stale file, which re-reading will refuse
    /// again byte-for-byte — is permanent. `mmpd` uses this split for its
    /// retry policy: transient failures back off and retry, permanent
    /// ones are reported immediately, and a job that stays transient past
    /// the attempt cap is quarantined.
    pub fn is_transient(&self) -> bool {
        match self {
            PlaceError::Checkpoint(e) | PlaceError::Train(TrainError::Checkpoint(e)) => {
                matches!(e, CkptError::Io { .. })
            }
            PlaceError::Search(SearchError::AllWorkersPanicked { .. }) => true,
            _ => false,
        }
    }

    /// The CLI exit code for this error: a distinct non-zero code per
    /// stage (10–16), leaving 1 for generic I/O errors and 2 for usage
    /// errors.
    pub fn exit_code(&self) -> u8 {
        match self {
            PlaceError::Preprocess(_) => 10,
            PlaceError::Train(_) => 11,
            PlaceError::Search(_) => 12,
            PlaceError::Legalize(_) => 13,
            PlaceError::FinalPlace(_) => 14,
            PlaceError::Report(_) => 15,
            PlaceError::Checkpoint(_) => 16,
        }
    }
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::Preprocess(e) => write!(f, "preprocess: {e}"),
            PlaceError::Train(e) => write!(f, "train: {e}"),
            PlaceError::Search(e) => write!(f, "search: {e}"),
            PlaceError::Legalize(e) => write!(f, "legalize: {e}"),
            PlaceError::FinalPlace(e) => write!(f, "final-place: {e}"),
            PlaceError::Report(e) => write!(f, "report: {e}"),
            PlaceError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl Error for PlaceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlaceError::Preprocess(e) => Some(e),
            PlaceError::Train(e) => Some(e),
            PlaceError::Search(e) => Some(e),
            PlaceError::Legalize(e) => Some(e),
            PlaceError::FinalPlace(e) => Some(e),
            PlaceError::Report(e) => Some(e),
            PlaceError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<CkptError> for PlaceError {
    fn from(e: CkptError) -> Self {
        PlaceError::Checkpoint(e)
    }
}

impl From<ReportError> for PlaceError {
    fn from(e: ReportError) -> Self {
        PlaceError::Report(e)
    }
}

impl From<LegalizeError> for PlaceError {
    fn from(e: LegalizeError) -> Self {
        PlaceError::Legalize(e)
    }
}

impl From<SearchError> for PlaceError {
    fn from(e: SearchError) -> Self {
        PlaceError::Search(e)
    }
}

impl From<FinalPlaceError> for PlaceError {
    fn from(e: FinalPlaceError) -> Self {
        PlaceError::FinalPlace(e)
    }
}

/// A trainer error is a *preprocessing* failure when its cause is the
/// clustering of the input design, a *checkpoint* failure when a snapshot
/// could not be written or restored, and a *training* failure otherwise.
impl From<TrainError> for PlaceError {
    fn from(e: TrainError) -> Self {
        match e {
            TrainError::Cluster(c) => PlaceError::Preprocess(PreprocessError::Cluster(c)),
            TrainError::Checkpoint(c) => PlaceError::Checkpoint(c),
            other => PlaceError::Train(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_non_zero() {
        let errs = [
            PlaceError::Preprocess(PreprocessError::MacrosExceedRegion {
                macro_area: 2.0,
                region_area: 1.0,
            }),
            PlaceError::Train(TrainError::ZetaMismatch { net: 4, env: 8 }),
            PlaceError::Search(SearchError::NoRuns),
            PlaceError::Legalize(LegalizeError::AssignmentMismatch {
                expected: 3,
                got: 0,
            }),
            PlaceError::FinalPlace(FinalPlaceError::NonFinitePlacement { nodes: 7 }),
            PlaceError::Report(ReportError::EmptyRows),
            PlaceError::Checkpoint(CkptError::BadMagic {
                path: "x.ckpt".to_owned(),
            }),
        ];
        let mut codes: Vec<u8> = errs.iter().map(PlaceError::exit_code).collect();
        assert!(codes.iter().all(|&c| c != 0 && c != 1 && c != 2));
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len(), "exit codes must be distinct");
    }

    #[test]
    fn messages_name_the_stage_and_cause() {
        let e = PlaceError::Preprocess(PreprocessError::MacrosExceedRegion {
            macro_area: 162.0,
            region_area: 100.0,
        });
        let msg = e.to_string();
        assert!(msg.contains("preprocess"));
        assert!(msg.contains("macro area"));
        assert_eq!(e.stage(), Stage::Preprocess);

        let e = PlaceError::from(TrainError::ZetaMismatch { net: 4, env: 8 });
        assert!(e.to_string().contains("train"));
        assert_eq!(e.stage(), Stage::Train);
    }

    #[test]
    fn cluster_cause_maps_to_preprocess() {
        let e = PlaceError::from(TrainError::Cluster(
            mmp_cluster::ClusterError::UngroupedMovableMacro {
                name: "m3".to_owned(),
            },
        ));
        assert_eq!(e.stage(), Stage::Preprocess);
        assert_eq!(e.exit_code(), 10);
        assert!(e.to_string().contains("m3"));
    }

    #[test]
    fn source_chain_reaches_the_stage_error() {
        let e = PlaceError::Search(SearchError::NoRuns);
        let src = std::error::Error::source(&e).expect("has source");
        assert!(src.to_string().contains("ensemble_runs"));
    }

    #[test]
    fn checkpoint_errors_map_to_exit_16() {
        let e = PlaceError::from(CkptError::Truncated {
            path: "train.ckpt".to_owned(),
            expected: 100,
            got: 12,
        });
        assert_eq!(e.exit_code(), 16);
        assert_eq!(e.stage(), Stage::Checkpoint);
        assert!(e.to_string().starts_with("checkpoint:"));
        // A sink failure surfacing through the trainer keeps the
        // checkpoint classification, not the train one.
        let e = PlaceError::from(TrainError::Checkpoint(CkptError::Io {
            path: "ck".to_owned(),
            detail: "disk full".to_owned(),
        }));
        assert_eq!(e.exit_code(), 16);
    }

    #[test]
    fn transiency_split_is_exhaustive_and_conservative() {
        // Transient: environmental causes a retry can outlive.
        assert!(PlaceError::Checkpoint(CkptError::Io {
            path: "train.ckpt".to_owned(),
            detail: "disk full".to_owned(),
        })
        .is_transient());
        assert!(PlaceError::Train(TrainError::Checkpoint(CkptError::Io {
            path: "train.ckpt".to_owned(),
            detail: "yanked volume".to_owned(),
        }))
        .is_transient());
        assert!(PlaceError::Search(SearchError::AllWorkersPanicked { runs: 3 }).is_transient());

        // Permanent: deterministic refusals a retry would reproduce.
        let permanent = [
            PlaceError::Preprocess(PreprocessError::MacrosExceedRegion {
                macro_area: 2.0,
                region_area: 1.0,
            }),
            PlaceError::Train(TrainError::ZetaMismatch { net: 4, env: 8 }),
            PlaceError::Search(SearchError::NoRuns),
            PlaceError::Legalize(LegalizeError::AssignmentMismatch {
                expected: 3,
                got: 0,
            }),
            PlaceError::FinalPlace(FinalPlaceError::NonFinitePlacement { nodes: 7 }),
            PlaceError::Report(ReportError::EmptyRows),
            // A bad worker count re-validates identically: permanent.
            PlaceError::Preprocess(PreprocessError::Pool(PoolError::ZeroWorkers)),
            // Non-Io checkpoint damage re-reads identically: permanent.
            PlaceError::Checkpoint(CkptError::Corrupt {
                path: "x.ckpt".to_owned(),
                detail: "crc".to_owned(),
            }),
            PlaceError::Checkpoint(CkptError::BadMagic {
                path: "x.ckpt".to_owned(),
            }),
            PlaceError::Checkpoint(CkptError::Truncated {
                path: "x.ckpt".to_owned(),
                expected: 100,
                got: 12,
            }),
            PlaceError::Checkpoint(CkptError::Invalid {
                detail: "fingerprint".to_owned(),
            }),
        ];
        for e in permanent {
            assert!(!e.is_transient(), "{e} must be permanent");
        }
    }

    #[test]
    fn pool_misconfiguration_is_a_preprocess_error() {
        let e = PlaceError::Preprocess(PreprocessError::Pool(PoolError::TooManyWorkers {
            workers: 1000,
            max: mmp_pool::MAX_WORKERS,
        }));
        assert_eq!(e.exit_code(), 10);
        assert_eq!(e.stage(), Stage::Preprocess);
        assert!(e.to_string().contains("preprocess"));
        assert!(e.to_string().contains("1000"));
        let src = std::error::Error::source(&e).expect("has source");
        assert!(
            std::error::Error::source(src).is_some(),
            "chains to PoolError"
        );
    }

    #[test]
    fn ensemble_errors_map_to_search_errors() {
        assert_eq!(
            SearchError::from(EnsembleError::NoRuns),
            SearchError::NoRuns
        );
        let e = SearchError::from(EnsembleError::AllWorkersPanicked { runs: 4 });
        assert_eq!(e, SearchError::AllWorkersPanicked { runs: 4 });
        assert!(e.to_string().contains("panicked"));
    }
}
