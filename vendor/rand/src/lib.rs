//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of the `rand 0.8` API the workspace uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`. Streams are deterministic in the seed
//! (xoshiro256++ seeded via SplitMix64) but do not match upstream `rand`
//! bit-for-bit; nothing in the workspace depends on upstream streams.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// A generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the full value range (the `Standard`
/// distribution of upstream `rand`). Floats sample from `[0, 1)`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits → uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Rejection-free (modulo-bias-negligible for test workloads) integer draw
/// in `[0, span)` via 128-bit widening multiply.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + <$t as Standard>::sample(rng) * (end - start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw of `T` (floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator (xoshiro256++, seeded via SplitMix64 like
    /// upstream `SmallRng` on 64-bit targets).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start all-zero; SplitMix64 never yields four
            // zero words from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// The generator's internal xoshiro256++ state, for checkpointing.
        /// [`SmallRng::from_state`] restores the exact stream position.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator mid-stream from a [`SmallRng::state`]
        /// snapshot. An all-zero state (never produced by a live
        /// generator) is nudged to a valid one rather than wedging the
        /// stream.
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0; 4] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            seen_low |= v == 3;
            seen_high |= v == 6;
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let b = rng.gen_range(0u8..=255);
            let _ = b;
        }
        assert!(seen_low && seen_high, "range endpoints should be reachable");
    }

    #[test]
    fn state_snapshot_resumes_the_exact_stream() {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        for _ in 0..17 {
            rng.next_u64();
        }
        let snapshot = rng.state();
        let tail: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
        let mut resumed = SmallRng::from_state(snapshot);
        let resumed_tail: Vec<u64> = (0..32).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, resumed_tail);
        // All-zero snapshots are repaired, not wedged.
        let mut z = SmallRng::from_state([0; 4]);
        assert_ne!(z.next_u64() | z.next_u64(), 0);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }
}
