//! The workspace must lint clean against its own conventions: every
//! finding in the real source tree is either fixed or suppressed with a
//! `why:` justification. This is the same gate CI runs via
//! `cargo run -p mmp-lint -- check`.

use mmp_lint::{lint_source, lint_workspace, render_text, LintConfig};
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let findings =
        lint_workspace(&workspace_root(), &LintConfig::default()).expect("workspace walk succeeds");
    let live: Vec<_> = findings.iter().filter(|f| !f.suppressed).cloned().collect();
    assert!(
        live.is_empty(),
        "unsuppressed lint findings in the workspace:\n{}",
        render_text(&live)
    );
    // The walk must actually have covered the tree — a silent empty walk
    // would make this test vacuous.
    assert!(
        !findings.is_empty(),
        "expected the workspace's justified suppressions to be reported"
    );
    assert!(findings.iter().all(|f| f.suppressed && f.why.is_some()));
}

#[test]
fn introducing_a_violation_is_caught() {
    // Acceptance check for the gate itself: the same engine that passes the
    // real tree flags a freshly introduced violation in a decision crate.
    let bad = "fn order(groups: &HashMap<u32, f64>) -> Vec<u32> {\n    let mut ids: Vec<u32> = groups.keys().copied().collect();\n    ids.sort_by(|a, b| groups[a].partial_cmp(&groups[b]).unwrap());\n    ids\n}\n";
    let findings = lint_source("crates/mcts/src/injected.rs", bad, &LintConfig::default());
    let live: Vec<_> = findings.iter().filter(|f| !f.suppressed).collect();
    assert!(
        live.iter().any(|f| f.rule == "hash-order"),
        "injected HashMap not flagged"
    );
    assert!(
        live.iter().any(|f| f.rule == "partial-cmp"),
        "injected partial_cmp not flagged"
    );
}
