//! MaskPlace-like baseline: greedy per-macro placement with a wiremask.
//!
//! MaskPlace's key device is the *wiremask*: after each macro is placed,
//! the incremental HPWL of putting the next macro on every grid cell is
//! computed exactly, and the RL agent learns over that mask. Our baseline
//! keeps the wiremask and replaces the agent with the greedy argmin — a
//! strong, deterministic stand-in that captures the method's geometry
//! (the paper's qualitative ordering only needs MaskPlace to beat CT and
//! lose to the proposed placer).

use crate::placer::MacroPlacer;
use mmp_geom::{BoundingBox, Grid, Point};
use mmp_legal::MacroLegalizer;
use mmp_netlist::{Design, MacroId, NodeRef, Placement};

/// Greedy wiremask placer over a ζ×ζ grid.
#[derive(Debug, Clone)]
pub struct MaskPlaceLike {
    /// Grid resolution ζ.
    pub zeta: usize,
}

impl MaskPlaceLike {
    /// Creates the placer (the paper's comparisons use ζ = 16 grids; finer
    /// masks are allowed).
    pub fn new(zeta: usize) -> Self {
        MaskPlaceLike { zeta }
    }

    /// The wiremask of `macro_id`: for every grid cell, the HPWL over the
    /// macro's nets if its center moved to that cell's center, counting
    /// only pins whose positions are already decided (`placed`).
    fn wiremask(
        &self,
        design: &Design,
        grid: &Grid,
        placed: &[Option<Point>],
        macro_id: MacroId,
    ) -> Vec<f64> {
        let mut mask = vec![0.0f64; grid.cell_count()];
        for &net in design.nets_of_macro(macro_id) {
            // Bounding box of the already-decided pins of this net.
            let mut bb = BoundingBox::empty();
            let mut own_offsets: Vec<Point> = Vec::new();
            for pin in &design.net(net).pins {
                match pin.node {
                    NodeRef::Macro(m) if m == macro_id => own_offsets.push(pin.offset),
                    NodeRef::Macro(m) => {
                        if let Some(c) = placed[m.index()] {
                            bb.extend(c + pin.offset);
                        }
                    }
                    NodeRef::Pad(p) => bb.extend(design.pad(p).position),
                    NodeRef::Cell(_) => {} // cells are not placed yet
                }
            }
            if own_offsets.is_empty() {
                continue;
            }
            let weight = design.net(net).weight;
            for (flat, cell) in mask.iter_mut().enumerate() {
                let center = grid.cell_at(grid.unflatten(flat)).center();
                let mut net_bb = bb;
                for off in &own_offsets {
                    net_bb.extend(center + *off);
                }
                *cell += weight * net_bb.half_perimeter();
            }
        }
        mask
    }
}

impl MacroPlacer for MaskPlaceLike {
    fn name(&self) -> &str {
        "MaskPlace-like"
    }

    fn place_macros(&self, design: &Design) -> Placement {
        let grid = Grid::new(*design.region(), self.zeta);
        // Decided macro centers (preplaced fixed up front).
        let mut placed: Vec<Option<Point>> =
            design.macros().iter().map(|m| m.fixed_center).collect();
        // Free area per cell, to mask overfull cells.
        let mut free = vec![grid.cell_area(); grid.cell_count()];
        for id in design.preplaced_macros() {
            let r = Placement::initial(design).macro_rect(design, id);
            for idx in grid.indices() {
                let flat = grid.flat_index(idx);
                free[flat] -= grid.coverage(idx.col, idx.row, &r) * grid.cell_area();
            }
        }
        // Largest macros first (as in MaskPlace and the paper).
        let mut order = design.movable_macros();
        order.sort_by(|&a, &b| design.macro_(b).area().total_cmp(&design.macro_(a).area()));

        for id in order {
            let m = design.macro_(id);
            let mask = self.wiremask(design, &grid, &placed, id);
            // Choose the lowest-wirelength cell with enough free area;
            // fall back to the freest cell when none fits.
            let mut best: Option<(usize, f64)> = None;
            for flat in 0..grid.cell_count() {
                if free[flat] < m.area() * 0.5 {
                    continue;
                }
                if best.is_none_or(|(_, w)| mask[flat] < w) {
                    best = Some((flat, mask[flat]));
                }
            }
            let flat = best.map(|(f, _)| f).unwrap_or_else(|| {
                free.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .expect("grid non-empty")
            });
            let center = grid.cell_at(grid.unflatten(flat)).center();
            placed[id.index()] = Some(center);
            free[flat] -= m.area();
        }

        let targets: Vec<Point> = design
            .movable_macros()
            .into_iter()
            .map(|id| placed[id.index()].expect("every macro was placed"))
            .collect();
        MacroLegalizer::new().legalize_targets(design, &targets).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placer::score_hpwl;
    use crate::RandomPlacer;
    use mmp_geom::Rect;
    use mmp_netlist::{DesignBuilder, SyntheticSpec};

    #[test]
    fn wiremask_prefers_cells_near_fixed_partners() {
        // One macro netted to a pad in the top-right corner: the greedy
        // choice must land near that corner.
        let mut b = DesignBuilder::new("wm", Rect::new(0.0, 0.0, 80.0, 80.0));
        let m = b.add_macro("m", 4.0, 4.0, "");
        let p = b.add_pad("p", Point::new(80.0, 80.0));
        b.add_net(
            "n",
            [
                (NodeRef::Macro(m), Point::ORIGIN),
                (NodeRef::Pad(p), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        let d = b.build().unwrap();
        let pl = MaskPlaceLike::new(8).place_macros(&d);
        let c = pl.macro_center(m);
        assert!(
            c.x > 60.0 && c.y > 60.0,
            "macro at {c}, expected near (80, 80)"
        );
    }

    #[test]
    fn output_is_legal() {
        let d = SyntheticSpec::small("mp", 10, 2, 8, 80, 140, true, 5).generate();
        let pl = MaskPlaceLike::new(8).place_macros(&d);
        assert!(pl.macro_overlap_area(&d) < 1e-6);
        for id in d.preplaced_macros() {
            assert_eq!(pl.macro_center(id), d.macro_(id).fixed_center.unwrap());
        }
    }

    #[test]
    fn beats_random_on_average() {
        let mut wins = 0;
        for seed in 0..3 {
            let d = SyntheticSpec::small("mb", 8, 0, 12, 90, 160, false, seed).generate();
            let mask = score_hpwl(&d, &MaskPlaceLike::new(8).place_macros(&d));
            let random = score_hpwl(&d, &RandomPlacer::new(seed, 8).place_macros(&d));
            if mask < random {
                wins += 1;
            }
        }
        assert!(wins >= 2, "wiremask won only {wins}/3 against random");
    }

    #[test]
    fn is_deterministic() {
        let d = SyntheticSpec::small("md", 8, 0, 8, 60, 110, false, 6).generate();
        let p = MaskPlaceLike::new(8);
        assert_eq!(p.place_macros(&d), p.place_macros(&d));
    }
}
