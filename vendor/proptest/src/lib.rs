//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest 1.x surface this workspace uses:
//! the `proptest!` macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! numeric range strategies, string strategies from a small regex subset,
//! tuple strategies, and `proptest::collection::vec`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (the hash of the test name), and there is **no shrinking**
//! — a failing case reports its debug-printed inputs instead.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::{Range, RangeInclusive};

/// Per-block configuration for [`proptest!`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it does not count toward
    /// the case budget.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failing case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected case (assumption not met).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic generator used to drive strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test's name, so runs are reproducible.
    pub fn for_test(name: &str) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        TestRng {
            state: h.finish() ^ 0x9E3779B97F4A7C15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                start + rng.unit_f64() as $t * (end - start)
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

mod regex_gen {
    use super::TestRng;

    /// Parsed node of the supported regex subset: literals, `.`, classes,
    /// groups, alternation and `{m,n}`/`*`/`+`/`?` quantifiers.
    pub enum Node {
        Alt(Vec<Node>),
        Seq(Vec<Node>),
        Repeat(Box<Node>, u32, u32),
        Literal(char),
        AnyChar,
        Class(Vec<(char, char)>),
    }

    struct RegexParser {
        chars: Vec<char>,
        pos: usize,
    }

    impl RegexParser {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }

        fn bump(&mut self) -> Option<char> {
            let c = self.peek();
            if c.is_some() {
                self.pos += 1;
            }
            c
        }

        fn parse_alt(&mut self) -> Node {
            let mut branches = vec![self.parse_seq()];
            while self.peek() == Some('|') {
                self.bump();
                branches.push(self.parse_seq());
            }
            if branches.len() == 1 {
                branches.pop().unwrap()
            } else {
                Node::Alt(branches)
            }
        }

        fn parse_seq(&mut self) -> Node {
            let mut items = Vec::new();
            while let Some(c) = self.peek() {
                if c == ')' || c == '|' {
                    break;
                }
                let atom = self.parse_atom();
                items.push(self.parse_quantifier(atom));
            }
            Node::Seq(items)
        }

        fn parse_atom(&mut self) -> Node {
            match self.bump().expect("regex strategy: unexpected end") {
                '(' => {
                    let inner = self.parse_alt();
                    assert_eq!(self.bump(), Some(')'), "regex strategy: expected `)`");
                    inner
                }
                '[' => self.parse_class(),
                '.' => Node::AnyChar,
                '\\' => match self.bump().expect("regex strategy: dangling escape") {
                    'd' => Node::Class(vec![('0', '9')]),
                    'w' => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    's' => Node::Class(vec![(' ', ' '), ('\t', '\t')]),
                    c => Node::Literal(c),
                },
                c => Node::Literal(c),
            }
        }

        fn parse_class(&mut self) -> Node {
            assert_ne!(
                self.peek(),
                Some('^'),
                "regex strategy: negated classes unsupported"
            );
            let mut ranges = Vec::new();
            loop {
                let c = self.bump().expect("regex strategy: unterminated class");
                if c == ']' {
                    break;
                }
                let c = if c == '\\' {
                    self.bump().expect("regex strategy: dangling escape")
                } else {
                    c
                };
                if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                    self.bump();
                    let hi = self.bump().expect("regex strategy: unterminated range");
                    ranges.push((c, hi));
                } else {
                    ranges.push((c, c));
                }
            }
            assert!(!ranges.is_empty(), "regex strategy: empty class");
            Node::Class(ranges)
        }

        fn parse_quantifier(&mut self, atom: Node) -> Node {
            let (lo, hi) = match self.peek() {
                Some('*') => (0, 8),
                Some('+') => (1, 8),
                Some('?') => (0, 1),
                Some('{') => {
                    self.bump();
                    let mut lo_digits = String::new();
                    while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        lo_digits.push(self.bump().unwrap());
                    }
                    let lo: u32 = lo_digits.parse().expect("regex strategy: bad repeat");
                    let hi = match self.bump() {
                        Some('}') => lo,
                        Some(',') => {
                            let mut hi_digits = String::new();
                            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                                hi_digits.push(self.bump().unwrap());
                            }
                            assert_eq!(self.bump(), Some('}'), "regex strategy: expected `}}`");
                            if hi_digits.is_empty() {
                                lo + 8
                            } else {
                                hi_digits.parse().expect("regex strategy: bad repeat")
                            }
                        }
                        _ => panic!("regex strategy: malformed repeat"),
                    };
                    return Node::Repeat(Box::new(atom), lo, hi);
                }
                _ => return atom,
            };
            self.bump();
            Node::Repeat(Box::new(atom), lo, hi)
        }
    }

    pub fn parse(pattern: &str) -> Node {
        let mut p = RegexParser {
            chars: pattern.chars().collect(),
            pos: 0,
        };
        let node = p.parse_alt();
        assert_eq!(
            p.pos,
            p.chars.len(),
            "regex strategy: trailing characters in {pattern:?}"
        );
        node
    }

    /// Characters `.` can produce: mostly printable ASCII, with occasional
    /// whitespace/unicode to stress parsers.
    const EXOTIC: &[char] = &['\t', '\r', 'é', 'ß', '中', '𝕏', '🦀', '\u{0}', '\u{7f}'];

    pub fn generate(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Alt(branches) => {
                let pick = rng.below(branches.len() as u64) as usize;
                generate(&branches[pick], rng, out);
            }
            Node::Seq(items) => {
                for item in items {
                    generate(item, rng, out);
                }
            }
            Node::Repeat(inner, lo, hi) => {
                let n = lo + rng.below(u64::from(hi - lo) + 1) as u32;
                for _ in 0..n {
                    generate(inner, rng, out);
                }
            }
            Node::Literal(c) => out.push(*c),
            Node::AnyChar => {
                if rng.below(8) == 0 {
                    out.push(EXOTIC[rng.below(EXOTIC.len() as u64) as usize]);
                } else {
                    out.push((0x20 + rng.below(0x5f) as u8) as char);
                }
            }
            Node::Class(ranges) => {
                let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                let span = hi as u32 - lo as u32 + 1;
                out.push(char::from_u32(lo as u32 + rng.below(u64::from(span)) as u32).unwrap());
            }
        }
    }
}

impl Strategy for &str {
    type Value = String;

    /// Treats the string as a regex pattern (small subset) and generates a
    /// matching string.
    fn generate(&self, rng: &mut TestRng) -> String {
        let node = regex_gen::parse(self);
        let mut out = String::new();
        regex_gen::generate(&node, rng, &mut out);
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive bounds on generated collection length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose elements come from `element` and whose length comes
    /// from `size` (a `usize`, `Range<usize>`, or `RangeInclusive<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __cfg.cases.saturating_mul(20).max(100);
            while __accepted < __cfg.cases {
                assert!(
                    __attempts < __max_attempts,
                    "proptest: too many rejected cases ({} attempts)",
                    __attempts
                );
                __attempts += 1;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = {
                    let mut __s = ::std::string::String::new();
                    $(
                        __s.push_str(concat!(stringify!($arg), " = "));
                        __s.push_str(&format!("{:?}; ", $arg));
                    )+
                    __s
                };
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __outcome {
                    ::std::result::Result::Err(__payload) => {
                        eprintln!("proptest case panicked; inputs: {}", __inputs);
                        ::std::panic::resume_unwind(__payload);
                    }
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {
                        __accepted += 1;
                    }
                    ::std::result::Result::Ok(::std::result::Result::Err(
                        $crate::TestCaseError::Reject(_),
                    )) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(
                        $crate::TestCaseError::Fail(__msg),
                    )) => {
                        panic!("proptest case failed: {}\n  inputs: {}", __msg, __inputs);
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Rejects the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{collection, regex_gen, Strategy, TestRng};

    #[test]
    fn regex_class_repeat() {
        let mut rng = TestRng::for_test("regex_class_repeat");
        for _ in 0..200 {
            let s = "[a-c]{1,3}(/[a-c]{1,3}){0,4}".generate(&mut rng);
            for part in s.split('/') {
                assert!((1..=3).contains(&part.chars().count()), "{s:?}");
                assert!(part.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
            }
        }
    }

    #[test]
    fn regex_dot_bounds() {
        let mut rng = TestRng::for_test("regex_dot_bounds");
        for _ in 0..100 {
            let s = ".{0,400}".generate(&mut rng);
            assert!(s.chars().count() <= 400);
        }
    }

    #[test]
    fn regex_alternation() {
        let node = regex_gen::parse("ab|cd");
        let mut rng = TestRng::for_test("regex_alternation");
        for _ in 0..50 {
            let mut out = String::new();
            regex_gen::generate(&node, &mut rng, &mut out);
            assert!(out == "ab" || out == "cd", "{out:?}");
        }
    }

    #[test]
    fn vec_sizes() {
        let mut rng = TestRng::for_test("vec_sizes");
        let exact = collection::vec(0usize..5, 12);
        assert_eq!(exact.generate(&mut rng).len(), 12);
        let ranged = collection::vec((0usize..6, -1.0f64..1.0), 2..7);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            for (i, x) in v {
                assert!(i < 6 && (-1.0..1.0).contains(&x));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        fn macro_smoke(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assume!(x != 3);
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y), "y out of range: {}", y);
            prop_assert_eq!(x + 1, 1 + x);
            prop_assert_ne!(x, 10);
        }
    }
}
