//! Parallel ensemble search: N independent MCTS runs with diversified
//! priors, best final allocation wins.
//!
//! The paper runs one search per design; on a multicore host the cheapest
//! robustness upgrade is root-level parallelism — each worker perturbs the
//! expansion priors slightly (a deterministic analogue of AlphaZero's
//! Dirichlet root noise), searches independently, and the best-scoring
//! terminal allocation is kept. Determinism is preserved: worker `k`
//! always uses noise seed `seed + k`, so results are reproducible.

use crate::search::{MctsConfig, MctsOutcome, MctsPlacer};
use mmp_obs::{field, Obs};
use mmp_rl::{Agent, InferenceCtx, RewardScale, Trainer};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Ensemble parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleConfig {
    /// Independent search runs (also the thread fan-out).
    pub runs: usize,
    /// Per-run search configuration; `prior_noise` is forced positive for
    /// every run but the first (run 0 reproduces the plain single search).
    pub base: MctsConfig,
    /// Noise amplitude for the diversified runs.
    pub noise: f32,
    /// Base seed; run `k` uses `seed + k`.
    pub seed: u64,
    /// Observability handle. Only the deterministic run 0 traces (worker
    /// interleaving would make trace output nondeterministic); the
    /// ensemble itself emits a `mcts.ensemble`/`done` summary after the
    /// join. Not part of the serialized configuration.
    #[serde(skip)]
    pub obs: Obs,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        EnsembleConfig {
            runs: 4,
            base: MctsConfig::default(),
            noise: 0.25,
            seed: 0,
            obs: Obs::off(),
        }
    }
}

/// Result of an ensemble run: the winning outcome plus each run's score.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleOutcome {
    /// The best (lowest-wirelength) run's outcome.
    pub best: MctsOutcome,
    /// Final wirelength of every run, in run order.
    pub run_wirelengths: Vec<f64>,
}

/// Runs the ensemble across `config.runs` threads.
///
/// Run 0 uses zero noise (the deterministic single-search result), so the
/// ensemble can only improve on [`MctsPlacer::place`].
///
/// # Panics
///
/// Panics when `config.runs == 0` or a worker thread panics.
pub fn place_ensemble(
    trainer: &Trainer<'_>,
    agent: &Agent,
    scale: &RewardScale,
    config: &EnsembleConfig,
) -> EnsembleOutcome {
    place_ensemble_with_deadline(trainer, agent, scale, config, None)
}

/// [`place_ensemble`] with a shared wall-clock deadline: every worker
/// degrades independently (best-so-far commits, then policy-greedy — see
/// [`MctsPlacer::place_with_ctx_deadline`]), so the ensemble still returns
/// a complete assignment when the deadline expires mid-search.
///
/// # Panics
///
/// Panics when `config.runs == 0` or a worker thread panics.
pub fn place_ensemble_with_deadline(
    trainer: &Trainer<'_>,
    agent: &Agent,
    scale: &RewardScale,
    config: &EnsembleConfig,
    deadline: Option<Instant>,
) -> EnsembleOutcome {
    assert!(config.runs > 0, "ensemble needs at least one run");
    let mut outcomes: Vec<Option<MctsOutcome>> = vec![None; config.runs];
    std::thread::scope(|scope| {
        for (k, slot) in outcomes.iter_mut().enumerate() {
            // Workers share the read-only agent; each brings only a private
            // scratch context (no network clone per worker).
            let mut cfg = config.base.clone();
            if k > 0 {
                cfg.prior_noise = config.noise.max(1e-3);
                cfg.noise_seed = config.seed.wrapping_add(k as u64);
            } else {
                cfg.prior_noise = 0.0;
            }
            // Only run 0 (the deterministic baseline) carries the handle:
            // events from concurrent workers would interleave
            // nondeterministically in the trace.
            let obs = if k == 0 {
                config.obs.clone()
            } else {
                Obs::off()
            };
            scope.spawn(move || {
                let placer = MctsPlacer::new(cfg).with_obs(obs);
                let mut ctx = InferenceCtx::new();
                *slot =
                    Some(placer.place_with_ctx_deadline(trainer, agent, scale, &mut ctx, deadline));
            });
        }
    });

    let outcomes: Vec<MctsOutcome> = outcomes.into_iter().flatten().collect();
    let run_wirelengths: Vec<f64> = outcomes.iter().map(|o| o.wirelength).collect();
    // NaN-sane: a poisoned wirelength sorts above every real score, so it
    // can never win.
    let sane = |w: f64| if w.is_nan() { f64::INFINITY } else { w };
    #[allow(clippy::expect_used)]
    let best = outcomes
        .into_iter()
        .min_by(|a, b| sane(a.wirelength).total_cmp(&sane(b.wirelength)))
        .expect("at least one run");
    if config.obs.enabled() {
        config
            .obs
            .count("mcts.ensemble_runs", run_wirelengths.len() as u64);
        if config.obs.tracing() {
            let best_run = run_wirelengths
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| sane(**a).total_cmp(&sane(**b)))
                .map(|(i, _)| i)
                .unwrap_or(0);
            config.obs.event(
                "mcts.ensemble",
                "done",
                &[
                    field("runs", run_wirelengths.len()),
                    field("best_run", best_run),
                    field("best_wirelength", best.wirelength),
                ],
            );
        }
    }
    EnsembleOutcome {
        best,
        run_wirelengths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_netlist::SyntheticSpec;
    use mmp_rl::TrainerConfig;

    fn setup() -> (mmp_netlist::Design, TrainerConfig) {
        let d = SyntheticSpec::small("ens", 7, 0, 8, 60, 100, false, 5).generate();
        let mut cfg = TrainerConfig::tiny(4);
        cfg.episodes = 4;
        (d, cfg)
    }

    #[test]
    fn ensemble_never_loses_to_single_search() {
        let (d, cfg) = setup();
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let single = MctsPlacer::new(MctsConfig {
            explorations: 12,
            ..MctsConfig::default()
        })
        .place(&trainer, &out.agent, &out.scale);
        let ens = place_ensemble(
            &trainer,
            &out.agent,
            &out.scale,
            &EnsembleConfig {
                runs: 3,
                base: MctsConfig {
                    explorations: 12,
                    ..MctsConfig::default()
                },
                ..EnsembleConfig::default()
            },
        );
        assert!(ens.best.wirelength <= single.wirelength + 1e-9);
        assert_eq!(ens.run_wirelengths.len(), 3);
        // Run 0 is the noise-free search.
        assert_eq!(ens.run_wirelengths[0], single.wirelength);
    }

    #[test]
    fn ensemble_is_deterministic() {
        let (d, cfg) = setup();
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let config = EnsembleConfig {
            runs: 3,
            base: MctsConfig {
                explorations: 8,
                ..MctsConfig::default()
            },
            ..EnsembleConfig::default()
        };
        let a = place_ensemble(&trainer, &out.agent, &out.scale, &config);
        let b = place_ensemble(&trainer, &out.agent, &out.scale, &config);
        assert_eq!(a.run_wirelengths, b.run_wirelengths);
        assert_eq!(a.best.assignment, b.best.assignment);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_is_rejected() {
        let (d, cfg) = setup();
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let _ = place_ensemble(
            &trainer,
            &out.agent,
            &out.scale,
            &EnsembleConfig {
                runs: 0,
                ..EnsembleConfig::default()
            },
        );
    }

    #[test]
    fn noisy_runs_explore_different_allocations() {
        let (d, cfg) = setup();
        let trainer = Trainer::new(&d, cfg);
        let out = trainer.train();
        let ens = place_ensemble(
            &trainer,
            &out.agent,
            &out.scale,
            &EnsembleConfig {
                runs: 4,
                noise: 0.8,
                base: MctsConfig {
                    explorations: 8,
                    ..MctsConfig::default()
                },
                ..EnsembleConfig::default()
            },
        );
        // With strong noise, at least two runs should differ in score.
        let first = ens.run_wirelengths[0];
        assert!(
            ens.run_wirelengths.iter().any(|w| (w - first).abs() > 1e-9),
            "all runs identical despite noise: {:?}",
            ens.run_wirelengths
        );
    }
}
