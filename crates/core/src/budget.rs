//! Wall-clock budgets for the placement flow.
//!
//! A [`RunBudget`] carries an optional **total** deadline plus optional
//! per-stage allowances. Budgets trigger *graceful degradation*, never
//! hard aborts: when a stage's deadline passes, the stage commits its
//! best-so-far result through a cheaper deterministic path (policy-greedy
//! allocation, row-greedy packing, last-good weights) and the flow records
//! the event in a [`crate::DegradationReport`]. A run with any budget set
//! therefore still produces a complete, legal placement — just a cruder
//! one than an unbudgeted run.

use serde::{map_get, Deserialize, Error, Serialize, Value};
use std::time::{Duration, Instant};

/// Optional wall-clock allowances for a placement run.
///
/// All fields default to `None` (unlimited). Per-stage budgets are counted
/// from the *start of that stage*; the total budget from the start of
/// [`crate::MacroPlacer::place`]. A stage's effective deadline is the
/// earlier of its own allowance and the total deadline.
///
/// Serialized as a map of optional integer milliseconds
/// (`{"total_ms": 5000, "train_ms": null, ...}`), since the flow's config
/// files are plain JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Allowance for the whole run.
    pub total: Option<Duration>,
    /// Allowance for RL pre-training (calibration + episodes).
    pub train: Option<Duration>,
    /// Allowance for the MCTS stage (shared by all ensemble workers).
    pub search: Option<Duration>,
    /// Allowance for macro legalization.
    pub legalize: Option<Duration>,
    /// Allowance for the optional post-MCTS swap refinement.
    pub refine: Option<Duration>,
}

/// The flow's wall-clock read point.
///
/// This module is the sanctioned home for `Instant::now` in `mmp-core`
/// (enforced by `mmp-lint`'s `wallclock` rule): stage timing and deadline
/// arithmetic in `flow.rs` call through here, so every clock read the
/// flow makes is auditable in one place and none can leak into placement
/// decisions unseen.
pub fn now() -> Instant {
    Instant::now()
}

impl RunBudget {
    /// No limits anywhere — the default.
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// A budget constraining only the total run time.
    pub fn with_total(total: Duration) -> Self {
        RunBudget {
            total: Some(total),
            ..RunBudget::default()
        }
    }

    /// `true` when no allowance is set at all.
    pub fn is_unlimited(&self) -> bool {
        self.total.is_none()
            && self.train.is_none()
            && self.search.is_none()
            && self.legalize.is_none()
            && self.refine.is_none()
    }

    /// The effective deadline for a stage starting at `stage_start`, given
    /// the run-wide deadline: the earlier of the two, `None` when both are
    /// unlimited.
    pub fn stage_deadline(
        run_deadline: Option<Instant>,
        stage_start: Instant,
        stage_allowance: Option<Duration>,
    ) -> Option<Instant> {
        min_deadline(run_deadline, stage_allowance.map(|d| stage_start + d))
    }
}

/// The earlier of two optional deadlines.
pub(crate) fn min_deadline(a: Option<Instant>, b: Option<Instant>) -> Option<Instant> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

fn millis_value(d: &Option<Duration>) -> Value {
    match d {
        Some(d) => Value::U64(u64::try_from(d.as_millis()).unwrap_or(u64::MAX)),
        None => Value::Null,
    }
}

fn millis_from(v: &Value, key: &str) -> Result<Option<Duration>, Error> {
    match map_get(v, key) {
        None | Some(Value::Null) => Ok(None),
        Some(val) => Ok(Some(Duration::from_millis(u64::deserialize(val)?))),
    }
}

// Manual impls: the vendored serde stub has no Duration support, so the
// budget round-trips as integer milliseconds.
impl Serialize for RunBudget {
    fn serialize(&self) -> Value {
        Value::Map(vec![
            ("total_ms".to_owned(), millis_value(&self.total)),
            ("train_ms".to_owned(), millis_value(&self.train)),
            ("search_ms".to_owned(), millis_value(&self.search)),
            ("legalize_ms".to_owned(), millis_value(&self.legalize)),
            ("refine_ms".to_owned(), millis_value(&self.refine)),
        ])
    }
}

impl Deserialize for RunBudget {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(RunBudget {
            total: millis_from(v, "total_ms")?,
            train: millis_from(v, "train_ms")?,
            search: millis_from(v, "search_ms")?,
            legalize: millis_from(v, "legalize_ms")?,
            refine: millis_from(v, "refine_ms")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited() {
        assert!(RunBudget::default().is_unlimited());
        assert!(!RunBudget::with_total(Duration::from_secs(1)).is_unlimited());
    }

    #[test]
    fn serde_roundtrip() {
        let b = RunBudget {
            total: Some(Duration::from_millis(5000)),
            train: None,
            search: Some(Duration::from_millis(250)),
            legalize: Some(Duration::ZERO),
            refine: Some(Duration::from_millis(40)),
        };
        let v = b.serialize();
        let back = RunBudget::deserialize(&v).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn missing_fields_deserialize_as_unlimited() {
        let v = Value::Map(vec![("total_ms".to_owned(), Value::U64(100))]);
        let b = RunBudget::deserialize(&v).unwrap();
        assert_eq!(b.total, Some(Duration::from_millis(100)));
        assert_eq!(b.train, None);
        assert_eq!(b.search, None);
        assert_eq!(b.legalize, None);
        assert_eq!(b.refine, None);
    }

    #[test]
    fn stage_deadline_takes_the_earlier_bound() {
        let now = Instant::now();
        let run = Some(now + Duration::from_millis(100));
        let tight = RunBudget::stage_deadline(run, now, Some(Duration::from_millis(10)));
        assert_eq!(tight, Some(now + Duration::from_millis(10)));
        let loose = RunBudget::stage_deadline(run, now, Some(Duration::from_secs(10)));
        assert_eq!(loose, run);
        assert_eq!(RunBudget::stage_deadline(None, now, None), None);
        assert_eq!(RunBudget::stage_deadline(run, now, None), run);
    }
}
