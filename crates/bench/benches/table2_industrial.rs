//! Criterion bench for the Table II pipeline pieces on an industrial-like
//! circuit (hierarchy + preplaced macros): coarsening, 3-step legalization
//! and the SE baseline generation.

use criterion::{criterion_group, criterion_main, Criterion};
use mmp_baselines::{MacroPlacer as _, SePlacer};
use mmp_core::{ClusterParams, Coarsener, Grid, MacroLegalizer, Placement};

fn bench_industrial_pipeline(c: &mut Criterion) {
    let spec = mmp_core::industrial_suite()[0].scaled(0.0005);
    let design = spec.generate();
    let grid = Grid::new(*design.region(), 16);
    let initial = Placement::initial(&design);
    let coarse = Coarsener::new(&ClusterParams::paper(grid.cell_area())).coarsen(&design, &initial);
    let assignment: Vec<_> = (0..coarse.macro_groups().len())
        .map(|g| grid.unflatten((g * 11 + 5) % grid.cell_count()))
        .collect();

    let mut group = c.benchmark_group("table2_industrial");
    group.sample_size(10);
    group.bench_function("coarsen", |b| {
        b.iter(|| {
            let c2 =
                Coarsener::new(&ClusterParams::paper(grid.cell_area())).coarsen(&design, &initial);
            criterion::black_box(c2.macro_groups().len())
        });
    });
    group.bench_function("legalize_3step", |b| {
        b.iter(|| {
            let out = MacroLegalizer::new()
                .legalize(&design, &coarse, &assignment, &grid)
                .expect("valid assignment");
            criterion::black_box(out.overlap_area)
        });
    });
    group.bench_function("se_baseline", |b| {
        b.iter(|| {
            let pl = SePlacer::new(1, 8, 1).place_macros(&design);
            criterion::black_box(pl.macro_count())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_industrial_pipeline);
criterion_main!(benches);
