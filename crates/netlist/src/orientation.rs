//! Macro orientations (DEF-style N / S / FN / FS).
//!
//! Real flows may flip or rotate macros to shorten pin access; the paper's
//! method places axis-aligned outlines only, so orientation is an
//! *extension*: [`Placement`](crate::Placement) tracks one orientation per
//! macro (default [`Orientation::N`]) and applies it when resolving pin
//! positions. Rotations that swap width/height (E/W family) are excluded —
//! they would invalidate the grid footprints the RL state is built from —
//! leaving the four axis-preserving orientations.

use mmp_geom::Point;
use serde::{Deserialize, Serialize};

/// An axis-preserving macro orientation.
///
/// The transform maps a pin offset `(dx, dy)` (relative to the macro
/// center) as follows:
///
/// | orientation | meaning | offset map |
/// |---|---|---|
/// | `N` | as designed | `( dx,  dy)` |
/// | `S` | rotated 180° | `(−dx, −dy)` |
/// | `FN` | flipped about the y axis | `(−dx,  dy)` |
/// | `FS` | flipped about the x axis | `( dx, −dy)` |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Orientation {
    /// North: as designed.
    #[default]
    N,
    /// South: rotated 180°.
    S,
    /// Flipped north: mirrored about the vertical axis.
    FN,
    /// Flipped south: mirrored about the horizontal axis.
    FS,
}

impl Orientation {
    /// All four orientations, for move enumeration.
    pub const ALL: [Orientation; 4] = [
        Orientation::N,
        Orientation::S,
        Orientation::FN,
        Orientation::FS,
    ];

    /// Applies the orientation to a center-relative pin offset.
    #[inline]
    pub fn apply(self, offset: Point) -> Point {
        match self {
            Orientation::N => offset,
            Orientation::S => Point::new(-offset.x, -offset.y),
            Orientation::FN => Point::new(-offset.x, offset.y),
            Orientation::FS => Point::new(offset.x, -offset.y),
        }
    }

    /// The orientation that undoes this one (each is its own inverse).
    #[inline]
    pub fn inverse(self) -> Orientation {
        self
    }

    /// Composition: applying `self` after `other`.
    pub fn compose(self, other: Orientation) -> Orientation {
        use Orientation::*;
        // The group is Z2 × Z2 on (flip-x, flip-y).
        let fx = |o: Orientation| matches!(o, S | FN);
        let fy = |o: Orientation| matches!(o, S | FS);
        match (fx(self) ^ fx(other), fy(self) ^ fy(other)) {
            (false, false) => N,
            (true, true) => S,
            (true, false) => FN,
            (false, true) => FS,
        }
    }
}

impl std::fmt::Display for Orientation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Orientation::N => "N",
            Orientation::S => "S",
            Orientation::FN => "FN",
            Orientation::FS => "FS",
        };
        write!(f, "{s}")
    }
}

impl std::str::FromStr for Orientation {
    type Err = ParseOrientationError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "N" => Ok(Orientation::N),
            "S" => Ok(Orientation::S),
            "FN" => Ok(Orientation::FN),
            "FS" => Ok(Orientation::FS),
            _ => Err(ParseOrientationError),
        }
    }
}

/// Error parsing an [`Orientation`] from a string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseOrientationError;

impl std::fmt::Display for ParseOrientationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "orientation must be one of N, S, FN, FS")
    }
}

impl std::error::Error for ParseOrientationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn offset_maps_match_the_table() {
        let p = Point::new(2.0, 3.0);
        assert_eq!(Orientation::N.apply(p), Point::new(2.0, 3.0));
        assert_eq!(Orientation::S.apply(p), Point::new(-2.0, -3.0));
        assert_eq!(Orientation::FN.apply(p), Point::new(-2.0, 3.0));
        assert_eq!(Orientation::FS.apply(p), Point::new(2.0, -3.0));
    }

    #[test]
    fn each_orientation_is_an_involution() {
        let p = Point::new(1.5, -0.5);
        for o in Orientation::ALL {
            assert_eq!(o.apply(o.apply(p)), p, "{o} twice must be identity");
            assert_eq!(o.compose(o), Orientation::N);
        }
    }

    #[test]
    fn composition_matches_sequential_application() {
        let p = Point::new(1.0, 2.0);
        for a in Orientation::ALL {
            for b in Orientation::ALL {
                assert_eq!(
                    a.compose(b).apply(p),
                    a.apply(b.apply(p)),
                    "compose({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn parse_roundtrip() {
        for o in Orientation::ALL {
            let s = o.to_string();
            assert_eq!(s.parse::<Orientation>().unwrap(), o);
        }
        assert!("E".parse::<Orientation>().is_err());
        let e = "E".parse::<Orientation>().unwrap_err();
        assert!(e.to_string().contains("N, S, FN, FS"));
    }

    proptest! {
        #[test]
        fn apply_preserves_magnitude(x in -100.0f64..100.0, y in -100.0f64..100.0) {
            let p = Point::new(x, y);
            for o in Orientation::ALL {
                let q = o.apply(p);
                prop_assert!((q.x.abs() - p.x.abs()).abs() < 1e-12);
                prop_assert!((q.y.abs() - p.y.abs()).abs() < 1e-12);
            }
        }
    }
}
