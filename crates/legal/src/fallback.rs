//! Deterministic row-greedy (shelf) packing — the degraded legalization
//! path.
//!
//! When the sequence-pair + median-descent machinery cannot be trusted
//! (non-finite coordinates from a poisoned upstream solve, an injected
//! fault, or an expired wall-clock deadline), the flow falls back to this
//! packer: blocks are sorted by decreasing height (ties by index) and laid
//! out left-to-right in shelves from the bottom of the target rectangle,
//! skipping obstacle outlines. The result is overlap-free by construction,
//! needs no iteration, and is fully deterministic — a strictly weaker but
//! strictly safer answer than the LP path.

use mmp_geom::{Point, Rect};

/// One block to pack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShelfItem {
    /// Caller-side identifier, returned untouched in [`ShelfPlacement`].
    pub id: usize,
    /// Block width.
    pub width: f64,
    /// Block height.
    pub height: f64,
}

/// One packed block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShelfPlacement {
    /// The [`ShelfItem::id`] this placement belongs to.
    pub id: usize,
    /// Legal center for the block.
    pub center: Point,
}

/// Result of a shelf pack.
#[derive(Debug, Clone, PartialEq)]
pub struct ShelfOutcome {
    /// One entry per input item (input order is *not* preserved; match by
    /// `id`).
    pub placements: Vec<ShelfPlacement>,
    /// `true` when the shelves spilled above `bounds` — the packing is
    /// still overlap-free, but not fully inside the rectangle.
    pub out_of_bounds: bool,
}

/// Packs `items` into `bounds` with row-greedy shelves, avoiding
/// `obstacles` (e.g. preplaced macro outlines).
///
/// Determinism: items are processed in decreasing-height order with index
/// tie-breaks; shelf scanning is left-to-right, bottom-to-top. Non-finite
/// item sizes are treated as zero so a poisoned input can never poison the
/// output. When a block is wider than any free span of a shelf it opens a
/// new shelf; a block wider than `bounds` itself is placed flush left and
/// reported through `out_of_bounds`.
pub fn shelf_pack(bounds: &Rect, items: &[ShelfItem], obstacles: &[Rect]) -> ShelfOutcome {
    let sane = |v: f64| if v.is_finite() && v > 0.0 { v } else { 0.0 };
    let mut order: Vec<ShelfItem> = items
        .iter()
        .map(|it| ShelfItem {
            id: it.id,
            width: sane(it.width),
            height: sane(it.height),
        })
        .collect();
    order.sort_by(|a, b| b.height.total_cmp(&a.height).then(a.id.cmp(&b.id)));

    let mut placements = Vec::with_capacity(order.len());
    let mut out_of_bounds = false;
    let mut shelf_y = bounds.y;
    let mut shelf_h = 0.0f64;
    let mut cursor_x = bounds.x;
    for it in order {
        loop {
            let h = it.height.max(1e-12);
            // First block of a shelf fixes its height (descending sort ⇒
            // every later block fits vertically).
            let band_h = if shelf_h > 0.0 { shelf_h } else { h };
            let band = Rect::new(bounds.x, shelf_y, bounds.width, band_h);
            match free_slot(&band, cursor_x, it.width, h, obstacles) {
                Some(x) if x + it.width <= bounds.right() + 1e-9 || it.width > bounds.width => {
                    // Wider-than-region blocks go flush left (reported),
                    // everything else must genuinely fit the shelf.
                    let x = if it.width > bounds.width { bounds.x } else { x };
                    placements.push(ShelfPlacement {
                        id: it.id,
                        center: Point::new(x + it.width / 2.0, shelf_y + h / 2.0),
                    });
                    if shelf_h == 0.0 {
                        shelf_h = h;
                    }
                    cursor_x = x + it.width;
                    if x + it.width > bounds.right() + 1e-9 || shelf_y + h > bounds.top() + 1e-9 {
                        out_of_bounds = true;
                    }
                    break;
                }
                _ => {
                    // Shelf exhausted: open the next one. An empty shelf
                    // that still cannot host the block (obstacle wall)
                    // would loop forever, so advance past it by the block
                    // height in that case.
                    let advance = if shelf_h > 0.0 { shelf_h } else { h };
                    shelf_y += advance;
                    shelf_h = 0.0;
                    cursor_x = bounds.x;
                    if shelf_y > bounds.top() + 1e-9 {
                        out_of_bounds = true;
                    }
                }
            }
        }
    }
    ShelfOutcome {
        placements,
        out_of_bounds,
    }
}

/// Smallest `x ≥ cursor` where a `w×h` block based at `(x, band.y)` clears
/// every obstacle intersecting the shelf band; `None` when no such `x`
/// keeps the block inside the band's right edge (unless the band is above
/// every obstacle, in which case the first candidate is returned).
fn free_slot(band: &Rect, cursor: f64, w: f64, h: f64, obstacles: &[Rect]) -> Option<f64> {
    let mut blockers: Vec<(f64, f64)> = obstacles
        .iter()
        .filter(|o| o.y < band.y + h - 1e-9 && o.top() > band.y + 1e-9)
        .map(|o| (o.x, o.right()))
        .collect();
    blockers.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut x = cursor;
    for _ in 0..=blockers.len() {
        let hit = blockers
            .iter()
            .find(|&&(bx, br)| bx < x + w - 1e-9 && br > x + 1e-9);
        match hit {
            None => return Some(x),
            Some(&(_, br)) => x = br,
        }
        if x + w > band.right() + 1e-9 {
            return None;
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(sizes: &[(f64, f64)]) -> Vec<ShelfItem> {
        sizes
            .iter()
            .enumerate()
            .map(|(id, &(width, height))| ShelfItem { id, width, height })
            .collect()
    }

    fn rects_of(out: &ShelfOutcome, its: &[ShelfItem]) -> Vec<Rect> {
        out.placements
            .iter()
            .map(|p| {
                let it = its.iter().find(|i| i.id == p.id).unwrap();
                Rect::centered_at(p.center, it.width, it.height)
            })
            .collect()
    }

    fn assert_disjoint(rects: &[Rect]) {
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                assert!(
                    rects[i].overlap_area(&rects[j]) < 1e-9,
                    "overlap between {i} and {j}: {:?} vs {:?}",
                    rects[i],
                    rects[j]
                );
            }
        }
    }

    #[test]
    fn packs_disjoint_inside_bounds() {
        let bounds = Rect::new(0.0, 0.0, 100.0, 100.0);
        let its = items(&[(10.0, 8.0), (20.0, 5.0), (15.0, 12.0), (30.0, 4.0)]);
        let out = shelf_pack(&bounds, &its, &[]);
        assert!(!out.out_of_bounds);
        let rects = rects_of(&out, &its);
        assert_disjoint(&rects);
        for r in &rects {
            assert!(bounds.contains_rect(r), "{r:?} escapes bounds");
        }
    }

    #[test]
    fn avoids_obstacles() {
        let bounds = Rect::new(0.0, 0.0, 100.0, 100.0);
        let wall = Rect::new(20.0, 0.0, 30.0, 100.0);
        let its = items(&[(15.0, 10.0), (15.0, 10.0), (15.0, 10.0)]);
        let out = shelf_pack(&bounds, &its, &[wall]);
        let rects = rects_of(&out, &its);
        assert_disjoint(&rects);
        for r in &rects {
            assert!(r.overlap_area(&wall) < 1e-9, "{r:?} hits the wall");
        }
    }

    #[test]
    fn overfull_bounds_spill_but_stay_disjoint() {
        let bounds = Rect::new(0.0, 0.0, 20.0, 20.0);
        let its = items(&[(15.0, 15.0), (15.0, 15.0), (15.0, 15.0)]);
        let out = shelf_pack(&bounds, &its, &[]);
        assert!(out.out_of_bounds);
        assert_disjoint(&rects_of(&out, &its));
    }

    #[test]
    fn non_finite_sizes_do_not_poison_the_packing() {
        let bounds = Rect::new(0.0, 0.0, 50.0, 50.0);
        let its = items(&[(f64::NAN, 10.0), (10.0, f64::INFINITY), (10.0, 10.0)]);
        let out = shelf_pack(&bounds, &its, &[]);
        for p in &out.placements {
            assert!(p.center.x.is_finite() && p.center.y.is_finite(), "{p:?}");
        }
    }

    #[test]
    fn packing_is_deterministic() {
        let bounds = Rect::new(0.0, 0.0, 60.0, 60.0);
        let its = items(&[(9.0, 7.0), (9.0, 7.0), (12.0, 3.0), (4.0, 11.0)]);
        let a = shelf_pack(&bounds, &its, &[]);
        let b = shelf_pack(&bounds, &its, &[]);
        assert_eq!(a, b);
    }
}
