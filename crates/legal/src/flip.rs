//! Orientation refinement: greedy per-macro flip selection.
//!
//! The axis-preserving orientations (N/S/FN/FS, see
//! [`mmp_netlist::orientation`]) keep every outline — and therefore
//! legality and the grid footprints — unchanged while moving the pins.
//! Sweeping the macros and keeping the best of the four orientations per
//! macro is a classic zero-risk post-pass: HPWL can only go down.

use mmp_netlist::{Design, IncrementalHpwl, Orientation, Placement};

/// Outcome of an orientation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FlipOutcome {
    /// The refined placement (same coordinates, possibly new orientations).
    pub placement: Placement,
    /// HPWL before the sweep.
    pub hpwl_before: f64,
    /// HPWL after the sweep (≤ before).
    pub hpwl_after: f64,
    /// Macros whose orientation changed.
    pub flips: usize,
}

/// Greedily chooses the best orientation for every movable macro,
/// sweeping until no flip improves HPWL (at most `max_sweeps` rounds).
///
/// Preplaced macros keep their designed orientation: flipping fixed IP is
/// not the placer's call.
pub fn optimize_orientations(
    design: &Design,
    placement: &Placement,
    max_sweeps: usize,
) -> FlipOutcome {
    // The delta evaluator re-scores only the nets touching the flipped
    // macro, keeping the sweep O(pins) instead of O(design); its cached
    // per-net values reproduce `Placement::hpwl` bit for bit.
    let mut inc = IncrementalHpwl::new(design, placement.clone());
    let hpwl_before = inc.total();
    let mut flips = 0usize;

    for _ in 0..max_sweeps.max(1) {
        let mut improved = false;
        for id in design.movable_macros() {
            let current = inc.placement().macro_orientation(id);
            let base_local = inc.local_of_macro(id);
            let mut chosen = current;
            let mut chosen_local = base_local;
            for cand in Orientation::ALL {
                if cand == current {
                    continue;
                }
                inc.set_macro_orientation(id, cand);
                let l = inc.local_of_macro(id);
                inc.revert();
                if l < chosen_local - 1e-12 {
                    chosen = cand;
                    chosen_local = l;
                }
            }
            if chosen != current {
                inc.set_macro_orientation(id, chosen);
                inc.commit();
                debug_assert!(chosen_local < base_local);
                flips += 1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    let hpwl_after = inc.total();
    FlipOutcome {
        placement: inc.into_placement(),
        hpwl_before,
        hpwl_after,
        flips,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmp_geom::{Point, Rect};
    use mmp_netlist::{DesignBuilder, NodeRef, SyntheticSpec};

    #[test]
    fn flip_toward_the_pad_is_found() {
        // Macro pin on its right side, pad on the left: FN shortens the net.
        let mut b = DesignBuilder::new("f", Rect::new(0.0, 0.0, 100.0, 100.0));
        let m = b.add_macro("m", 10.0, 10.0, "");
        let p = b.add_pad("p", Point::new(0.0, 50.0));
        b.add_net(
            "n",
            [
                (NodeRef::Macro(m), Point::new(4.0, 0.0)),
                (NodeRef::Pad(p), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        let d = b.build().unwrap();
        let mut pl = Placement::initial(&d);
        pl.set_macro_center(m, Point::new(50.0, 50.0));
        let out = optimize_orientations(&d, &pl, 4);
        assert_eq!(out.flips, 1);
        assert!(out.hpwl_after < out.hpwl_before);
        assert!(matches!(
            out.placement.macro_orientation(m),
            Orientation::FN | Orientation::S
        ));
    }

    #[test]
    fn sweep_never_regresses_and_is_idempotent() {
        let d = SyntheticSpec::small("fl", 8, 1, 10, 80, 140, true, 4).generate();
        let pl = Placement::initial(&d);
        let once = optimize_orientations(&d, &pl, 4);
        assert!(once.hpwl_after <= once.hpwl_before + 1e-9);
        let twice = optimize_orientations(&d, &once.placement, 4);
        assert_eq!(twice.flips, 0, "second sweep must find nothing");
        assert!((twice.hpwl_after - once.hpwl_after).abs() < 1e-6);
    }

    #[test]
    fn coordinates_and_legality_are_untouched() {
        let d = SyntheticSpec::small("fc", 6, 1, 8, 60, 110, false, 5).generate();
        let pl = Placement::initial(&d);
        let out = optimize_orientations(&d, &pl, 2);
        for id in d.movable_macros() {
            assert_eq!(out.placement.macro_center(id), pl.macro_center(id));
        }
        assert_eq!(
            out.placement.macro_overlap_area(&d),
            pl.macro_overlap_area(&d)
        );
    }

    #[test]
    fn preplaced_macros_keep_their_orientation() {
        let mut b = DesignBuilder::new("pp", Rect::new(0.0, 0.0, 100.0, 100.0));
        let f = b.add_preplaced_macro("f", 10.0, 10.0, "", Point::new(50.0, 50.0));
        let p = b.add_pad("p", Point::new(0.0, 50.0));
        b.add_net(
            "n",
            [
                (NodeRef::Macro(f), Point::new(4.0, 0.0)),
                (NodeRef::Pad(p), Point::ORIGIN),
            ],
            1.0,
        )
        .unwrap();
        let d = b.build().unwrap();
        let out = optimize_orientations(&d, &Placement::initial(&d), 4);
        assert_eq!(out.flips, 0);
        assert_eq!(out.placement.macro_orientation(f), Orientation::N);
    }

    #[test]
    fn reported_hpwl_matches_the_placement() {
        let d = SyntheticSpec::small("acct", 10, 0, 12, 100, 180, true, 6).generate();
        let pl = Placement::initial(&d);
        let out = optimize_orientations(&d, &pl, 4);
        assert!((out.hpwl_after - out.placement.hpwl(&d)).abs() < 1e-9);
        assert!((out.hpwl_before - pl.hpwl(&d)).abs() < 1e-9);
    }
}
