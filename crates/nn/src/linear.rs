//! Fully-connected layers.

use crate::infer::InferenceCtx;
use crate::layer::{Layer, Param};
use crate::matmul::{matmul, matmul_at_b};
use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A `Linear` layer: `y = x·Wᵀ + b` over `(N, in) → (N, out)` — the FC and
/// MLP blocks of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    /// Weights shaped `[out, in]`.
    weight: Param,
    /// Bias shaped `[out]`.
    bias: Param,
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Xavier-uniform weights (deterministic in
    /// `seed`).
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        let bound = (6.0 / (in_features + out_features) as f32).sqrt();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x11ea);
        let weight: Vec<f32> = (0..in_features * out_features)
            .map(|_| rng.gen::<f32>() * 2.0 * bound - bound)
            .collect();
        Linear {
            in_features,
            out_features,
            weight: Param::new(Tensor::from_vec(&[out_features, in_features], weight)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let [n, d]: [usize; 2] = input.shape().try_into().expect("linear input is (N, in)");
        assert_eq!(d, self.in_features, "feature mismatch");
        let mut out = Tensor::zeros(&[n, self.out_features]);
        // out = x (N×in) · Wᵀ (in×out): use matmul_a_bt with b = W (out×in).
        crate::matmul::matmul_a_bt(
            input.as_slice(),
            self.weight.value.as_slice(),
            out.as_mut_slice(),
            n,
            self.in_features,
            self.out_features,
        );
        for s in 0..n {
            for (o, b) in out.as_mut_slice()[s * self.out_features..(s + 1) * self.out_features]
                .iter_mut()
                .zip(self.bias.value.as_slice())
            {
                *o += b;
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.take().expect("backward without forward");
        let [n, _]: [usize; 2] = input.shape().try_into().expect("cached input is (N, in)");
        // dW += dyᵀ (out×N) · x (N×in)
        matmul_at_b(
            grad_out.as_slice(),
            input.as_slice(),
            self.weight.grad.as_mut_slice(),
            self.out_features,
            n,
            self.in_features,
        );
        // db += column sums of dy
        for s in 0..n {
            for (g, dy) in self
                .bias
                .grad
                .as_mut_slice()
                .iter_mut()
                .zip(&grad_out.as_slice()[s * self.out_features..(s + 1) * self.out_features])
            {
                *g += dy;
            }
        }
        // dx = dy (N×out) · W (out×in)
        let mut grad_in = Tensor::zeros(&[n, self.in_features]);
        matmul(
            grad_out.as_slice(),
            self.weight.value.as_slice(),
            grad_in.as_mut_slice(),
            n,
            self.out_features,
            self.in_features,
        );
        grad_in
    }

    fn infer(&self, input: &Tensor, ctx: &mut InferenceCtx) -> Tensor {
        let [n, d]: [usize; 2] = input.shape().try_into().expect("linear input is (N, in)");
        assert_eq!(d, self.in_features, "feature mismatch");
        let mut out = ctx.take_tensor(&[n, self.out_features]);
        // Kernel kinds are bitwise identical; Reference is the benchmark
        // baseline (see `matmul`'s summation-order contract).
        let gemm: crate::matmul::Gemm = match ctx.kernel() {
            crate::KernelKind::Tiled => crate::matmul::matmul_a_bt,
            crate::KernelKind::Reference => crate::matmul::reference::matmul_a_bt,
        };
        gemm(
            input.as_slice(),
            self.weight.value.as_slice(),
            out.as_mut_slice(),
            n,
            self.in_features,
            self.out_features,
        );
        for s in 0..n {
            for (o, b) in out.as_mut_slice()[s * self.out_features..(s + 1) * self.out_features]
                .iter_mut()
                .zip(self.bias.value.as_slice())
            {
                *o += b;
            }
        }
        out
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_affine_map() {
        let mut lin = Linear::new(2, 2, 0);
        // W = [[1, 2], [3, 4]], b = [10, 20]
        lin.weight.value = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        lin.bias.value = Tensor::from_vec(&[2], vec![10.0, 20.0]);
        let x = Tensor::from_vec(&[1, 2], vec![5.0, 6.0]);
        let y = lin.forward(&x, true);
        // y = [5+12+10, 15+24+20] = [27, 59]
        assert_eq!(y.as_slice(), &[27.0, 59.0]);
    }

    #[test]
    fn batch_dimension_works() {
        let mut lin = Linear::new(3, 2, 1);
        let x = Tensor::zeros(&[4, 3]);
        let y = lin.forward(&x, true);
        assert_eq!(y.shape(), &[4, 2]);
    }

    #[test]
    fn gradient_check() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut lin = Linear::new(3, 2, 2);
        let mut rng = SmallRng::seed_from_u64(7);
        let x = Tensor::from_vec(&[2, 3], (0..6).map(|_| rng.gen::<f32>() - 0.5).collect());
        let coefs: Vec<f32> = (0..4).map(|_| rng.gen::<f32>() - 0.5).collect();
        let loss = |lin: &mut Linear, x: &Tensor| -> f32 {
            lin.forward(x, true)
                .as_slice()
                .iter()
                .zip(&coefs)
                .map(|(o, c)| o * c)
                .sum()
        };
        lin.zero_grad();
        let _ = lin.forward(&x, true);
        let grad_in = lin.backward(&Tensor::from_vec(&[2, 2], coefs.clone()));
        let eps = 1e-3;
        // Weights.
        for idx in 0..6 {
            let analytic = lin.weight.grad.as_slice()[idx];
            let orig = lin.weight.value.as_slice()[idx];
            lin.weight.value.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&mut lin, &x);
            lin.weight.value.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&mut lin, &x);
            lin.weight.value.as_mut_slice()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((analytic - numeric).abs() < 1e-2, "w[{idx}]");
        }
        // Input.
        for idx in 0..6 {
            let analytic = grad_in.as_slice()[idx];
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let lp = loss(&mut lin, &xp);
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let lm = loss(&mut lin, &xm);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((analytic - numeric).abs() < 1e-2, "x[{idx}]");
        }
    }

    #[test]
    fn getters() {
        let lin = Linear::new(5, 7, 0);
        assert_eq!(lin.in_features(), 5);
        assert_eq!(lin.out_features(), 7);
    }
}
