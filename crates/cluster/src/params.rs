//! Clustering hyper-parameters (the user-specified constants of Eqs. 1–2).

use serde::{Deserialize, Serialize};

/// Parameters of the grouping score functions Γ (Eq. 1) and φ (Eq. 2).
///
/// The paper's experimental values are exposed by [`ClusterParams::paper`]:
/// ν = 0.001, δ = 0.001, ε = 0.0003, κ = 1 and ϱ = 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterParams {
    /// Score threshold ν: merging stops when the best pair score falls
    /// below this value.
    pub nu: f64,
    /// Hierarchy weight δ in Γ.
    pub delta: f64,
    /// Connectivity weight ε in Γ.
    pub epsilon: f64,
    /// Area-similarity weight κ in Γ.
    pub kappa: f64,
    /// Connectivity-per-area weight ϱ in φ.
    pub rho: f64,
    /// Area of one grid cell; a group whose area reaches this no longer
    /// participates in merging ("size of each group exceeds the size of a
    /// grid").
    pub grid_area: f64,
    /// Exact greedy pairwise clustering is O(n³); above this many elements
    /// the cell clusterer switches to the bucketed approximation (macros
    /// never exceed it in the paper's benchmarks). See `cell_group` docs.
    pub exact_limit: usize,
}

impl ClusterParams {
    /// The paper's experimental parameter values over grid cells of
    /// `grid_area` µm².
    ///
    /// # Panics
    ///
    /// Panics if `grid_area` is not positive.
    pub fn paper(grid_area: f64) -> Self {
        assert!(grid_area > 0.0, "grid area must be positive");
        ClusterParams {
            nu: 0.001,
            delta: 0.001,
            epsilon: 0.0003,
            kappa: 1.0,
            rho: 1.0,
            grid_area,
            exact_limit: 2_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_section_ii_a() {
        let p = ClusterParams::paper(100.0);
        assert_eq!(p.nu, 0.001);
        assert_eq!(p.delta, 0.001);
        assert_eq!(p.epsilon, 0.0003);
        assert_eq!(p.kappa, 1.0);
        assert_eq!(p.rho, 1.0);
        assert_eq!(p.grid_area, 100.0);
    }

    #[test]
    #[should_panic(expected = "grid area")]
    fn zero_grid_area_panics() {
        let _ = ClusterParams::paper(0.0);
    }
}
