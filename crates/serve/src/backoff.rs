//! Deterministic capped exponential backoff for job retries.
//!
//! The schedule is a **pure function of the attempt number** — no clock
//! reads, no jitter from an OS entropy source — so a retried job's timing
//! policy is reproducible from its request alone and the daemon's fault
//! matrix can assert it exactly. (The *sleeping* happens in the worker
//! loop; this module only computes how long.)

use std::time::Duration;

/// Backoff policy: `base · 2^(attempt-1)`, saturating, capped at `cap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Delay before the second attempt (i.e. after the first failure).
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: Duration::from_millis(50),
            cap: Duration::from_millis(2000),
        }
    }
}

impl BackoffConfig {
    /// The delay to sleep after the `attempt`-th failed attempt
    /// (1-based), before attempt `attempt + 1` runs.
    ///
    /// `attempt = 0` (never failed) maps to zero. The doubling saturates
    /// instead of overflowing, so absurd attempt numbers still return
    /// `cap` rather than panicking.
    pub fn delay(&self, attempt: usize) -> Duration {
        if attempt == 0 || self.base.is_zero() {
            return Duration::ZERO;
        }
        let shift = u32::try_from(attempt - 1).unwrap_or(u32::MAX).min(63);
        let base_ms = u64::try_from(self.base.as_millis()).unwrap_or(u64::MAX);
        let ms = base_ms.saturating_mul(1u64.checked_shl(shift).unwrap_or(u64::MAX));
        Duration::from_millis(ms).min(self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_doubles_from_base_and_caps() {
        let b = BackoffConfig {
            base: Duration::from_millis(50),
            cap: Duration::from_millis(400),
        };
        assert_eq!(b.delay(0), Duration::ZERO);
        assert_eq!(b.delay(1), Duration::from_millis(50));
        assert_eq!(b.delay(2), Duration::from_millis(100));
        assert_eq!(b.delay(3), Duration::from_millis(200));
        assert_eq!(b.delay(4), Duration::from_millis(400));
        assert_eq!(b.delay(5), Duration::from_millis(400), "capped");
        assert_eq!(b.delay(500), Duration::from_millis(400), "no overflow");
    }

    #[test]
    fn schedule_is_a_pure_function_of_the_attempt() {
        let b = BackoffConfig::default();
        for attempt in 0..80 {
            assert_eq!(b.delay(attempt), b.delay(attempt));
        }
    }

    #[test]
    fn zero_base_means_no_delay() {
        let b = BackoffConfig {
            base: Duration::ZERO,
            cap: Duration::from_secs(1),
        };
        assert_eq!(b.delay(7), Duration::ZERO);
    }
}
